//! Catalog persistence: serializing every table's metadata — schema,
//! clustering, statistics, indexes, and the page lists of its heap and
//! entry files — so a cold process can reopen a data directory and find
//! its tables again.
//!
//! # Layout
//!
//! The catalog serializes to one **blob** (format below), chunked into
//! content pages of at most one block each. A fixed **root page** (page 0
//! of the data file, [`CATALOG_ROOT_PAGE`]) lists the content pages:
//!
//! ```text
//! root:  [magic "PYRC"][version u32][blob_len u64][n u32][content page ids u64…]
//! blob:  [generation u64][n_tables u32] then per table:
//!        name, schema (cols: name + type tag), clustering attrs,
//!        heap file parts (pages, tuple_count, byte_count),
//!        stats (row_count, avg_tuple_bytes, per-column distincts),
//!        indexes (name, key attrs, included attrs, entry-file parts)
//! ```
//!
//! Strings are `[len u32][utf8]`; integers little-endian; `f64` as IEEE
//! bits. Data pages are **not** rewritten — the blob stores page *ids*,
//! and [`TupleFile::from_parts`] reassembles handles over the existing
//! pages. Decoding is defensive end to end: any truncation or garbage
//! yields a typed [`PyroError::Recovery`], never a panic, because this
//! code runs on whatever a crash left behind.

use crate::catalog::TableHandle;
use crate::stats::{ColumnStats, TableStats};
use crate::table::{IndexMeta, TableMeta};
use pyro_common::{Column, DataType, PyroError, Result, Schema};
use pyro_ordering::SortOrder;
use pyro_storage::{PageId, StoreRef, TupleFile};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The well-known page holding the catalog root. Reserved by the first
/// durable open; never reallocated.
pub const CATALOG_ROOT_PAGE: PageId = 0;

const MAGIC: &[u8; 4] = b"PYRC";
const VERSION: u32 = 1;

// ---------------------------------------------------------------- encode

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_strs(buf: &mut Vec<u8>, strs: &[String]) {
    put_u32(buf, strs.len() as u32);
    for s in strs {
        put_str(buf, s);
    }
}

fn put_file(buf: &mut Vec<u8>, file: &TupleFile) {
    put_u32(buf, file.pages().len() as u32);
    for p in file.pages() {
        put_u64(buf, *p);
    }
    put_u64(buf, file.tuple_count());
    put_u64(buf, file.byte_count());
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
    }
}

/// Serializes the full catalog state into one blob.
pub fn encode_catalog(tables: &BTreeMap<String, Arc<TableHandle>>, generation: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, generation);
    put_u32(&mut buf, tables.len() as u32);
    for handle in tables.values() {
        let meta = &handle.meta;
        put_str(&mut buf, &meta.name);
        put_u32(&mut buf, meta.schema.columns().len() as u32);
        for col in meta.schema.columns() {
            put_str(&mut buf, &col.name);
            buf.push(type_tag(col.ty));
        }
        put_strs(&mut buf, meta.clustering.attrs());
        put_file(&mut buf, &handle.heap);
        put_u64(&mut buf, meta.stats.row_count);
        put_u64(&mut buf, meta.stats.avg_tuple_bytes.to_bits());
        put_u32(&mut buf, meta.stats.columns.len() as u32);
        for (name, col) in &meta.stats.columns {
            put_str(&mut buf, name);
            put_u64(&mut buf, col.distinct);
        }
        put_u32(&mut buf, meta.indexes.len() as u32);
        for idx in &meta.indexes {
            put_str(&mut buf, &idx.name);
            put_strs(&mut buf, idx.key.attrs());
            put_strs(&mut buf, &idx.included);
            let file = handle
                .index_files
                .get(&idx.name)
                .expect("index meta without entry file");
            put_file(&mut buf, file);
        }
    }
    buf
}

/// Builds the root-page image pointing at `content_pages` holding a
/// `blob_len`-byte blob.
pub fn encode_root(blob_len: u64, content_pages: &[PageId]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(20 + 8 * content_pages.len());
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_u64(&mut buf, blob_len);
    put_u32(&mut buf, content_pages.len() as u32);
    for p in content_pages {
        put_u64(&mut buf, *p);
    }
    buf
}

// ---------------------------------------------------------------- decode

/// Cursor over a blob with typed-error reads.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn bad(&self, what: &str) -> PyroError {
        PyroError::Recovery(format!(
            "catalog blob truncated or corrupt: {what} at offset {}",
            self.pos
        ))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(self.bad(what));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.bad(what))
    }

    fn strs(&mut self, what: &str) -> Result<Vec<String>> {
        let n = self.u32(what)? as usize;
        (0..n).map(|_| self.str(what)).collect()
    }

    fn file(&mut self, store: &StoreRef, what: &str) -> Result<TupleFile> {
        let n = self.u32(what)? as usize;
        let pages = (0..n).map(|_| self.u64(what)).collect::<Result<Vec<_>>>()?;
        let tuple_count = self.u64(what)?;
        let byte_count = self.u64(what)?;
        Ok(TupleFile::from_parts(store, pages, tuple_count, byte_count))
    }
}

/// Parses a root-page image: returns `(blob_len, content_pages)`.
pub fn decode_root(image: &[u8]) -> Result<(u64, Vec<PageId>)> {
    let mut r = Reader::new(image);
    if r.take(4, "root magic")? != MAGIC {
        return Err(PyroError::Recovery("catalog root has bad magic".into()));
    }
    let version = r.u32("root version")?;
    if version != VERSION {
        return Err(PyroError::Recovery(format!(
            "unsupported catalog version {version}"
        )));
    }
    let blob_len = r.u64("blob length")?;
    let n = r.u32("content page count")? as usize;
    let pages = (0..n)
        .map(|_| r.u64("content page id"))
        .collect::<Result<Vec<_>>>()?;
    Ok((blob_len, pages))
}

/// Deserializes the catalog blob, rebuilding table handles whose files
/// read through `store`. Returns `(tables, generation)`.
pub fn decode_catalog(
    blob: &[u8],
    store: &StoreRef,
) -> Result<(BTreeMap<String, Arc<TableHandle>>, u64)> {
    let mut r = Reader::new(blob);
    let generation = r.u64("generation")?;
    let n_tables = r.u32("table count")? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..n_tables {
        let name = r.str("table name")?;
        let n_cols = r.u32("column count")? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let col_name = r.str("column name")?;
            let ty = match r.u8("column type")? {
                0 => DataType::Int,
                1 => DataType::Double,
                2 => DataType::Str,
                t => {
                    return Err(PyroError::Recovery(format!(
                        "unknown column type tag {t} in table {name}"
                    )))
                }
            };
            columns.push(Column::new(&col_name, ty));
        }
        let schema = Schema::new(columns);
        let clustering = SortOrder::new(r.strs("clustering")?);
        let heap = r.file(store, "heap file")?;
        let row_count = r.u64("row count")?;
        let avg_tuple_bytes = f64::from_bits(r.u64("avg tuple bytes")?);
        let n_stat_cols = r.u32("stat column count")? as usize;
        let mut stat_cols = BTreeMap::new();
        for _ in 0..n_stat_cols {
            let col = r.str("stat column name")?;
            let distinct = r.u64("distinct count")?;
            stat_cols.insert(col, ColumnStats { distinct });
        }
        let stats = TableStats {
            row_count,
            avg_tuple_bytes,
            columns: stat_cols,
        };
        let n_indexes = r.u32("index count")? as usize;
        let mut indexes = Vec::with_capacity(n_indexes);
        let mut index_files = BTreeMap::new();
        for _ in 0..n_indexes {
            let idx_name = r.str("index name")?;
            let key = SortOrder::new(r.strs("index key")?);
            let included = r.strs("included columns")?;
            let file = r.file(store, "index entry file")?;
            index_files.insert(idx_name.clone(), file);
            indexes.push(IndexMeta {
                name: idx_name,
                key,
                included,
            });
        }
        let meta = TableMeta {
            name: name.clone(),
            schema,
            clustering,
            indexes,
            stats,
        };
        tables.insert(
            name,
            Arc::new(TableHandle {
                meta,
                heap,
                index_files,
            }),
        );
    }
    Ok((tables, generation))
}

/// Every data page a catalog state references: the root, the content
/// pages, and all heap / index-entry pages. This is the `live` set handed
/// to [`reclaim_except`](pyro_storage::PageDevice::reclaim_except) after
/// recovery.
pub fn live_pages(
    tables: &BTreeMap<String, Arc<TableHandle>>,
    content_pages: &[PageId],
) -> Vec<PageId> {
    let mut live = vec![CATALOG_ROOT_PAGE];
    live.extend_from_slice(content_pages);
    for handle in tables.values() {
        live.extend_from_slice(handle.heap.pages());
        for file in handle.index_files.values() {
            live.extend_from_slice(file.pages());
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use pyro_common::{Tuple, Value};
    use pyro_storage::{PageStore, SimDevice};

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::on_store(PageStore::bypass(SimDevice::with_block_size(256)));
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Double),
            Column::new("s", DataType::Str),
        ]);
        let rows: Vec<Tuple> = (0..50)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Double(i as f64 * 0.5),
                    Value::Str(format!("row{i}")),
                ])
            })
            .collect();
        cat.register_table("t", schema, SortOrder::new(["k"]), &rows)
            .unwrap();
        cat.create_index("t", "t_v", SortOrder::new(["v"]), &["k"])
            .unwrap();
        cat
    }

    #[test]
    fn blob_roundtrip_preserves_everything() {
        let cat = sample_catalog();
        let src = cat.table("t").unwrap();
        let blob = encode_catalog(cat.tables(), cat.generation());
        let (tables, generation) = decode_catalog(&blob, cat.store()).unwrap();
        assert_eq!(generation, cat.generation());
        let back = tables.get("t").expect("table survives");
        assert_eq!(back.meta.name, "t");
        assert_eq!(back.meta.schema.names(), src.meta.schema.names());
        assert_eq!(back.meta.clustering.attrs(), src.meta.clustering.attrs());
        assert_eq!(back.meta.stats.row_count, 50);
        assert_eq!(back.meta.stats.distinct("k"), src.meta.stats.distinct("k"));
        assert_eq!(back.heap.pages(), src.heap.pages());
        assert_eq!(back.heap.tuple_count(), src.heap.tuple_count());
        assert_eq!(back.heap.byte_count(), src.heap.byte_count());
        assert_eq!(back.meta.indexes.len(), 1);
        let idx = &back.meta.indexes[0];
        assert_eq!(idx.name, "t_v");
        assert_eq!(idx.key.attrs(), ["v".to_string()]);
        assert_eq!(idx.included, vec!["k".to_string()]);
        assert_eq!(
            back.index_files.get("t_v").unwrap().pages(),
            src.index_files.get("t_v").unwrap().pages()
        );
        // The rebuilt handle actually scans the same bytes.
        let rows: Vec<Tuple> = back.heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[7].get(0), &Value::Int(7));
    }

    #[test]
    fn root_roundtrip() {
        let root = encode_root(12345, &[4, 9, 2]);
        let (len, pages) = decode_root(&root).unwrap();
        assert_eq!(len, 12345);
        assert_eq!(pages, vec![4, 9, 2]);
    }

    #[test]
    fn truncated_blob_is_typed_error() {
        let cat = sample_catalog();
        let blob = encode_catalog(cat.tables(), cat.generation());
        for cut in [0, 5, blob.len() / 2, blob.len() - 1] {
            match decode_catalog(&blob[..cut], cat.store()) {
                Err(PyroError::Recovery(_)) => {}
                other => panic!("cut at {cut}: expected Recovery error, got {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_root_is_typed_error() {
        assert!(matches!(
            decode_root(b"XXXX\0\0\0\0"),
            Err(PyroError::Recovery(_))
        ));
        assert!(matches!(decode_root(b"PY"), Err(PyroError::Recovery(_))));
    }

    #[test]
    fn live_pages_cover_all_files() {
        let cat = sample_catalog();
        let live = live_pages(cat.tables(), &[]);
        let t = cat.table("t").unwrap();
        for p in t.heap.pages() {
            assert!(live.contains(p));
        }
        for p in t.index_files.get("t_v").unwrap().pages() {
            assert!(live.contains(p));
        }
        assert!(live.contains(&CATALOG_ROOT_PAGE));
    }
}
