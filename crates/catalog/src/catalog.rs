//! The catalog: metadata plus owned storage handles.

use crate::persist;
use crate::stats::TableStats;
use crate::table::{IndexMeta, TableMeta};
use pyro_common::{PyroError, Result, Schema, Tuple};
use pyro_ordering::SortOrder;
use pyro_storage::{write_file, DeviceRef, PageId, PageStore, SimDevice, StoreRef, TupleFile};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registered table: metadata, its heap file (in clustering order) and
/// one entry file per secondary index.
#[derive(Debug)]
pub struct TableHandle {
    /// Metadata and statistics.
    pub meta: TableMeta,
    /// The base heap file, physically ordered by `meta.clustering`.
    pub heap: TupleFile,
    /// Index entry files, keyed by index name, each sorted by its key and
    /// containing `key + included` columns only.
    pub index_files: BTreeMap<String, TupleFile>,
}

/// The catalog owns the page store (device + optional buffer pool) and
/// every registered table.
#[derive(Debug)]
pub struct Catalog {
    store: StoreRef,
    tables: BTreeMap<String, Arc<TableHandle>>,
    /// Sort memory budget in blocks — the `M` of the cost model. Defaults
    /// to 100 blocks.
    sort_memory_blocks: u64,
    /// Bumped by every schema mutation (table registration, index
    /// creation). Plan caches key on it, so a cached plan can never
    /// outlive the catalog state it was optimized against.
    generation: u64,
    /// Content pages of the currently-committed catalog blob (durable
    /// stores only; empty otherwise). Replaced — and the old ones freed —
    /// after every committed mutation.
    catalog_pages: Vec<PageId>,
}

impl Catalog {
    /// Creates a catalog over a fresh default device (4 KB blocks), with
    /// no buffer pool (every page read/write hits the device).
    pub fn new() -> Self {
        Catalog::on_device(SimDevice::new())
    }

    /// Creates a catalog over an existing device (no buffer pool).
    pub fn on_device(device: DeviceRef) -> Self {
        Catalog::on_store(PageStore::bypass(device))
    }

    /// Creates a catalog over a fresh default device fronted by a
    /// `pages`-frame buffer pool. Every table heap, index entry file and
    /// sort spill run of this catalog shares the one pool.
    pub fn with_buffer_pool(pages: usize) -> Self {
        Catalog::on_store(PageStore::cached(SimDevice::new(), pages))
    }

    /// Creates a catalog over an existing page store. The store must be
    /// fixed before any table is registered — files capture the store they
    /// were written through.
    pub fn on_store(store: StoreRef) -> Self {
        Catalog {
            store,
            tables: BTreeMap::new(),
            sort_memory_blocks: 100,
            generation: 0,
            catalog_pages: Vec::new(),
        }
    }

    /// Opens a catalog over a durable store whose device may already hold
    /// data: an existing catalog root (page
    /// [`persist::CATALOG_ROOT_PAGE`]) is decoded and every table handle
    /// rebuilt over its persisted pages; a fresh device gets an empty
    /// root reserved and written. WAL replay must have run *before* this
    /// (the session open path does), so the root and content pages read
    /// here are the last committed state. Finishes by reclaiming every
    /// device page the rebuilt catalog does not reference — pages
    /// orphaned by an uncommitted mutation return to the free list.
    pub fn open_durable(store: StoreRef) -> Result<Self> {
        if store.live_pages() == 0 {
            // Fresh (or created-then-crashed-before-first-root) device:
            // reserve the root page and commit an empty catalog.
            let root = store.alloc_page();
            if root != persist::CATALOG_ROOT_PAGE {
                return Err(PyroError::Recovery(format!(
                    "fresh device allocated page {root} for the catalog root, \
                     expected {}",
                    persist::CATALOG_ROOT_PAGE
                )));
            }
            let image = persist::encode_root(0, &[]);
            store.write_page(root, &image)?;
            store.checkpoint()?;
            return Ok(Catalog::on_store(store));
        }
        let root_image = store.read_page(persist::CATALOG_ROOT_PAGE)?;
        let (blob_len, content_pages) = persist::decode_root(&root_image)?;
        if blob_len == 0 && content_pages.is_empty() {
            // The empty root a fresh open commits: no tables yet.
            store.device().reclaim_except(&[persist::CATALOG_ROOT_PAGE]);
            return Ok(Catalog::on_store(store));
        }
        let mut blob = Vec::with_capacity(blob_len as usize);
        for page in &content_pages {
            blob.extend_from_slice(&store.read_page(*page)?);
        }
        if (blob.len() as u64) < blob_len {
            return Err(PyroError::Recovery(format!(
                "catalog blob short: root claims {blob_len} bytes, content \
                 pages hold {}",
                blob.len()
            )));
        }
        blob.truncate(blob_len as usize);
        let (tables, generation) = persist::decode_catalog(&blob, &store)?;
        let live = persist::live_pages(&tables, &content_pages);
        store.device().reclaim_except(&live);
        Ok(Catalog {
            store,
            tables,
            sort_memory_blocks: 100,
            generation,
            catalog_pages: content_pages,
        })
    }

    /// The schema-mutation counter: incremented by [`Catalog::register_table`]
    /// and [`Catalog::create_index`]. Two reads returning the same value
    /// bracket a window in which no table or index changed, which is what
    /// makes it a sound plan-cache key component.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The backing device (exact cold-I/O counters).
    pub fn device(&self) -> &DeviceRef {
        self.store.device()
    }

    /// The page store every file of this catalog reads and writes through.
    pub fn store(&self) -> &StoreRef {
        &self.store
    }

    /// Sort memory budget in blocks (`M`).
    pub fn sort_memory_blocks(&self) -> u64 {
        self.sort_memory_blocks
    }

    /// Sets the sort memory budget in blocks.
    pub fn set_sort_memory_blocks(&mut self, m: u64) {
        self.sort_memory_blocks = m.max(3); // need ≥3 for external merge
    }

    /// Registers a table. `rows` must already be sorted by `clustering`
    /// (generators produce them that way); debug builds verify.
    ///
    /// On a durable store the whole mutation — heap pages, serialized
    /// catalog, root — is WAL-logged and committed atomically: a crash at
    /// any point either replays the complete table or none of it.
    pub fn register_table(
        &mut self,
        name: &str,
        schema: Schema,
        clustering: SortOrder,
        rows: &[Tuple],
    ) -> Result<Arc<TableHandle>> {
        if self.tables.contains_key(name) {
            return Err(PyroError::Plan(format!("table {name} already registered")));
        }
        #[cfg(debug_assertions)]
        if !clustering.is_empty() {
            let cols: Vec<usize> = clustering
                .attrs()
                .iter()
                .map(|a| schema.index_of(a))
                .collect::<Result<_>>()?;
            let key = pyro_common::KeySpec::new(cols);
            debug_assert!(
                rows.windows(2)
                    .all(|w| key.compare(&w[0], &w[1]) != std::cmp::Ordering::Greater),
                "rows of {name} are not sorted by clustering order {clustering}"
            );
        }
        let stats = TableStats::compute(&schema.names(), rows);
        let mark = self.store.begin_mutation();
        match self.try_register(name, schema, clustering, stats, rows) {
            Ok(handle) => Ok(handle),
            Err(e) => {
                let _ = self.store.abort_mutation(mark);
                Err(e)
            }
        }
    }

    fn try_register(
        &mut self,
        name: &str,
        schema: Schema,
        clustering: SortOrder,
        stats: TableStats,
        rows: &[Tuple],
    ) -> Result<Arc<TableHandle>> {
        let heap = write_file(&self.store, rows)?;
        // Bulk loads write through, never warm: flush the load's dirty
        // pages and drop them, so a later "cold run" measurement is
        // actually cold. Total device writes match the bypass path.
        self.store.clear_cache()?;
        let meta = TableMeta {
            name: name.to_string(),
            schema,
            clustering,
            indexes: Vec::new(),
            stats,
        };
        let handle = Arc::new(TableHandle {
            meta,
            heap,
            index_files: BTreeMap::new(),
        });
        self.tables.insert(name.to_string(), handle.clone());
        self.generation += 1;
        if let Err(e) = self.commit_persisted() {
            // Roll the in-memory state back so catalog and disk agree;
            // the caller rewinds the WAL.
            self.tables.remove(name);
            self.generation -= 1;
            for p in handle.heap.pages().to_vec() {
                self.store.free_page(p);
            }
            return Err(e);
        }
        Ok(handle)
    }

    /// Builds a secondary index with included columns over an existing
    /// table, materializing its sorted entry file. Durable stores commit
    /// the mutation (entry pages + catalog + root) atomically, like
    /// [`Catalog::register_table`].
    pub fn create_index(
        &mut self,
        table: &str,
        index_name: &str,
        key: SortOrder,
        included: &[&str],
    ) -> Result<()> {
        let handle = self
            .tables
            .get(table)
            .ok_or_else(|| PyroError::UnknownTable(table.to_string()))?
            .clone();
        // Reject duplicates instead of pushing a second same-named
        // `IndexMeta`: the old behaviour overwrote the `index_files` entry,
        // orphaning the replaced entry file's pages in the store forever
        // and leaving the optimizer two indistinguishable candidates.
        if handle.meta.index(index_name).is_some() || handle.index_files.contains_key(index_name) {
            return Err(PyroError::DuplicateIndex {
                table: table.to_string(),
                index: index_name.to_string(),
            });
        }
        let idx = IndexMeta {
            name: index_name.to_string(),
            key: key.clone(),
            included: included.iter().map(|s| s.to_string()).collect(),
        };
        // Materialize entries: project to entry columns, sort by key.
        let entry_cols = idx.entry_columns();
        let positions: Vec<usize> = entry_cols
            .iter()
            .map(|c| handle.meta.schema.index_of(c))
            .collect::<Result<_>>()?;
        let mut entries: Vec<Tuple> = handle
            .heap
            .scan()
            .map(|r| r.map(|t| t.project(&positions)))
            .collect::<Result<_>>()?;
        // Key columns are the first |key| entry columns.
        let key_positions: Vec<usize> = (0..key.len()).collect();
        let spec = pyro_common::KeySpec::new(key_positions);
        entries.sort_by(|a, b| spec.compare(a, b));

        let mark = self.store.begin_mutation();
        match self.try_create_index(table, handle, idx, &entries) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = self.store.abort_mutation(mark);
                Err(e)
            }
        }
    }

    fn try_create_index(
        &mut self,
        table: &str,
        handle: Arc<TableHandle>,
        idx: IndexMeta,
        entries: &[Tuple],
    ) -> Result<()> {
        let index_name = idx.name.clone();
        let file = write_file(&self.store, entries)?;
        self.store.clear_cache()?;

        // Re-insert an updated handle (Arc is immutable; rebuild).
        let mut meta = handle.meta.clone();
        meta.indexes.push(idx);
        let mut index_files = handle.index_files.clone();
        let entry_pages = file.pages().to_vec();
        index_files.insert(index_name.clone(), file);
        let new_handle = Arc::new(TableHandle {
            meta,
            heap: handle.heap.clone(),
            index_files,
        });
        self.tables.insert(table.to_string(), new_handle);
        self.generation += 1;
        if let Err(e) = self.commit_persisted() {
            self.tables.insert(table.to_string(), handle);
            self.generation -= 1;
            for p in entry_pages {
                self.store.free_page(p);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Serializes the catalog, writes the content pages (WAL-logged —
    /// the window is open), and commits via the root page. Frees the
    /// previous committed state's content pages only *after* the commit
    /// is durable: freeing earlier could let this very mutation recycle
    /// and overwrite a page the still-current root references. No-op on
    /// non-durable stores — the in-memory engine stays byte- and
    /// counter-identical.
    fn commit_persisted(&mut self) -> Result<()> {
        if !self.store.is_durable() {
            return Ok(());
        }
        let blob = persist::encode_catalog(&self.tables, self.generation);
        let block = self.store.block_size();
        let mut pages = Vec::new();
        let mut err = None;
        for chunk in blob.chunks(block) {
            let id = self.store.alloc_page();
            pages.push(id);
            if let Err(e) = self.store.write_page(id, chunk) {
                err = Some(e);
                break;
            }
        }
        if err.is_none() {
            let root = persist::encode_root(blob.len() as u64, &pages);
            if let Err(e) = self
                .store
                .commit_mutation(persist::CATALOG_ROOT_PAGE, &root)
            {
                err = Some(e);
            }
        }
        if let Some(e) = err {
            for p in pages {
                self.store.free_page(p);
            }
            return Err(e);
        }
        let old = std::mem::replace(&mut self.catalog_pages, pages);
        for p in old {
            self.store.free_page(p);
        }
        Ok(())
    }

    /// Flushes the buffer pool, fsyncs the data file and truncates the
    /// WAL (see [`pyro_storage::PageStore::checkpoint`]). The graceful-
    /// shutdown path calls this so a clean exit leaves nothing to replay.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.checkpoint()
    }

    /// Whether this catalog commits through a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.store.is_durable()
    }

    /// All registered tables, keyed by name (persistence reads this).
    pub fn tables(&self) -> &BTreeMap<String, Arc<TableHandle>> {
        &self.tables
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<Arc<TableHandle>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| PyroError::UnknownTable(name.to_string()))
    }

    /// All registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
    }

    fn rows() -> Vec<Tuple> {
        (0..10)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(100 - i)]))
            .collect()
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register_table("t", schema(), SortOrder::new(["k"]), &rows())
            .unwrap();
        let h = cat.table("t").unwrap();
        assert_eq!(h.meta.stats.row_count, 10);
        assert_eq!(h.heap.tuple_count(), 10);
        assert!(cat.table("missing").is_err());
        assert_eq!(cat.table_names(), vec!["t"]);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut cat = Catalog::new();
        cat.register_table("t", schema(), SortOrder::empty(), &rows())
            .unwrap();
        assert!(cat
            .register_table("t", schema(), SortOrder::empty(), &rows())
            .is_err());
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    #[cfg(debug_assertions)]
    fn unsorted_clustering_detected() {
        let mut cat = Catalog::new();
        let mut r = rows();
        r.reverse();
        let _ = cat.register_table("t", schema(), SortOrder::new(["k"]), &r);
    }

    #[test]
    fn index_entries_sorted_by_key() {
        let mut cat = Catalog::new();
        cat.register_table("t", schema(), SortOrder::new(["k"]), &rows())
            .unwrap();
        // index on v (descending data) with k included
        cat.create_index("t", "t_v", SortOrder::new(["v"]), &["k"])
            .unwrap();
        let h = cat.table("t").unwrap();
        let idx_file = h.index_files.get("t_v").unwrap();
        let entries: Vec<Tuple> = idx_file.scan().map(|r| r.unwrap()).collect();
        assert_eq!(entries.len(), 10);
        assert!(entries.windows(2).all(|w| w[0].get(0) <= w[1].get(0)));
        // entry layout: (v, k)
        assert_eq!(entries[0].arity(), 2);
        let meta = &h.meta;
        assert!(meta.index("t_v").is_some());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        // Regression: a second index under the same name used to be pushed
        // into `meta.indexes` and silently replace the entry file, leaking
        // the old file's pages.
        let mut cat = Catalog::new();
        cat.register_table("t", schema(), SortOrder::new(["k"]), &rows())
            .unwrap();
        cat.create_index("t", "t_v", SortOrder::new(["v"]), &["k"])
            .unwrap();
        let pages_before = cat.device().live_pages();
        let err = cat
            .create_index("t", "t_v", SortOrder::new(["k"]), &["v"])
            .unwrap_err();
        assert_eq!(
            err,
            PyroError::DuplicateIndex {
                table: "t".into(),
                index: "t_v".into()
            }
        );
        // The rejected attempt must not have grown the store, and the
        // original index must be intact (one meta entry, one entry file).
        assert_eq!(cat.device().live_pages(), pages_before);
        let h = cat.table("t").unwrap();
        assert_eq!(h.meta.indexes.len(), 1);
        assert_eq!(h.index_files.len(), 1);
        // A different name on the same table is still fine.
        cat.create_index("t", "t_v2", SortOrder::new(["v"]), &["k"])
            .unwrap();
    }

    #[test]
    fn generation_counts_schema_mutations() {
        let mut cat = Catalog::new();
        assert_eq!(cat.generation(), 0);
        cat.register_table("t", schema(), SortOrder::new(["k"]), &rows())
            .unwrap();
        assert_eq!(cat.generation(), 1);
        cat.create_index("t", "t_v", SortOrder::new(["v"]), &["k"])
            .unwrap();
        assert_eq!(cat.generation(), 2);
        // Failed mutations don't bump.
        assert!(cat
            .create_index("t", "t_v", SortOrder::new(["v"]), &["k"])
            .is_err());
        assert!(cat
            .register_table("t", schema(), SortOrder::empty(), &rows())
            .is_err());
        assert_eq!(cat.generation(), 2);
    }

    #[test]
    fn index_on_missing_table_fails() {
        let mut cat = Catalog::new();
        assert!(cat
            .create_index("nope", "i", SortOrder::new(["k"]), &[])
            .is_err());
    }

    #[test]
    fn durable_catalog_survives_reopen() {
        use pyro_storage::{FileDevice, Wal};
        let dir = std::env::temp_dir().join(format!("pyro-cat-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.pyro");
        let wal_path = dir.join("wal.pyro");
        let open_store = |pool: usize| -> StoreRef {
            let dev = if data.exists() {
                FileDevice::open(&data).unwrap()
            } else {
                FileDevice::create_with_block_size(&data, 256).unwrap()
            };
            let wal = Arc::new(Wal::open_or_create(&wal_path).unwrap());
            wal.recover(&dev).unwrap();
            PageStore::durable(dev.as_device(), wal, pool, u64::MAX)
        };
        {
            let mut cat = Catalog::open_durable(open_store(8)).unwrap();
            cat.register_table("t", schema(), SortOrder::new(["k"]), &rows())
                .unwrap();
            cat.create_index("t", "t_v", SortOrder::new(["v"]), &["k"])
                .unwrap();
            // Dropped without a checkpoint: the root may still be dirty in
            // the pool, so the reopen below only works if WAL replay does.
        }
        let cat = Catalog::open_durable(open_store(8)).unwrap();
        assert_eq!(cat.generation(), 2, "generation survives reopen");
        let h = cat.table("t").unwrap();
        assert_eq!(h.meta.stats.row_count, 10);
        let got: Vec<Tuple> = h.heap.scan().map(|r| r.unwrap()).collect();
        assert_eq!(got, rows(), "heap rows bit-identical after reopen");
        let idx: Vec<Tuple> = h
            .index_files
            .get("t_v")
            .expect("index survives reopen")
            .scan()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(idx.len(), 10);
        assert!(idx.windows(2).all(|w| w[0].get(0) <= w[1].get(0)));
    }

    #[test]
    fn sort_memory_floor() {
        let mut cat = Catalog::new();
        cat.set_sort_memory_blocks(1);
        assert_eq!(cat.sort_memory_blocks(), 3);
        cat.set_sort_memory_blocks(50);
        assert_eq!(cat.sort_memory_blocks(), 50);
    }
}
