//! Table and index metadata.

use crate::stats::TableStats;
use pyro_common::{Result, Schema};
use pyro_ordering::{AttrSet, SortOrder};

/// A secondary index with *included columns* — the paper's "query covering
/// index": leaf entries carry `key + included`, so a query touching only
/// those columns never visits the base table and inherits the key's sort
/// order for free.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// Index name (unique per table).
    pub name: String,
    /// Key columns, in index order — this is the sort order an index scan
    /// guarantees.
    pub key: SortOrder,
    /// Non-key columns stored in the leaves.
    pub included: Vec<String>,
}

impl IndexMeta {
    /// All columns materialized in the entry file: key first, then included.
    pub fn entry_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.key.attrs().to_vec();
        for c in &self.included {
            if !cols.contains(c) {
                cols.push(c.clone());
            }
        }
        cols
    }

    /// True iff the index *covers* a query needing `required` columns of the
    /// table (paper footnote 1: contains all attributes of the relation used
    /// in the query).
    pub fn covers(&self, required: &AttrSet) -> bool {
        let have: AttrSet = self.entry_columns().into_iter().collect();
        required.is_subset(&have)
    }
}

/// Metadata for one base table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Schema with bare column names.
    pub schema: Schema,
    /// Physical clustering order of the heap file (`oR`); empty when the
    /// table is an unordered heap.
    pub clustering: SortOrder,
    /// Secondary indices.
    pub indexes: Vec<IndexMeta>,
    /// Load-time statistics.
    pub stats: TableStats,
}

impl TableMeta {
    /// Resolves the bare names of `order` to column positions.
    pub fn key_spec(&self, order: &SortOrder) -> Result<Vec<usize>> {
        order
            .attrs()
            .iter()
            .map(|a| self.schema.index_of(a))
            .collect()
    }

    /// The index with the given name, if any.
    pub fn index(&self, name: &str) -> Option<&IndexMeta> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// All indices that cover `required` columns.
    pub fn covering_indexes(&self, required: &AttrSet) -> Vec<&IndexMeta> {
        self.indexes.iter().filter(|i| i.covers(required)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::{Column, DataType};

    fn lineitem() -> TableMeta {
        TableMeta {
            name: "lineitem".into(),
            schema: Schema::new(vec![
                Column::new("l_suppkey", DataType::Int),
                Column::new("l_partkey", DataType::Int),
                Column::new("l_quantity", DataType::Double),
            ]),
            clustering: SortOrder::new(["l_suppkey"]),
            indexes: vec![IndexMeta {
                name: "idx_supp".into(),
                key: SortOrder::new(["l_suppkey"]),
                included: vec!["l_partkey".into()],
            }],
            stats: TableStats::default(),
        }
    }

    #[test]
    fn entry_columns_dedup() {
        let idx = IndexMeta {
            name: "i".into(),
            key: SortOrder::new(["a", "b"]),
            included: vec!["b".into(), "c".into()],
        };
        assert_eq!(idx.entry_columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn covering_check() {
        let t = lineitem();
        let need_two = AttrSet::from_iter(["l_suppkey", "l_partkey"]);
        let need_three = AttrSet::from_iter(["l_suppkey", "l_partkey", "l_quantity"]);
        assert_eq!(t.covering_indexes(&need_two).len(), 1);
        assert!(t.covering_indexes(&need_three).is_empty());
    }

    #[test]
    fn key_spec_resolution() {
        let t = lineitem();
        let ks = t
            .key_spec(&SortOrder::new(["l_partkey", "l_suppkey"]))
            .unwrap();
        assert_eq!(ks, vec![1, 0]);
        assert!(t.key_spec(&SortOrder::new(["nope"])).is_err());
    }

    #[test]
    fn index_lookup() {
        let t = lineitem();
        assert!(t.index("idx_supp").is_some());
        assert!(t.index("missing").is_none());
    }
}
