//! Statistics: the `N`, `B`, `D` of the paper's cost model (§3.2).

use pyro_common::Tuple;
use std::collections::{BTreeMap, HashSet};

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values observed.
    pub distinct: u64,
}

/// Per-table statistics, computed exactly at load time (the engine is a
/// research vehicle; no sampling needed at these scales).
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// `N(R)`: number of rows.
    pub row_count: u64,
    /// Average encoded tuple size in bytes.
    pub avg_tuple_bytes: f64,
    /// Per-column stats, keyed by bare column name.
    pub columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Computes exact stats from data.
    pub fn compute(column_names: &[String], rows: &[Tuple]) -> TableStats {
        let mut sets: Vec<HashSet<&pyro_common::Value>> =
            column_names.iter().map(|_| HashSet::new()).collect();
        let mut bytes = 0u64;
        for row in rows {
            bytes += row.byte_size() as u64;
            for (i, v) in row.values().iter().enumerate() {
                if i < sets.len() {
                    sets[i].insert(v);
                }
            }
        }
        let columns = column_names
            .iter()
            .zip(&sets)
            .map(|(n, s)| {
                (
                    n.clone(),
                    ColumnStats {
                        distinct: s.len() as u64,
                    },
                )
            })
            .collect();
        TableStats {
            row_count: rows.len() as u64,
            avg_tuple_bytes: if rows.is_empty() {
                0.0
            } else {
                bytes as f64 / rows.len() as f64
            },
            columns,
        }
    }

    /// `D(R, {a})` for a single column; defaults to `row_count` (unique)
    /// when the column is unknown — the conservative choice for sort-segment
    /// estimation.
    pub fn distinct(&self, column: &str) -> u64 {
        self.columns
            .get(column)
            .map(|c| c.distinct)
            .unwrap_or(self.row_count)
            .max(1)
    }

    /// `D(R, s)` for an attribute set under the paper's uniform-independence
    /// assumption: `min(N, Π distinct(a))`, saturating.
    pub fn distinct_of_set<'a>(&self, columns: impl IntoIterator<Item = &'a str>) -> u64 {
        let mut prod: u128 = 1;
        let mut any = false;
        for c in columns {
            any = true;
            prod = prod.saturating_mul(self.distinct(c) as u128);
            if prod >= self.row_count as u128 {
                return self.row_count.max(1);
            }
        }
        if !any {
            return 1; // D(e, ∅) = one segment: the whole input
        }
        (prod as u64).min(self.row_count).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::Value;

    fn rows() -> Vec<Tuple> {
        // a: 2 distinct, b: 4 distinct
        (0..4)
            .map(|i| Tuple::new(vec![Value::Int(i % 2), Value::Int(i)]))
            .collect()
    }

    #[test]
    fn compute_counts_distincts() {
        let s = TableStats::compute(&["a".into(), "b".into()], &rows());
        assert_eq!(s.row_count, 4);
        assert_eq!(s.distinct("a"), 2);
        assert_eq!(s.distinct("b"), 4);
        assert!(s.avg_tuple_bytes > 0.0);
    }

    #[test]
    fn unknown_column_defaults_to_row_count() {
        let s = TableStats::compute(&["a".into()], &rows());
        assert_eq!(s.distinct("zzz"), 4);
    }

    #[test]
    fn set_distinct_caps_at_row_count() {
        let s = TableStats::compute(&["a".into(), "b".into()], &rows());
        // 2 * 4 = 8 > N = 4 → capped
        assert_eq!(s.distinct_of_set(["a", "b"]), 4);
        assert_eq!(s.distinct_of_set(["a"]), 2);
    }

    #[test]
    fn empty_set_is_one_segment() {
        let s = TableStats::compute(&["a".into()], &rows());
        assert_eq!(s.distinct_of_set([]), 1);
    }

    #[test]
    fn empty_table() {
        let s = TableStats::compute(&["a".into()], &[]);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.avg_tuple_bytes, 0.0);
        assert_eq!(s.distinct("a"), 1, "floor at 1 to avoid divide-by-zero");
    }
}
