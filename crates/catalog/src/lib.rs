//! # pyro-catalog
//!
//! Table and index metadata plus the statistics the PYRO cost model needs:
//! `N(e)` (row counts), `B(e)` (block counts), and `D(e, s)` (distinct value
//! counts for attribute sets, §3.2 of the paper).
//!
//! The catalog owns the storage handles: registering a table writes its heap
//! file in clustering order; registering a covering index writes a separate
//! sorted entry file, which is what makes "covering index scan" a genuinely
//! cheaper access path (fewer, narrower blocks) exactly as the paper
//! exploits.

pub mod catalog;
pub mod persist;
pub mod stats;
pub mod table;

pub use catalog::{Catalog, TableHandle};
pub use persist::CATALOG_ROOT_PAGE;
pub use stats::{ColumnStats, TableStats};
pub use table::{IndexMeta, TableMeta};
