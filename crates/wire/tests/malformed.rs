//! Hostile-input suite: raw sockets feeding the server truncated,
//! oversized, and garbage frames. The contract under attack is simple —
//! the server never panics, answers with a typed error frame whenever the
//! transport still works, and keeps serving everyone else.

use pyro::{Session, SortOrder};
use pyro_common::{error::codes, Schema};
use pyro_wire::frame::{read_frame, write_frame};
use pyro_wire::proto::{self, op};
use pyro_wire::{ServerConfig, WireClient, WireServer};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

fn server() -> WireServer {
    let mut session = Session::new();
    session
        .register_csv(
            "t",
            Schema::ints(&["a", "b"]),
            SortOrder::new(["a"]),
            "1,10\n2,20\n",
        )
        .unwrap();
    WireServer::start(Arc::new(session), ServerConfig::default()).unwrap()
}

/// Completes a valid handshake on a raw socket.
fn raw_handshake(stream: &mut TcpStream) {
    write_frame(stream, op::HELLO, &proto::enc_hello()).unwrap();
    stream.flush().unwrap();
    let (opcode, _) = read_frame(stream).unwrap().expect("WELCOME");
    assert_eq!(opcode, op::WELCOME);
}

/// The server must still serve a well-behaved client — proof no worker
/// thread died or panicked.
fn assert_server_healthy(addr: SocketAddr) {
    let mut client = WireClient::connect(addr).expect("healthy connect");
    let out = client
        .query("SELECT a, b FROM t ORDER BY a, b")
        .expect("healthy query");
    assert_eq!(out.rows.len(), 2);
}

/// What the server should do with one hostile byte sequence.
enum Expect {
    /// Typed error frame, then the connection is closed by the server.
    ErrorThenClose(u16),
    /// Typed error frame, and the *same* connection keeps working.
    ErrorThenSurvives(u16),
    /// Nothing to say (we broke the transport); server just closes.
    CloseOnly,
}

struct Case {
    name: &'static str,
    /// Complete the handshake before sending the hostile bytes?
    handshake: bool,
    bytes: Vec<u8>,
    expect: Expect,
}

fn frame_bytes(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::new();
    write_frame(&mut b, opcode, payload).unwrap();
    b
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "truncated length prefix then disconnect",
            handshake: true,
            bytes: vec![0x05, 0x00], // 2 of the 4 header bytes
            expect: Expect::CloseOnly,
        },
        Case {
            name: "oversized frame length (u32::MAX)",
            handshake: true,
            bytes: u32::MAX.to_le_bytes().to_vec(),
            expect: Expect::ErrorThenClose(codes::WIRE),
        },
        Case {
            name: "zero-length frame (no opcode)",
            handshake: true,
            bytes: 0u32.to_le_bytes().to_vec(),
            expect: Expect::ErrorThenClose(codes::WIRE),
        },
        Case {
            name: "mid-frame disconnect (header promises 100 bytes)",
            handshake: true,
            bytes: {
                let mut b = 100u32.to_le_bytes().to_vec();
                b.push(op::QUERY);
                b.extend_from_slice(&[0xab; 10]);
                b
            },
            expect: Expect::CloseOnly,
        },
        Case {
            name: "unknown opcode",
            handshake: true,
            bytes: frame_bytes(0x7f, b""),
            expect: Expect::ErrorThenSurvives(codes::WIRE),
        },
        Case {
            name: "QUERY with invalid UTF-8 SQL",
            handshake: true,
            bytes: frame_bytes(op::QUERY, &{
                let mut p = 4u32.to_le_bytes().to_vec();
                p.extend_from_slice(&[0xff, 0xfe, 0xfd, 0xfc]);
                p
            }),
            expect: Expect::ErrorThenSurvives(codes::WIRE),
        },
        Case {
            name: "QUERY with truncated string length",
            handshake: true,
            bytes: frame_bytes(op::QUERY, &1000u32.to_le_bytes()),
            expect: Expect::ErrorThenSurvives(codes::WIRE),
        },
        Case {
            name: "QUERY with trailing garbage after the SQL string",
            handshake: true,
            bytes: frame_bytes(op::QUERY, &{
                let mut p = proto::enc_sql("SELECT a FROM t ORDER BY a");
                p.push(0xee);
                p
            }),
            expect: Expect::ErrorThenSurvives(codes::WIRE),
        },
        Case {
            name: "EXECUTE with unknown value tag",
            handshake: true,
            bytes: frame_bytes(op::EXECUTE, &{
                let mut p = Vec::new();
                proto::put_u32(&mut p, 1);
                proto::put_u16(&mut p, 1);
                p.push(9); // no such tag
                p
            }),
            expect: Expect::ErrorThenSurvives(codes::WIRE),
        },
        Case {
            name: "first frame is QUERY, not HELLO",
            handshake: false,
            bytes: frame_bytes(op::QUERY, &proto::enc_sql("SELECT a FROM t")),
            expect: Expect::ErrorThenClose(codes::WIRE),
        },
        Case {
            name: "HELLO with wrong magic",
            handshake: false,
            bytes: frame_bytes(op::HELLO, &{
                let mut p = Vec::new();
                proto::put_u32(&mut p, 0xdead_beef);
                proto::put_u16(&mut p, proto::VERSION);
                p
            }),
            expect: Expect::ErrorThenClose(codes::WIRE),
        },
        Case {
            name: "HELLO with unsupported version",
            handshake: false,
            bytes: frame_bytes(op::HELLO, &{
                let mut p = Vec::new();
                proto::put_u32(&mut p, proto::MAGIC);
                proto::put_u16(&mut p, 999);
                p
            }),
            expect: Expect::ErrorThenClose(codes::WIRE),
        },
        Case {
            // The first 4 bytes parse as an absurd frame length; the
            // server rejects it and closes with unread bytes still in its
            // receive buffer, which surfaces client-side as a reset — so
            // the error frame is best-effort here.
            name: "raw garbage instead of any frame",
            handshake: false,
            bytes: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
            expect: Expect::CloseOnly,
        },
    ]
}

#[test]
fn hostile_inputs_never_panic_the_server() {
    let server = server();
    let addr = server.local_addr();

    for case in cases() {
        let mut stream = TcpStream::connect(addr).expect(case.name);
        stream.set_nodelay(true).unwrap();
        if case.handshake {
            raw_handshake(&mut stream);
        }
        stream.write_all(&case.bytes).expect(case.name);
        stream.flush().unwrap();

        match case.expect {
            Expect::CloseOnly => {
                // We broke the transport mid-frame; all the server can do
                // is close. Signal we're done writing so its fill loop
                // observes the disconnect rather than waiting forever.
                stream.shutdown(Shutdown::Write).ok();
                // Drain whatever the server managed to say; EOF must come.
                while let Ok(Some(_)) = read_frame(&mut stream) {}
            }
            Expect::ErrorThenClose(code) => {
                let (opcode, payload) = read_frame(&mut stream)
                    .unwrap_or_else(|e| panic!("{}: {e}", case.name))
                    .unwrap_or_else(|| panic!("{}: closed without an error frame", case.name));
                assert_eq!(opcode, op::ERROR, "{}", case.name);
                let e = proto::dec_error(&payload).expect(case.name);
                assert_eq!(e.code(), code, "{}: {e}", case.name);
                // Clean EOF, or a reset if the server's close raced our
                // read — either way, no further frames.
                assert!(
                    !matches!(read_frame(&mut stream), Ok(Some(_))),
                    "{}: connection must be closed after the error",
                    case.name
                );
            }
            Expect::ErrorThenSurvives(code) => {
                let (opcode, payload) = read_frame(&mut stream)
                    .unwrap_or_else(|e| panic!("{}: {e}", case.name))
                    .unwrap_or_else(|| panic!("{}: closed without an error frame", case.name));
                assert_eq!(opcode, op::ERROR, "{}", case.name);
                let e = proto::dec_error(&payload).expect(case.name);
                assert_eq!(e.code(), code, "{}: {e}", case.name);
                // Same connection, valid request: must still be served.
                write_frame(
                    &mut stream,
                    op::QUERY,
                    &proto::enc_sql("SELECT a FROM t ORDER BY a"),
                )
                .expect(case.name);
                stream.flush().unwrap();
                let (opcode, _) = read_frame(&mut stream)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{}: no response to follow-up", case.name));
                assert_eq!(opcode, op::SCHEMA, "{}: follow-up must succeed", case.name);
                loop {
                    match read_frame(&mut stream).unwrap() {
                        Some((op::DONE, _)) => break,
                        Some((op::ROWS, _)) => continue,
                        other => panic!("{}: unexpected follow-up frame {other:?}", case.name),
                    }
                }
            }
        }

        // Whatever just happened, the server keeps serving everyone else.
        assert_server_healthy(addr);
    }
    server.shutdown();
}

#[test]
fn immediate_disconnect_without_a_single_byte_is_clean() {
    let server = server();
    for _ in 0..16 {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        drop(stream);
    }
    assert_server_healthy(server.local_addr());
    server.shutdown();
}
