//! End-to-end tests: a real `WireServer` on a loopback socket, driven by
//! `WireClient`, checked against direct `Session::sql` execution.

use pyro::datagen::tpch::{self, TpchConfig};
use pyro::{Session, SessionBuilder, SortOrder};
use pyro_common::{error::codes, PyroError, Schema, Value};
use pyro_wire::{proto, AdmissionConfig, ServerConfig, WireClient, WireServer};
use std::sync::Arc;
use std::time::Duration;

/// The same four-query mix `bench_serve` measures; parity here must be
/// bit-identical, not just value-equal.
const MIX: [&str; 4] = [
    "SELECT l_suppkey, l_partkey FROM lineitem ORDER BY l_suppkey, l_partkey",
    "SELECT l_suppkey, l_partkey, l_quantity FROM lineitem WHERE l_linestatus = 'O'",
    "SELECT ps_suppkey, ps_partkey, ps_availqty, count(l_partkey) AS n \
     FROM partsupp, lineitem \
     WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
     GROUP BY ps_suppkey, ps_partkey, ps_availqty \
     ORDER BY ps_suppkey, ps_partkey",
    "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = 3 \
     ORDER BY l_orderkey, l_quantity",
];

fn tpch_session(cache_entries: usize) -> Arc<Session> {
    let mut session = SessionBuilder::new()
        .plan_cache_entries(cache_entries)
        .build();
    let cfg = TpchConfig {
        lineitems: 2_000,
        parts: 100,
        suppliers: 10,
    };
    tpch::load_with_seed(session.catalog_mut(), cfg, pyro::datagen::SEED).unwrap();
    Arc::new(session)
}

fn tiny_session() -> Arc<Session> {
    let mut session = Session::new();
    session
        .register_csv(
            "t",
            Schema::ints(&["a", "b"]),
            SortOrder::new(["a"]),
            "1,10\n2,20\n3,30\n4,40\n5,50\n",
        )
        .unwrap();
    Arc::new(session)
}

fn start(session: Arc<Session>, cfg: ServerConfig) -> WireServer {
    WireServer::start(session, cfg).expect("server starts")
}

#[test]
fn wire_rows_bit_identical_to_direct_execution_for_the_bench_mix() {
    let session = tpch_session(64);
    let server = start(Arc::clone(&session), ServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    for sql in MIX {
        let direct = session.sql(sql).expect("direct run");
        let wire = client.query(sql).expect("wire run");
        assert_eq!(wire.schema, *direct.schema(), "schema mismatch for {sql}");
        // Compare the *encodings*: captures exact double bits, not just
        // PartialEq (which would pass -0.0 == 0.0 and fail NaN == NaN).
        assert_eq!(
            proto::enc_rows(&wire.rows),
            proto::enc_rows(direct.rows()),
            "row mismatch for {sql}"
        );
        assert_eq!(wire.total_rows as usize, direct.rows().len());
    }
    server.shutdown();
}

#[test]
fn prepared_statement_lifecycle_over_the_wire() {
    let session = tpch_session(64);
    let server = start(Arc::clone(&session), ServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    let sql = "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = ? \
               ORDER BY l_orderkey, l_quantity";
    let stmt = client.prepare(sql).unwrap();
    assert_eq!(stmt.param_count, 1);

    for k in [1i64, 3, 7] {
        let wire = client.execute(stmt, &[Value::Int(k)]).unwrap();
        let literal = format!(
            "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = {k} \
             ORDER BY l_orderkey, l_quantity"
        );
        let direct = session.sql(&literal).unwrap();
        assert_eq!(
            proto::enc_rows(&wire.rows),
            proto::enc_rows(direct.rows()),
            "binding {k}"
        );
    }

    // Wrong arity is a typed request-level error; the connection survives.
    let e = client.execute(stmt, &[]).expect_err("0 of 1 params bound");
    assert_eq!(e.code(), codes::PARAM_BINDING, "{e}");

    client.close(stmt).unwrap();
    let e = client
        .execute(stmt, &[Value::Int(1)])
        .expect_err("closed statement");
    assert_eq!(e.code(), codes::WIRE, "{e}");
    let e = client.close(stmt).expect_err("double close");
    assert_eq!(e.code(), codes::WIRE, "{e}");

    // Still healthy after all those errors.
    assert!(client.query(MIX[3]).is_ok());
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn full_gate_with_empty_queue_sheds_typed_overload() {
    let session = tiny_session();
    let server = start(
        session,
        ServerConfig {
            admission: AdmissionConfig {
                max_concurrent: 1,
                max_queue: 0,
                queue_timeout: Duration::from_millis(10),
            },
            ..ServerConfig::default()
        },
    );
    let gate = server.admission();
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    // Deterministically occupy the only slot from the test itself.
    let held = gate.admit().expect("the only slot");
    let e = client
        .query("SELECT a, b FROM t ORDER BY a, b")
        .expect_err("gate full, queue empty");
    assert!(matches!(e, PyroError::ServerOverloaded(_)), "{e}");
    assert_eq!(e.code(), codes::SERVER_OVERLOADED);
    assert_eq!(server.admission_stats().shed_queue_full, 1);

    // Shedding is graceful: same connection works once the slot frees.
    drop(held);
    let out = client.query("SELECT a, b FROM t ORDER BY a, b").unwrap();
    assert_eq!(out.rows.len(), 5);
    server.shutdown();
}

#[test]
fn queued_request_times_out_into_typed_overload() {
    let session = tiny_session();
    let server = start(
        session,
        ServerConfig {
            admission: AdmissionConfig {
                max_concurrent: 1,
                max_queue: 4,
                queue_timeout: Duration::from_millis(40),
            },
            ..ServerConfig::default()
        },
    );
    let gate = server.admission();
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    let held = gate.admit().expect("the only slot");
    let e = client
        .query("SELECT a FROM t ORDER BY a")
        .expect_err("queued, then timed out");
    assert!(matches!(e, PyroError::ServerOverloaded(_)), "{e}");
    assert_eq!(server.admission_stats().shed_timeout, 1);
    drop(held);
    assert!(client.query("SELECT a FROM t ORDER BY a").is_ok());
    server.shutdown();
}

#[test]
fn row_budget_cancels_mid_stream_with_typed_error() {
    let session = tpch_session(0);
    let server = start(
        Arc::clone(&session),
        ServerConfig {
            // Between the point query's ~200 rows and the full scan's 2000.
            max_rows_per_query: 500,
            ..ServerConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    // 2000 lineitem rows > the 500-row budget.
    let e = client.query(MIX[0]).expect_err("row budget");
    assert!(matches!(e, PyroError::BudgetExceeded(_)), "{e}");
    assert_eq!(e.code(), codes::BUDGET_EXCEEDED);

    // A query under budget still works on the same connection, and
    // matches direct execution.
    let wire = client.query(MIX[3]).expect("point query fits the budget");
    let direct = session.sql(MIX[3]).unwrap();
    assert_eq!(proto::enc_rows(&wire.rows), proto::enc_rows(direct.rows()));
    server.shutdown();
}

#[test]
fn byte_budget_cancels_mid_stream_with_typed_error() {
    let session = tpch_session(0);
    let server = start(
        session,
        ServerConfig {
            // Between the point query's ~4 KiB response and the scan's ~36 KiB.
            max_response_bytes: 8 * 1024,
            ..ServerConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let e = client.query(MIX[0]).expect_err("byte budget");
    assert!(matches!(e, PyroError::BudgetExceeded(_)), "{e}");
    assert!(client.query(MIX[3]).is_ok(), "connection survives");
    server.shutdown();
}

#[test]
fn sql_errors_are_typed_and_do_not_kill_the_connection() {
    let session = tiny_session();
    let server = start(session, ServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    let e = client
        .query("SELECT nope FROM t ORDER BY nope")
        .expect_err("unknown column");
    assert_eq!(e.code(), codes::UNKNOWN_COLUMN, "{e}");
    let e = client
        .query("SELECT a FROM missing ORDER BY a")
        .expect_err("unknown table");
    assert_eq!(e.code(), codes::UNKNOWN_TABLE, "{e}");
    let e = client.prepare("SELECT ? FROM").expect_err("parse error");
    assert_eq!(e.code(), codes::SQL, "{e}");

    let out = client.query("SELECT a, b FROM t ORDER BY a, b").unwrap();
    assert_eq!(out.rows.len(), 5);
    server.shutdown();
}

#[test]
fn done_frame_reports_plan_cache_interaction() {
    let session = tpch_session(8);
    let server = start(session, ServerConfig::default());
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    let first = client.query(MIX[3]).unwrap();
    assert_eq!(first.cache_hit, Some(false), "cold cache: miss");
    let second = client.query(MIX[3]).unwrap();
    assert_eq!(second.cache_hit, Some(true), "warm cache: hit");

    // With the cache disabled the flag says so.
    let nocache = tiny_session();
    let server2 = start(nocache, ServerConfig::default());
    let mut client2 = WireClient::connect(server2.local_addr()).unwrap();
    let out = client2.query("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(out.cache_hit, None);
    server2.shutdown();
    server.shutdown();
}

#[test]
fn many_concurrent_clients_all_get_correct_results() {
    let session = tpch_session(64);
    let server = start(
        Arc::clone(&session),
        ServerConfig {
            conn_threads: 4,
            admission: AdmissionConfig {
                max_concurrent: 2,
                max_queue: 64,
                queue_timeout: Duration::from_secs(10),
            },
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();
    let expected: Vec<Vec<u8>> = MIX
        .iter()
        .map(|sql| proto::enc_rows(session.sql(sql).unwrap().rows()))
        .collect();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).unwrap();
                for round in 0..3 {
                    let q = (i + round) % MIX.len();
                    let out = client.query(MIX[q]).unwrap();
                    assert_eq!(proto::enc_rows(&out.rows), expected[q], "query {q}");
                }
                client.bye().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.admission_stats();
    assert_eq!(stats.admitted, 24, "every query admitted (deep queue)");
    assert!(stats.peak_running <= 2, "admission limit respected");
    server.shutdown();
}

#[test]
fn registry_bound_is_enforced_per_connection() {
    let session = tiny_session();
    let server = start(
        session,
        ServerConfig {
            max_prepared_statements: 2,
            ..ServerConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let a = client.prepare("SELECT a FROM t WHERE a = ?").unwrap();
    let _b = client.prepare("SELECT b FROM t WHERE a = ?").unwrap();
    let e = client
        .prepare("SELECT a, b FROM t WHERE a = ?")
        .expect_err("registry full");
    assert_eq!(e.code(), codes::WIRE, "{e}");
    client.close(a).unwrap();
    assert!(
        client.prepare("SELECT a, b FROM t WHERE a = ?").is_ok(),
        "closing frees capacity"
    );

    // A second connection gets its own registry.
    let mut other = WireClient::connect(server.local_addr()).unwrap();
    assert!(other.prepare("SELECT a FROM t WHERE a = ?").is_ok());
    server.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_joins_cleanly() {
    let session = tiny_session();
    let server = start(Arc::clone(&session), ServerConfig::default());
    let addr = server.local_addr();
    {
        let mut client = WireClient::connect(addr).unwrap();
        assert!(client.query("SELECT a FROM t ORDER BY a").is_ok());
    }
    server.shutdown();
    // The port is released: a fresh server can bind a fresh port and serve.
    let server2 = start(session, ServerConfig::default());
    let mut client = WireClient::connect(server2.local_addr()).unwrap();
    assert!(client.query("SELECT a FROM t ORDER BY a").is_ok());
    drop(server2); // Drop also shuts down
}

#[test]
fn graceful_shutdown_checkpoints_a_durable_session() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("wire_graceful_shutdown");
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    let mut session = SessionBuilder::new()
        .data_dir(&dir)
        .buffer_pool_pages(8)
        .wal_checkpoint_bytes(u64::MAX)
        .open()
        .expect("open durable session");
    session
        .register_csv(
            "t",
            Schema::ints(&["a", "b"]),
            SortOrder::new(["a"]),
            "1,10\n2,20\n3,30\n",
        )
        .unwrap();
    // Uncheckpointed: the registration lives in the WAL.
    assert!(std::fs::metadata(dir.join("wal.pyro")).unwrap().len() > pyro::storage::WAL_HEADER_LEN);

    let server = start(Arc::new(session), ServerConfig::default());
    let mut client =
        WireClient::connect_with_retry(server.local_addr(), Duration::from_secs(2)).unwrap();
    assert_eq!(
        client
            .query("SELECT a, b FROM t ORDER BY a")
            .unwrap()
            .total_rows,
        3
    );
    server.shutdown();

    // Shutdown drained, flushed and checkpointed: the WAL is back to its
    // bare header, and a reopen serves the table without any replay.
    assert_eq!(
        std::fs::metadata(dir.join("wal.pyro")).unwrap().len(),
        pyro::storage::WAL_HEADER_LEN
    );
    let reopened = SessionBuilder::new().data_dir(&dir).open().expect("reopen");
    assert_eq!(
        reopened.sql("SELECT a, b FROM t ORDER BY a").unwrap().len(),
        3
    );
}

#[test]
fn connect_with_retry_waits_out_a_slow_bind() {
    // Reserve a port, free it, and bind the server there only after a
    // delay — the window where plain connect gets ConnectionRefused. The
    // probe uses 127.0.0.2 so no concurrent test's `127.0.0.1:0` bind can
    // recycle the freed port out from under us.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.2:0").unwrap();
        probe.local_addr().unwrap()
    };
    let session = tiny_session();
    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        start(
            session,
            ServerConfig {
                addr: addr.to_string(),
                ..ServerConfig::default()
            },
        )
    });

    let mut client =
        WireClient::connect_with_retry(addr, Duration::from_secs(10)).expect("retry until bind");
    assert!(client.query("SELECT a FROM t ORDER BY a").is_ok());
    starter.join().unwrap().shutdown();
}

#[test]
fn connect_with_retry_gives_up_after_the_deadline() {
    // 127.0.0.3: see connect_with_retry_waits_out_a_slow_bind.
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.3:0").unwrap();
        probe.local_addr().unwrap()
    };
    let started = std::time::Instant::now();
    let err = WireClient::connect_with_retry(addr, Duration::from_millis(200))
        .expect_err("nobody is listening");
    assert!(
        matches!(err, PyroError::Wire(ref m) if m.contains("retries exhausted")),
        "{err:?}"
    );
    assert!(started.elapsed() >= Duration::from_millis(200));
}
