//! # pyro-wire
//!
//! The zero-dependency TCP serving front door for the PYRO engine: a
//! length-prefixed binary protocol over `std::net`, admission control in
//! front of a shared [`pyro::Session`], and the in-crate [`WireClient`]
//! that tests and benches drive it with. See `DESIGN.md` §10 for the frame
//! format and the admission state machine.
//!
//! ```no_run
//! use pyro::{Session, SortOrder, common::Schema};
//! use pyro_wire::{ServerConfig, WireClient, WireServer};
//! use std::sync::Arc;
//!
//! let mut session = Session::new();
//! session
//!     .register_csv("t", Schema::ints(&["a", "b"]), SortOrder::new(["a"]), "1,10\n2,20\n")
//!     .unwrap();
//! let server = WireServer::start(Arc::new(session), ServerConfig::default()).unwrap();
//!
//! let mut client = WireClient::connect(server.local_addr()).unwrap();
//! let out = client.query("SELECT a, b FROM t ORDER BY a, b").unwrap();
//! assert_eq!(out.rows.len(), 2);
//! server.shutdown();
//! ```
//!
//! The module layering, bottom-up:
//!
//! * [`frame`] — length-prefixed frame codec (cancellable reads, size
//!   caps);
//! * [`proto`] — opcodes and typed message encode/decode, including the
//!   value codec that round-trips rows bit-identically;
//! * [`admission`] — the concurrency gate with its bounded, timed wait
//!   queue and typed shedding;
//! * [`registry`] — the per-connection prepared-statement table;
//! * [`server`] — listener, connection thread pool, protocol state
//!   machine, streaming + budgets;
//! * [`client`] — the synchronous reference client.

#![deny(missing_docs)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod proto;
pub mod registry;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionStats, Permit};
pub use client::{WireClient, WireRows, WireStatement};
pub use server::{ServerConfig, WireServer};
