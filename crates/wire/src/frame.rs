//! Length-prefixed frame codec — the lowest layer of the wire protocol.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! +----------------+-----------+------------------------+
//! | len: u32 LE    | opcode u8 | payload (len - 1 bytes)|
//! +----------------+-----------+------------------------+
//! ```
//!
//! `len` counts the opcode byte plus the payload, so a valid frame always
//! has `1 <= len <= MAX_FRAME`. A peer announcing a bigger frame is lying
//! or broken; the codec rejects it *before* allocating, so a hostile
//! 4 GiB length prefix cannot balloon server memory.
//!
//! Reading is **cancellable**: the server installs a short socket read
//! timeout and passes a cancellation probe; each timeout tick re-checks it
//! (shutdown stays responsive even when a client sits idle mid-keepalive).
//! Partial reads never lose bytes — the fill loop owns the buffer, so a
//! timeout between the length prefix and the body simply resumes filling.

use pyro_common::{PyroError, Result};
use std::io::{ErrorKind, Read, Write};

/// Upper bound on `len` (opcode + payload), 16 MiB. Bounds both peers'
/// allocations; a streamed result is many frames, not one big one.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// What a cancellable frame read produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame: opcode and payload.
    Frame(u8, Vec<u8>),
    /// The peer closed the connection cleanly *between* frames.
    Eof,
    /// The cancellation probe fired (server shutdown).
    Cancelled,
}

/// Maps an I/O failure into the typed wire error.
pub fn io_err(context: &str, e: &std::io::Error) -> PyroError {
    PyroError::Wire(format!("{context}: {e}"))
}

/// Fills `buf` completely, tolerating read timeouts. Returns `Ok(false)`
/// iff the peer disconnected before the first byte of `buf` (the caller
/// decides whether that spot is a clean frame boundary); a disconnect
/// mid-buffer is a hard error. `cancelled` is probed on every timeout tick.
fn fill(r: &mut impl Read, buf: &mut [u8], cancelled: &dyn Fn() -> bool) -> Result<Option<bool>> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(Some(false));
                }
                return Err(PyroError::Wire(format!(
                    "peer disconnected mid-frame ({filled} of {} bytes)",
                    buf.len()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if cancelled() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read", &e)),
        }
    }
    Ok(Some(true))
}

/// Reads one frame, probing `cancelled` while blocked (see module docs).
pub fn read_frame_cancellable(
    r: &mut impl Read,
    cancelled: &dyn Fn() -> bool,
) -> Result<ReadOutcome> {
    let mut header = [0u8; 4];
    match fill(r, &mut header, cancelled)? {
        None => return Ok(ReadOutcome::Cancelled),
        Some(false) => return Ok(ReadOutcome::Eof),
        Some(true) => {}
    }
    let len = u32::from_le_bytes(header);
    if len == 0 {
        return Err(PyroError::Wire("zero-length frame (no opcode)".into()));
    }
    if len > MAX_FRAME {
        return Err(PyroError::Wire(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    // Opcode and payload are read separately so the payload lands at
    // offset 0 of its buffer (no post-hoc shift of a multi-megabyte frame).
    let mut opcode = [0u8; 1];
    match fill(r, &mut opcode, cancelled)? {
        None => return Ok(ReadOutcome::Cancelled),
        Some(false) => {
            return Err(PyroError::Wire(
                "peer disconnected between frame header and body".into(),
            ))
        }
        Some(true) => {}
    }
    let mut payload = vec![0u8; len as usize - 1];
    match fill(r, &mut payload, cancelled)? {
        None => return Ok(ReadOutcome::Cancelled),
        Some(false) => {
            return Err(PyroError::Wire(
                "peer disconnected between frame header and body".into(),
            ))
        }
        Some(true) => {}
    }
    Ok(ReadOutcome::Frame(opcode[0], payload))
}

/// Blocking [`read_frame_cancellable`] for clients: `Ok(None)` on clean
/// EOF, `Ok(Some((opcode, payload)))` otherwise.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>> {
    match read_frame_cancellable(r, &|| false)? {
        ReadOutcome::Frame(op, payload) => Ok(Some((op, payload))),
        ReadOutcome::Eof => Ok(None),
        ReadOutcome::Cancelled => unreachable!("probe is constant false"),
    }
}

/// Writes one frame (header + opcode + payload). The caller flushes.
pub fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> Result<()> {
    let len = payload
        .len()
        .checked_add(1)
        .filter(|&l| l <= MAX_FRAME as usize)
        .ok_or_else(|| {
            PyroError::Wire(format!(
                "outgoing frame of {} bytes exceeds the {MAX_FRAME}-byte limit",
                payload.len()
            ))
        })? as u32;
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(&[opcode]))
        .and_then(|()| w.write_all(payload))
        .map_err(|e| io_err("write", &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(opcode: u8, payload: &[u8]) -> (u8, Vec<u8>) {
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode, payload).unwrap();
        match read_frame(&mut Cursor::new(buf)).unwrap() {
            Some(f) => f,
            None => panic!("frame expected"),
        }
    }

    #[test]
    fn frame_round_trips() {
        let (op, payload) = roundtrip(0x42, b"hello");
        assert_eq!(op, 0x42);
        assert_eq!(payload, b"hello");
        let (op, payload) = roundtrip(0x01, b"");
        assert_eq!(op, 0x01);
        assert!(payload.is_empty());
    }

    #[test]
    fn clean_eof_between_frames() {
        assert!(read_frame(&mut Cursor::new(Vec::new())).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_an_error() {
        let e = read_frame(&mut Cursor::new(vec![5, 0])).unwrap_err();
        assert!(matches!(e, PyroError::Wire(_)), "{e}");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0x02, b"truncated payload").unwrap();
        buf.truncate(buf.len() - 3);
        let e = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(e, PyroError::Wire(_)), "{e}");
    }

    #[test]
    fn zero_and_oversized_lengths_rejected_before_allocating() {
        let e = read_frame(&mut Cursor::new(0u32.to_le_bytes().to_vec())).unwrap_err();
        assert!(e.to_string().contains("zero-length"), "{e}");
        // A hostile 4 GiB announcement must fail on the *length*, without
        // the codec trying to allocate or read that much.
        let e = read_frame(&mut Cursor::new(u32::MAX.to_le_bytes().to_vec())).unwrap_err();
        assert!(e.to_string().contains("exceeds"), "{e}");
    }

    #[test]
    fn outgoing_oversize_rejected() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Lie about the length without allocating 16 MiB: a zero-copy
        // repeat-slice stand-in is overkill here, so just use a capacity
        // check at the boundary value.
        let payload = vec![0u8; MAX_FRAME as usize];
        let e = write_frame(&mut NullSink, 0x01, &payload).unwrap_err();
        assert!(matches!(e, PyroError::Wire(_)), "{e}");
    }
}
