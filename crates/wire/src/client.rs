//! `WireClient` — the in-crate reference client, used by the integration
//! tests and the `bench_wire` harness.
//!
//! One client drives one connection, synchronously: send a request frame,
//! read the response frames. Server-side failures come back as the same
//! typed [`PyroError`] variant the server produced (reconstructed from the
//! stable code in the error frame), so callers can `match` on
//! `ServerOverloaded`, `BudgetExceeded`, `Sql`, ... without string parsing.

use crate::frame::{io_err, read_frame, write_frame};
use crate::proto::{self, op};
use pyro_common::{PyroError, Result, Schema, Tuple, Value};
use std::io::{ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A complete query response received over the wire.
#[derive(Debug)]
pub struct WireRows {
    /// Result schema (qualified column names), as sent by the server.
    pub schema: Schema,
    /// All received rows, in stream order.
    pub rows: Vec<Tuple>,
    /// Row count reported by the server's `DONE` frame.
    pub total_rows: u64,
    /// Server-side elapsed time (admission to `DONE`), microseconds.
    pub elapsed_us: u64,
    /// Plan-cache interaction: `None` if the session has no cache, else
    /// whether this query's plan was a cache hit.
    pub cache_hit: Option<bool>,
}

/// A server-side prepared statement handle.
#[derive(Debug, Clone, Copy)]
pub struct WireStatement {
    /// Server-assigned id, scoped to this connection.
    pub id: u32,
    /// Number of `?` placeholders to bind on execute.
    pub param_count: u16,
}

/// A synchronous client connection; see the [module docs](self).
#[derive(Debug)]
pub struct WireClient {
    reader: TcpStream,
    writer: TcpStream,
    server: String,
}

impl WireClient {
    /// Connects and completes the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<WireClient> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", &e))?;
        WireClient::handshake(stream)
    }

    /// Like [`WireClient::connect`], but retries `ConnectionRefused` with
    /// capped exponential backoff (10 ms doubling to 500 ms) until
    /// `max_wait` elapses — the idiom for "the server is still binding its
    /// port". Any other failure, including refusal after the deadline,
    /// returns immediately.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        max_wait: Duration,
    ) -> Result<WireClient> {
        let deadline = Instant::now() + max_wait;
        let mut backoff = Duration::from_millis(10);
        loop {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return WireClient::handshake(stream),
                Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(io_err("connect (retries exhausted)", &e));
                    }
                    std::thread::sleep(backoff.min(left));
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
                Err(e) => return Err(io_err("connect", &e)),
            }
        }
    }

    fn handshake(stream: TcpStream) -> Result<WireClient> {
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone().map_err(|e| io_err("clone socket", &e))?;
        let mut client = WireClient {
            reader,
            writer: stream,
            server: String::new(),
        };
        client.send(op::HELLO, &proto::enc_hello())?;
        let (opcode, payload) = client.recv()?;
        match opcode {
            op::WELCOME => {
                let (version, server) = proto::dec_welcome(&payload)?;
                if version != proto::VERSION {
                    return Err(PyroError::Wire(format!(
                        "server speaks protocol v{version}, this client v{}",
                        proto::VERSION
                    )));
                }
                client.server = server;
                Ok(client)
            }
            op::ERROR => Err(proto::dec_error(&payload)?),
            other => Err(unexpected(other, "WELCOME")),
        }
    }

    /// The server banner from the handshake.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Runs one SQL query, collecting the streamed response.
    pub fn query(&mut self, sql: &str) -> Result<WireRows> {
        self.send(op::QUERY, &proto::enc_sql(sql))?;
        self.read_result()
    }

    /// Prepares a (possibly `?`-parameterized) statement server-side.
    pub fn prepare(&mut self, sql: &str) -> Result<WireStatement> {
        self.send(op::PREPARE, &proto::enc_sql(sql))?;
        let (opcode, payload) = self.recv()?;
        match opcode {
            op::PREPARED => {
                let (id, param_count) = proto::dec_prepared(&payload)?;
                Ok(WireStatement { id, param_count })
            }
            op::ERROR => Err(proto::dec_error(&payload)?),
            other => Err(unexpected(other, "PREPARED")),
        }
    }

    /// Executes a prepared statement with `params` bound positionally.
    pub fn execute(&mut self, stmt: WireStatement, params: &[Value]) -> Result<WireRows> {
        self.send(op::EXECUTE, &proto::enc_execute(stmt.id, params))?;
        self.read_result()
    }

    /// Closes a prepared statement server-side.
    pub fn close(&mut self, stmt: WireStatement) -> Result<()> {
        self.send(op::CLOSE, &proto::enc_stmt_id(stmt.id))?;
        let (opcode, payload) = self.recv()?;
        match opcode {
            op::CLOSED => {
                let id = proto::dec_stmt_id(&payload)?;
                if id != stmt.id {
                    return Err(PyroError::Wire(format!(
                        "server closed statement {id}, expected {}",
                        stmt.id
                    )));
                }
                Ok(())
            }
            op::ERROR => Err(proto::dec_error(&payload)?),
            other => Err(unexpected(other, "CLOSED")),
        }
    }

    /// Says goodbye and closes the connection.
    pub fn bye(mut self) -> Result<()> {
        self.send(op::BYE, &[])
    }

    fn send(&mut self, opcode: u8, payload: &[u8]) -> Result<()> {
        write_frame(&mut self.writer, opcode, payload)?;
        self.writer.flush().map_err(|e| io_err("flush", &e))
    }

    fn recv(&mut self) -> Result<(u8, Vec<u8>)> {
        read_frame(&mut self.reader)?
            .ok_or_else(|| PyroError::Wire("server closed the connection".into()))
    }

    /// Reads one `SCHEMA` / `ROWS`* / `DONE` response (or a typed `ERROR`
    /// anywhere in it).
    fn read_result(&mut self) -> Result<WireRows> {
        let (opcode, payload) = self.recv()?;
        let schema = match opcode {
            op::SCHEMA => proto::dec_schema(&payload)?,
            op::ERROR => return Err(proto::dec_error(&payload)?),
            other => return Err(unexpected(other, "SCHEMA")),
        };
        let ncols = schema.len();
        let mut rows: Vec<Tuple> = Vec::new();
        loop {
            let (opcode, payload) = self.recv()?;
            match opcode {
                op::ROWS => rows.extend(proto::dec_rows(&payload, ncols)?),
                op::DONE => {
                    let (total_rows, elapsed_us, cache) = proto::dec_done(&payload)?;
                    if total_rows != rows.len() as u64 {
                        return Err(PyroError::Wire(format!(
                            "server reported {total_rows} rows, received {}",
                            rows.len()
                        )));
                    }
                    let cache_hit = match cache {
                        proto::CACHE_OFF => None,
                        proto::CACHE_HIT => Some(true),
                        _ => Some(false),
                    };
                    return Ok(WireRows {
                        schema,
                        rows,
                        total_rows,
                        elapsed_us,
                        cache_hit,
                    });
                }
                op::ERROR => return Err(proto::dec_error(&payload)?),
                other => return Err(unexpected(other, "ROWS/DONE")),
            }
        }
    }
}

fn unexpected(opcode: u8, wanted: &str) -> PyroError {
    PyroError::Wire(format!(
        "unexpected opcode {opcode:#04x} (expected {wanted})"
    ))
}
