//! Per-connection prepared-statement registry.
//!
//! Each connection owns one [`StmtRegistry`] mapping server-assigned
//! statement ids to [`SharedPrepared`] handles. Ids are never reused within
//! a connection (a monotonic counter), so a stale id from a closed
//! statement can only miss — it can never silently address a newer
//! statement. The registry is bounded: a client leaking statements gets a
//! typed error instead of exhausting server memory.

use pyro::SharedPrepared;
use pyro_common::{PyroError, Result};
use std::collections::HashMap;

/// Bounded id → statement map; see the [module docs](self).
#[derive(Debug)]
pub struct StmtRegistry {
    map: HashMap<u32, SharedPrepared>,
    next_id: u32,
    capacity: usize,
}

impl StmtRegistry {
    /// A registry holding at most `capacity` statements (floor 1).
    pub fn new(capacity: usize) -> StmtRegistry {
        StmtRegistry {
            map: HashMap::new(),
            next_id: 1,
            capacity: capacity.max(1),
        }
    }

    /// Registers a statement, assigning the connection's next id.
    pub fn insert(&mut self, stmt: SharedPrepared) -> Result<u32> {
        if self.map.len() >= self.capacity {
            return Err(PyroError::Wire(format!(
                "prepared-statement registry full ({} statements); CLOSE one first",
                self.capacity
            )));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.map.insert(id, stmt);
        Ok(id)
    }

    /// Looks up a statement by id.
    pub fn get(&self, id: u32) -> Result<&SharedPrepared> {
        self.map
            .get(&id)
            .ok_or_else(|| PyroError::Wire(format!("unknown statement id {id}")))
    }

    /// Closes a statement; an unknown id is a typed error.
    pub fn remove(&mut self, id: u32) -> Result<()> {
        self.map
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| PyroError::Wire(format!("unknown statement id {id}")))
    }

    /// Statements currently registered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no statements are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro::{Session, SortOrder};
    use pyro_common::Schema;
    use std::sync::Arc;

    fn stmt() -> SharedPrepared {
        let mut session = Session::new();
        session
            .register_csv("t", Schema::ints(&["a"]), SortOrder::new(["a"]), "1\n")
            .unwrap();
        Arc::new(session).prepare_shared("SELECT a FROM t").unwrap()
    }

    #[test]
    fn ids_are_monotonic_and_never_reused() {
        let mut reg = StmtRegistry::new(4);
        let a = reg.insert(stmt()).unwrap();
        let b = reg.insert(stmt()).unwrap();
        assert!(b > a);
        reg.remove(a).unwrap();
        let c = reg.insert(stmt()).unwrap();
        assert!(c > b, "closed id must not be recycled");
        assert!(reg.get(a).is_err(), "closed id misses");
        assert!(reg.get(b).is_ok() && reg.get(c).is_ok());
    }

    #[test]
    fn bounded_with_typed_error() {
        let mut reg = StmtRegistry::new(2);
        reg.insert(stmt()).unwrap();
        reg.insert(stmt()).unwrap();
        let e = reg.insert(stmt()).expect_err("registry is full");
        assert!(matches!(e, PyroError::Wire(_)), "{e}");
        assert_eq!(reg.len(), 2);
        reg.remove(1).unwrap();
        assert!(reg.insert(stmt()).is_ok(), "freed capacity readmits");
    }

    #[test]
    fn unknown_ids_are_typed_errors() {
        let mut reg = StmtRegistry::new(2);
        assert!(reg.get(7).is_err());
        assert!(reg.remove(7).is_err());
        assert!(reg.is_empty());
    }
}
