//! The TCP serving front door: listener, connection thread pool, and the
//! per-connection protocol state machine.
//!
//! ## Threading model
//!
//! One **accept thread** pulls connections off the listener and hands them
//! to a fixed pool of **connection workers** over a bounded queue. When
//! every worker is busy and the queue is full, the connection is *shed at
//! accept*: it gets a typed `ServerOverloaded` error frame and a clean
//! close instead of an unbounded backlog. Inside a connection, QUERY and
//! EXECUTE additionally pass the [`AdmissionGate`] — the query-level gate —
//! before touching the session.
//!
//! ## Streaming and budgets
//!
//! Results are never fully materialized on the server: each
//! [`pyro::QueryStream`] batch is encoded and flushed as its own `ROWS`
//! frame. Per-query budgets (result rows, response bytes) are checked
//! batch-by-batch; exceeding one cancels the query mid-stream with a typed
//! `BudgetExceeded` error frame — the connection stays healthy.
//!
//! ## Error policy
//!
//! Frames are length-delimited, so a malformed *payload* never desyncs the
//! stream: the server answers with a typed error frame and keeps serving
//! the connection. Only transport-level problems (unreadable frame
//! header, handshake violation, write failure) close the connection — and
//! always cleanly, never by panicking.

use crate::admission::{AdmissionConfig, AdmissionGate, AdmissionStats};
use crate::frame::{read_frame_cancellable, write_frame, ReadOutcome};
use crate::proto::{self, op};
use crate::registry::StmtRegistry;
use pyro::{QueryStream, Session};
use pyro_common::{PyroError, Result};
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server enforces; `Default` is a sensible local setup.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port `0` picks a free port (see
    /// [`WireServer::local_addr`]).
    pub addr: String,
    /// Connection worker threads — concurrently *served* connections.
    pub conn_threads: usize,
    /// Accepted connections allowed to wait for a free worker before new
    /// arrivals are shed at accept time.
    pub max_pending_conns: usize,
    /// Query-level admission control (concurrency + wait queue + timeout).
    pub admission: AdmissionConfig,
    /// Per-query result-row budget; `0` = unlimited.
    pub max_rows_per_query: u64,
    /// Per-query response-byte budget (ROWS payload bytes); `0` = unlimited.
    pub max_response_bytes: u64,
    /// Prepared statements a single connection may hold open.
    pub max_prepared_statements: usize,
    /// Granularity at which blocked reads re-check the shutdown flag.
    pub idle_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            conn_threads: 8,
            max_pending_conns: 64,
            admission: AdmissionConfig::default(),
            max_rows_per_query: 0,
            max_response_bytes: 0,
            max_prepared_statements: 64,
            idle_poll: Duration::from_millis(100),
        }
    }
}

/// A running wire server. Dropping (or calling [`WireServer::shutdown`])
/// stops accepting, wakes every blocked worker, and joins all threads.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    session: Arc<Session>,
    shutdown: Arc<AtomicBool>,
    gate: Arc<AdmissionGate>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `cfg.addr` and starts serving `session`.
    pub fn start(session: Arc<Session>, cfg: ServerConfig) -> Result<WireServer> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| PyroError::Wire(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PyroError::Wire(format!("local_addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AdmissionGate::new(cfg.admission));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.max_pending_conns.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers: Vec<JoinHandle<()>> = (0..cfg.conn_threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let session = Arc::clone(&session);
                let gate = Arc::clone(&gate);
                let cfg = cfg.clone();
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("pyro-wire-conn-{i}"))
                    .spawn(move || connection_worker(&rx, &session, &gate, &cfg, &shutdown))
                    .expect("spawn connection worker")
            })
            .collect();

        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("pyro-wire-accept".into())
                .spawn(move || accept_loop(&listener, &tx, &shutdown))
                .expect("spawn accept thread")
        };

        Ok(WireServer {
            addr,
            session,
            shutdown,
            gate,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query-level admission gate — shared, so tests can occupy slots
    /// deterministically and operators can read live occupancy.
    pub fn admission(&self) -> Arc<AdmissionGate> {
        Arc::clone(&self.gate)
    }

    /// Admission counters (admitted / shed / peaks).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.gate.stats()
    }

    /// Stops accepting, disconnects idle workers, joins every thread, and
    /// — once no thread can touch the session anymore — checkpoints a
    /// durable session so the data directory reopens with nothing to
    /// replay. Connections mid-query finish their current response first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // All workers are joined: the flush below races with nothing.
        if let Err(e) = self.session.checkpoint() {
            eprintln!("pyro: shutdown checkpoint failed: {e}");
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, shutdown: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // drops tx → workers' recv() errors → they exit
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => shed_connection(stream),
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Every worker is busy and the backlog is full: answer with a typed
/// overload frame instead of silently dropping the connection.
fn shed_connection(stream: TcpStream) {
    let e = PyroError::ServerOverloaded("connection backlog full; retry later".into());
    let mut w = BufWriter::new(stream);
    let _ = write_frame(&mut w, op::ERROR, &proto::enc_error(&e));
    let _ = w.flush();
}

fn connection_worker(
    rx: &Mutex<Receiver<TcpStream>>,
    session: &Arc<Session>,
    gate: &AdmissionGate,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match guard.recv() {
                Ok(s) => s,
                Err(_) => return, // accept loop gone: shutdown
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // A connection failure must never take the worker down with it.
        handle_connection(stream, session, gate, cfg, shutdown);
    }
}

/// Runs one connection's protocol state machine to completion; every exit
/// path is a clean close.
fn handle_connection(
    stream: TcpStream,
    session: &Arc<Session>,
    gate: &AdmissionGate,
    cfg: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.idle_poll.max(Duration::from_millis(1))));
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let cancelled = || shutdown.load(Ordering::SeqCst);

    // --- handshake: exactly one HELLO before anything else -------------
    match read_frame_cancellable(&mut reader, &cancelled) {
        Ok(ReadOutcome::Frame(op::HELLO, payload)) => match proto::dec_hello(&payload) {
            Ok(version) if version == proto::VERSION => {
                if send(&mut writer, op::WELCOME, &proto::enc_welcome("pyro")).is_err() {
                    return;
                }
            }
            Ok(version) => {
                let e = PyroError::Wire(format!(
                    "protocol version mismatch: client {version}, server {}",
                    proto::VERSION
                ));
                let _ = send(&mut writer, op::ERROR, &proto::enc_error(&e));
                return;
            }
            Err(e) => {
                let _ = send(&mut writer, op::ERROR, &proto::enc_error(&e));
                return;
            }
        },
        Ok(ReadOutcome::Frame(other, _)) => {
            let e = PyroError::Wire(format!(
                "expected HELLO (0x01) before anything else, got opcode {other:#04x}"
            ));
            let _ = send(&mut writer, op::ERROR, &proto::enc_error(&e));
            return;
        }
        Ok(ReadOutcome::Eof | ReadOutcome::Cancelled) => return,
        Err(e) => {
            let _ = send(&mut writer, op::ERROR, &proto::enc_error(&e));
            return;
        }
    }

    // --- steady state ---------------------------------------------------
    let mut registry = StmtRegistry::new(cfg.max_prepared_statements);
    loop {
        let (opcode, payload) = match read_frame_cancellable(&mut reader, &cancelled) {
            Ok(ReadOutcome::Frame(opcode, payload)) => (opcode, payload),
            Ok(ReadOutcome::Eof | ReadOutcome::Cancelled) => return,
            Err(e) => {
                // Unreadable framing (oversized length, mid-frame
                // disconnect): answer if the socket still works, then close
                // — the stream position is no longer trustworthy.
                let _ = send(&mut writer, op::ERROR, &proto::enc_error(&e));
                return;
            }
        };
        let outcome = match opcode {
            op::QUERY => match proto::dec_sql(&payload) {
                Ok(sql) => respond_query(&mut writer, gate, cfg, || session.sql_stream(&sql)),
                Err(e) => reply_error(&mut writer, &e),
            },
            op::PREPARE => match proto::dec_sql(&payload) {
                Ok(sql) => match session.prepare_shared(&sql) {
                    Ok(stmt) => {
                        let count = stmt.param_count() as u16;
                        match registry.insert(stmt) {
                            Ok(id) => {
                                send(&mut writer, op::PREPARED, &proto::enc_prepared(id, count))
                            }
                            Err(e) => reply_error(&mut writer, &e),
                        }
                    }
                    Err(e) => reply_error(&mut writer, &e),
                },
                Err(e) => reply_error(&mut writer, &e),
            },
            op::EXECUTE => match proto::dec_execute(&payload) {
                Ok((id, params)) => match registry.get(id) {
                    Ok(stmt) => {
                        let stmt = stmt.clone();
                        respond_query(&mut writer, gate, cfg, || stmt.execute_stream(&params))
                    }
                    Err(e) => reply_error(&mut writer, &e),
                },
                Err(e) => reply_error(&mut writer, &e),
            },
            op::CLOSE => match proto::dec_stmt_id(&payload).and_then(|id| {
                registry.remove(id)?;
                Ok(id)
            }) {
                Ok(id) => send(&mut writer, op::CLOSED, &proto::enc_stmt_id(id)),
                Err(e) => reply_error(&mut writer, &e),
            },
            op::BYE => return,
            other => {
                let e = PyroError::Wire(format!("unknown opcode {other:#04x}"));
                reply_error(&mut writer, &e)
            }
        };
        if outcome.is_err() {
            return; // the socket is gone; nothing more to say
        }
    }
}

/// Writes one frame and flushes — responses must not sit in the buffer
/// while the server waits for the client's next request.
fn send(w: &mut BufWriter<TcpStream>, opcode: u8, payload: &[u8]) -> Result<()> {
    write_frame(w, opcode, payload)?;
    w.flush().map_err(|e| crate::frame::io_err("flush", &e))
}

/// Reports a request-level failure on the wire; the connection survives.
fn reply_error(w: &mut BufWriter<TcpStream>, e: &PyroError) -> Result<()> {
    send(w, op::ERROR, &proto::enc_error(e))
}

/// Admission-gates `make`, then streams its result: `SCHEMA`, `ROWS`
/// batch-by-batch under the row/byte budgets, `DONE` — or a typed `ERROR`
/// at the point of failure. Returns `Err` only for transport failures.
fn respond_query(
    w: &mut BufWriter<TcpStream>,
    gate: &AdmissionGate,
    cfg: &ServerConfig,
    make: impl FnOnce() -> Result<QueryStream>,
) -> Result<()> {
    let started = Instant::now();
    let permit = match gate.admit() {
        Ok(p) => p,
        Err(e) => return reply_error(w, &e),
    };
    let mut stream = match make() {
        Ok(s) => s,
        Err(e) => return reply_error(w, &e),
    };
    send(w, op::SCHEMA, &proto::enc_schema(stream.schema()))?;
    let mut rows_sent: u64 = 0;
    let mut bytes_sent: u64 = 0;
    loop {
        let batch = match stream.next_batch() {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(e) => return reply_error(w, &e),
        };
        rows_sent += batch.len() as u64;
        if cfg.max_rows_per_query > 0 && rows_sent > cfg.max_rows_per_query {
            let e = PyroError::BudgetExceeded(format!(
                "result exceeds the {}-row budget",
                cfg.max_rows_per_query
            ));
            return reply_error(w, &e); // dropping `stream` cancels the query
        }
        let payload = proto::enc_rows(&batch);
        bytes_sent += payload.len() as u64;
        if cfg.max_response_bytes > 0 && bytes_sent > cfg.max_response_bytes {
            let e = PyroError::BudgetExceeded(format!(
                "response exceeds the {}-byte budget",
                cfg.max_response_bytes
            ));
            return reply_error(w, &e);
        }
        send(w, op::ROWS, &payload)?;
    }
    let cache = match stream.plan_cache() {
        None => proto::CACHE_OFF,
        Some(info) if info.hit => proto::CACHE_HIT,
        Some(_) => proto::CACHE_MISS,
    };
    let elapsed_us = started.elapsed().as_micros() as u64;
    let out = send(w, op::DONE, &proto::enc_done(rows_sent, elapsed_us, cache));
    drop(permit); // release the slot only after the response is complete
    out
}
