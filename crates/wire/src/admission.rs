//! Admission control: a bounded-concurrency gate with a bounded, timed
//! wait queue in front of query execution.
//!
//! The state machine per request:
//!
//! ```text
//!            running < max_concurrent ──────────────► RUNNING
//!  ADMIT ────┤
//!            running full, waiting < max_queue ─────► QUEUED ──┬─ slot freed
//!            │                                                 │  before the
//!            running full, queue full ──► SHED (queue_full)    │  timeout ───► RUNNING
//!                                                              └─ timeout ───► SHED (timeout)
//! ```
//!
//! Shedding is **graceful**: the caller gets a typed
//! [`PyroError::ServerOverloaded`] to put on the wire — the connection
//! stays healthy and the client may retry. Finishing a query (dropping its
//! [`Permit`]) wakes one queued waiter.

use pyro_common::{PyroError, Result};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Gate configuration; see the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Queries allowed to execute simultaneously (floor 1).
    pub max_concurrent: usize,
    /// Requests allowed to wait for a slot; `0` sheds the instant the
    /// concurrency limit is reached.
    pub max_queue: usize,
    /// How long a queued request waits for a slot before being shed.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 4,
            max_queue: 16,
            queue_timeout: Duration::from_secs(1),
        }
    }
}

/// Monotonic gate counters plus live occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (immediately or after queueing).
    pub admitted: u64,
    /// Requests shed because the wait queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because the queue wait timed out.
    pub shed_timeout: u64,
    /// Queries executing right now.
    pub running: usize,
    /// Requests waiting for a slot right now.
    pub waiting: usize,
    /// High-water mark of `running`.
    pub peak_running: usize,
    /// High-water mark of `waiting`.
    pub peak_waiting: usize,
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    waiting: usize,
    admitted: u64,
    shed_queue_full: u64,
    shed_timeout: u64,
    peak_running: usize,
    peak_waiting: usize,
}

/// The gate; shared behind an `Arc` by every connection handler.
#[derive(Debug)]
pub struct AdmissionGate {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    freed: Condvar,
}

/// Proof of admission: holding one keeps a concurrency slot occupied;
/// dropping it releases the slot and wakes one queued waiter.
#[derive(Debug)]
pub struct Permit<'g> {
    gate: &'g AdmissionGate,
}

impl AdmissionGate {
    /// A gate enforcing `cfg` (with `max_concurrent` floored to 1).
    pub fn new(cfg: AdmissionConfig) -> AdmissionGate {
        AdmissionGate {
            cfg: AdmissionConfig {
                max_concurrent: cfg.max_concurrent.max(1),
                ..cfg
            },
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
        }
    }

    /// The enforced configuration.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Requests a slot, queueing (bounded, timed) when the gate is full.
    /// Returns a typed [`PyroError::ServerOverloaded`] when shed.
    pub fn admit(&self) -> Result<Permit<'_>> {
        let mut state = self.lock();
        if state.running < self.cfg.max_concurrent {
            state.running += 1;
            state.peak_running = state.peak_running.max(state.running);
            state.admitted += 1;
            return Ok(Permit { gate: self });
        }
        if state.waiting >= self.cfg.max_queue {
            state.shed_queue_full += 1;
            let detail = format!(
                "{} running, {} queued (limits: {} concurrent, {} queue)",
                state.running, state.waiting, self.cfg.max_concurrent, self.cfg.max_queue
            );
            return Err(PyroError::ServerOverloaded(detail));
        }
        state.waiting += 1;
        state.peak_waiting = state.peak_waiting.max(state.waiting);
        let deadline = Instant::now() + self.cfg.queue_timeout;
        loop {
            let now = Instant::now();
            if state.running < self.cfg.max_concurrent {
                state.waiting -= 1;
                state.running += 1;
                state.peak_running = state.peak_running.max(state.running);
                state.admitted += 1;
                return Ok(Permit { gate: self });
            }
            if now >= deadline {
                state.waiting -= 1;
                state.shed_timeout += 1;
                let detail = format!(
                    "queue wait exceeded {:?} ({} running, {} still queued)",
                    self.cfg.queue_timeout, state.running, state.waiting
                );
                return Err(PyroError::ServerOverloaded(detail));
            }
            let (next, _) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
        }
    }

    /// Counters and live occupancy.
    pub fn stats(&self) -> AdmissionStats {
        let s = self.lock();
        AdmissionStats {
            admitted: s.admitted,
            shed_queue_full: s.shed_queue_full,
            shed_timeout: s.shed_timeout,
            running: s.running,
            waiting: s.waiting,
            peak_running: s.peak_running,
            peak_waiting: s.peak_waiting,
        }
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.lock();
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn gate(max_concurrent: usize, max_queue: usize, timeout_ms: u64) -> AdmissionGate {
        AdmissionGate::new(AdmissionConfig {
            max_concurrent,
            max_queue,
            queue_timeout: Duration::from_millis(timeout_ms),
        })
    }

    #[test]
    fn admits_up_to_the_limit_then_sheds_with_empty_queue() {
        let g = gate(2, 0, 50);
        let a = g.admit().expect("slot 1");
        let b = g.admit().expect("slot 2");
        let e = g.admit().expect_err("full + no queue must shed");
        assert!(matches!(e, PyroError::ServerOverloaded(_)), "{e}");
        assert_eq!(
            e.code(),
            pyro_common::error::codes::SERVER_OVERLOADED,
            "shed error must carry the stable overload code"
        );
        drop(a);
        let _c = g.admit().expect("freed slot readmits");
        drop(b);
        let s = g.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_queue_full, 1);
        assert_eq!(s.peak_running, 2);
    }

    #[test]
    fn queued_request_times_out_with_typed_error() {
        let g = gate(1, 4, 30);
        let _held = g.admit().unwrap();
        let start = Instant::now();
        let e = g.admit().expect_err("must time out");
        assert!(matches!(e, PyroError::ServerOverloaded(_)), "{e}");
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(g.stats().shed_timeout, 1);
        assert_eq!(g.stats().waiting, 0, "timed-out waiter must dequeue");
    }

    #[test]
    fn queued_request_proceeds_when_slot_frees() {
        let g = Arc::new(gate(1, 4, 5_000));
        let held = g.admit().unwrap();
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || g2.admit().map(|_| ()).is_ok());
        // Give the waiter time to enqueue, then free the slot.
        while g.stats().waiting == 0 {
            std::thread::yield_now();
        }
        drop(held);
        assert!(waiter.join().unwrap(), "queued request must be admitted");
        assert_eq!(g.stats().admitted, 2);
        assert_eq!(g.stats().peak_waiting, 1);
    }

    #[test]
    fn heavy_contention_neither_loses_nor_double_counts_slots() {
        let g = Arc::new(gate(3, 64, 5_000));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let p = g.admit().expect("queue is deep enough");
                        assert!(g.stats().running <= 3, "limit breached");
                        drop(p);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = g.stats();
        assert_eq!(s.admitted, 400);
        assert_eq!(s.running, 0);
        assert_eq!(s.waiting, 0);
        assert!(s.peak_running <= 3);
    }
}
