//! The `pyro` command-line entry point.
//!
//! ```bash
//! pyro serve [--addr 127.0.0.1:7878] [--scale 0.01] [--seed N]
//!            [--cache 256] [--workers 1] [--batch 1024]
//!            [--max-concurrent 4] [--queue 16] [--queue-timeout-ms 1000]
//!            [--max-rows N] [--max-bytes N] [--conn-threads 8]
//!            [--data-dir PATH] [--csv name=path[:clustering_col]]...
//! ```
//!
//! `serve` builds a shared [`pyro::Session`], loads the TPC-H subset at
//! `--scale` (skipped with `--scale 0`), registers any `--csv` tables, and
//! serves the wire protocol until killed. Every knob maps onto
//! [`pyro_wire::ServerConfig`] / [`pyro::SessionBuilder`].
//!
//! With `--data-dir` the session is durable: tables live in
//! `PATH/data.pyro` behind a write-ahead log, a restart recovers them
//! (skipping the initial load), and `SIGINT`/`SIGTERM` trigger a graceful
//! shutdown — stop accepting, drain in-flight queries, checkpoint.

use pyro::{SessionBuilder, SortOrder};
use pyro_common::Schema;
use pyro_wire::{AdmissionConfig, ServerConfig, WireServer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pyro serve [--addr HOST:PORT] [--scale SF] [--seed N] [--cache ENTRIES]\n\
         \x20                 [--workers N] [--batch ROWS] [--max-concurrent N] [--queue N]\n\
         \x20                 [--queue-timeout-ms MS] [--max-rows N] [--max-bytes N]\n\
         \x20                 [--conn-threads N] [--data-dir PATH]\n\
         \x20                 [--csv name=path[:clustering_col]]..."
    );
    std::process::exit(2);
}

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single atomic store; the main loop does the rest.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `SIGINT`/`SIGTERM` handlers via the libc `signal(2)` that is
/// already linked into every Rust binary — no crate needed.
fn install_signal_handlers() {
    #[cfg(unix)]
    unsafe {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} takes a {}", std::any::type_name::<T>());
                usage()
            }),
            None => default,
        }
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == name)
            .filter_map(|(i, _)| self.args.get(i + 1))
            .map(String::as_str)
            .collect()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => {}
        _ => usage(),
    }
    let flags = Flags {
        args: args.collect(),
    };

    let scale: f64 = flags.parse("--scale", 0.01);
    let seed: u64 = flags.parse("--seed", pyro::datagen::SEED);
    let mut builder = SessionBuilder::new()
        .plan_cache_entries(flags.parse("--cache", 256))
        .workers(flags.parse("--workers", 1))
        .batch_size(flags.parse("--batch", 1024))
        .seed(seed);
    if let Some(dir) = flags.get("--data-dir") {
        builder = builder.data_dir(dir);
    }
    let mut session = builder
        .open()
        .unwrap_or_else(|e| panic!("open session: {e}"));

    let recovered = session.catalog().tables().len();
    if recovered > 0 {
        println!("recovered {recovered} table(s) from the data directory; skipping load");
    } else if scale > 0.0 {
        pyro::datagen::tpch::load_with_seed(
            session.catalog_mut(),
            pyro::datagen::tpch::TpchConfig::scaled(scale),
            seed,
        )
        .expect("load TPC-H subset");
        println!("loaded TPC-H subset at scale {scale} (lineitem + partsupp, seed {seed:#x})");
    }
    for spec in flags.all("--csv") {
        let (name, rest) = spec.split_once('=').unwrap_or_else(|| usage());
        let (path, clustering) = match rest.split_once(':') {
            Some((p, c)) => (p, Some(c)),
            None => (rest, None),
        };
        if session.catalog().tables().contains_key(name) {
            println!("table {name} already present (recovered); skipping {path}");
            continue;
        }
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        // Column names and types are inferred as all-Int single letters
        // only when a header is absent; require a header row instead.
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_else(|| usage());
        let schema = Schema::ints(&header.split(',').collect::<Vec<_>>());
        let body: String = lines.collect::<Vec<_>>().join("\n");
        let order = match clustering {
            Some(c) => SortOrder::new([c]),
            None => SortOrder::empty(),
        };
        session
            .register_csv(name, schema, order, &body)
            .unwrap_or_else(|e| panic!("register {name}: {e}"));
        println!("registered table {name} from {path}");
    }

    let cfg = ServerConfig {
        addr: flags.get("--addr").unwrap_or("127.0.0.1:7878").to_string(),
        conn_threads: flags.parse("--conn-threads", 8),
        admission: AdmissionConfig {
            max_concurrent: flags.parse("--max-concurrent", 4),
            max_queue: flags.parse("--queue", 16),
            queue_timeout: Duration::from_millis(flags.parse("--queue-timeout-ms", 1000)),
        },
        max_rows_per_query: flags.parse("--max-rows", 0),
        max_response_bytes: flags.parse("--max-bytes", 0),
        ..ServerConfig::default()
    };
    install_signal_handlers();
    let server =
        WireServer::start(Arc::new(session), cfg).unwrap_or_else(|e| panic!("start server: {e}"));
    println!(
        "pyro-wire serving on {} (protocol v{})",
        server.local_addr(),
        pyro_wire::proto::VERSION
    );
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("pyro-wire: signal received; draining connections and checkpointing");
    server.shutdown();
    println!("pyro-wire: shutdown complete");
}
