//! The `pyro` command-line entry point.
//!
//! ```bash
//! pyro serve [--addr 127.0.0.1:7878] [--scale 0.01] [--seed N]
//!            [--cache 256] [--workers 1] [--batch 1024]
//!            [--max-concurrent 4] [--queue 16] [--queue-timeout-ms 1000]
//!            [--max-rows N] [--max-bytes N] [--conn-threads 8]
//!            [--csv name=path[:clustering_col]]...
//! ```
//!
//! `serve` builds a shared [`pyro::Session`], loads the TPC-H subset at
//! `--scale` (skipped with `--scale 0`), registers any `--csv` tables, and
//! serves the wire protocol until killed. Every knob maps onto
//! [`pyro_wire::ServerConfig`] / [`pyro::SessionBuilder`].

use pyro::{SessionBuilder, SortOrder};
use pyro_common::Schema;
use pyro_wire::{AdmissionConfig, ServerConfig, WireServer};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pyro serve [--addr HOST:PORT] [--scale SF] [--seed N] [--cache ENTRIES]\n\
         \x20                 [--workers N] [--batch ROWS] [--max-concurrent N] [--queue N]\n\
         \x20                 [--queue-timeout-ms MS] [--max-rows N] [--max-bytes N]\n\
         \x20                 [--conn-threads N] [--csv name=path[:clustering_col]]..."
    );
    std::process::exit(2);
}

struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("error: {name} takes a {}", std::any::type_name::<T>());
                usage()
            }),
            None => default,
        }
    }

    fn all(&self, name: &str) -> Vec<&str> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == name)
            .filter_map(|(i, _)| self.args.get(i + 1))
            .map(String::as_str)
            .collect()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => {}
        _ => usage(),
    }
    let flags = Flags {
        args: args.collect(),
    };

    let scale: f64 = flags.parse("--scale", 0.01);
    let seed: u64 = flags.parse("--seed", pyro::datagen::SEED);
    let mut session = SessionBuilder::new()
        .plan_cache_entries(flags.parse("--cache", 256))
        .workers(flags.parse("--workers", 1))
        .batch_size(flags.parse("--batch", 1024))
        .seed(seed)
        .build();

    if scale > 0.0 {
        pyro::datagen::tpch::load_with_seed(
            session.catalog_mut(),
            pyro::datagen::tpch::TpchConfig::scaled(scale),
            seed,
        )
        .expect("load TPC-H subset");
        println!("loaded TPC-H subset at scale {scale} (lineitem + partsupp, seed {seed:#x})");
    }
    for spec in flags.all("--csv") {
        let (name, rest) = spec.split_once('=').unwrap_or_else(|| usage());
        let (path, clustering) = match rest.split_once(':') {
            Some((p, c)) => (p, Some(c)),
            None => (rest, None),
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        // Column names and types are inferred as all-Int single letters
        // only when a header is absent; require a header row instead.
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_else(|| usage());
        let schema = Schema::ints(&header.split(',').collect::<Vec<_>>());
        let body: String = lines.collect::<Vec<_>>().join("\n");
        let order = match clustering {
            Some(c) => SortOrder::new([c]),
            None => SortOrder::empty(),
        };
        session
            .register_csv(name, schema, order, &body)
            .unwrap_or_else(|e| panic!("register {name}: {e}"));
        println!("registered table {name} from {path}");
    }

    let cfg = ServerConfig {
        addr: flags.get("--addr").unwrap_or("127.0.0.1:7878").to_string(),
        conn_threads: flags.parse("--conn-threads", 8),
        admission: AdmissionConfig {
            max_concurrent: flags.parse("--max-concurrent", 4),
            max_queue: flags.parse("--queue", 16),
            queue_timeout: Duration::from_millis(flags.parse("--queue-timeout-ms", 1000)),
        },
        max_rows_per_query: flags.parse("--max-rows", 0),
        max_response_bytes: flags.parse("--max-bytes", 0),
        ..ServerConfig::default()
    };
    let server =
        WireServer::start(Arc::new(session), cfg).unwrap_or_else(|e| panic!("start server: {e}"));
    println!(
        "pyro-wire serving on {} (protocol v{})",
        server.local_addr(),
        pyro_wire::proto::VERSION
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
