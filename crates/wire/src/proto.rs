//! Typed messages on top of the [frame](crate::frame) layer.
//!
//! ## Opcode table
//!
//! | opcode | direction | message | payload layout |
//! |-------:|-----------|-----------|----------------|
//! | `0x01` | C → S | `HELLO` | `magic: u32`, `version: u16` |
//! | `0x02` | C → S | `QUERY` | `sql: str` |
//! | `0x03` | C → S | `PREPARE` | `sql: str` |
//! | `0x04` | C → S | `EXECUTE` | `stmt_id: u32`, `nparams: u16`, `nparams × value` |
//! | `0x05` | C → S | `CLOSE` | `stmt_id: u32` |
//! | `0x06` | C → S | `BYE` | *(empty)* |
//! | `0x81` | S → C | `WELCOME` | `version: u16`, `server: str` |
//! | `0x82` | S → C | `SCHEMA` | `ncols: u16`, `ncols × (name: str, ty: u8)` |
//! | `0x83` | S → C | `ROWS` | `nrows: u32`, `nrows × ncols × value` |
//! | `0x84` | S → C | `DONE` | `rows: u64`, `elapsed_us: u64`, `cache: u8` |
//! | `0x85` | S → C | `ERROR` | `code: u16`, `detail: str` |
//! | `0x86` | S → C | `PREPARED` | `stmt_id: u32`, `param_count: u16` |
//! | `0x87` | S → C | `CLOSED` | `stmt_id: u32` |
//!
//! Primitive encodings (all little-endian): `str` is `u32` length + UTF-8
//! bytes; `value` is a tag byte (`0` NULL, `1` Int + `i64`, `2` Double +
//! `f64` bits, `3` Str + `str`) — doubles travel as raw bits, so rows
//! round-trip **bit-identically**; `ty` is `0` Int / `1` Double / `2` Str;
//! `cache` in `DONE` is `0` no-cache / `1` plan-cache miss / `2` hit.
//!
//! A query response is `SCHEMA`, zero or more `ROWS`, then exactly one
//! `DONE` — or an `ERROR` at any point, which terminates the response
//! (rows already delivered are valid but the result is truncated).

use pyro_common::{Column, DataType, PyroError, Result, Schema, Tuple, Value};

/// Handshake magic: `"PYRO"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"PYRO");

/// Protocol version spoken by this build. The handshake rejects a client
/// whose version differs — bump on any incompatible layout change.
pub const VERSION: u16 = 1;

/// Frame opcodes (see the [module docs](self) for payload layouts).
pub mod op {
    /// Client hello: magic + version.
    pub const HELLO: u8 = 0x01;
    /// One-shot SQL query.
    pub const QUERY: u8 = 0x02;
    /// Prepare a (possibly `?`-parameterized) statement.
    pub const PREPARE: u8 = 0x03;
    /// Execute a prepared statement with bound values.
    pub const EXECUTE: u8 = 0x04;
    /// Close a prepared statement.
    pub const CLOSE: u8 = 0x05;
    /// Orderly goodbye; the server closes the connection.
    pub const BYE: u8 = 0x06;
    /// Server handshake reply.
    pub const WELCOME: u8 = 0x81;
    /// Result schema, first frame of every successful response.
    pub const SCHEMA: u8 = 0x82;
    /// One batch of result rows.
    pub const ROWS: u8 = 0x83;
    /// Successful end of a response.
    pub const DONE: u8 = 0x84;
    /// Typed failure: stable error code + detail.
    pub const ERROR: u8 = 0x85;
    /// Reply to `PREPARE`.
    pub const PREPARED: u8 = 0x86;
    /// Reply to `CLOSE`.
    pub const CLOSED: u8 = 0x87;
}

/// `DONE` cache flag: the session runs without a plan cache.
pub const CACHE_OFF: u8 = 0;
/// `DONE` cache flag: planning ran (plan-cache miss).
pub const CACHE_MISS: u8 = 1;
/// `DONE` cache flag: planning was skipped (plan-cache hit).
pub const CACHE_HIT: u8 = 2;

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

/// Appends a `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends one tagged [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            buf.push(2);
            buf.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
    }
}

// ---------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------

/// A checked cursor over one frame payload; every getter is a typed
/// [`PyroError::Wire`] on truncation, and [`Reader::finish`] rejects
/// trailing garbage.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(PyroError::Wire(format!(
                "truncated payload: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PyroError::Wire(format!("invalid UTF-8 in string field: {e}")))
    }

    /// Reads one tagged [`Value`].
    pub fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(i64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            2 => Ok(Value::Double(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            )))),
            3 => Ok(Value::Str(self.str()?)),
            tag => Err(PyroError::Wire(format!("unknown value tag {tag}"))),
        }
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PyroError::Wire(format!(
                "{} trailing bytes after message payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Message encoders / decoders
// ---------------------------------------------------------------------

/// Encodes `HELLO`.
pub fn enc_hello() -> Vec<u8> {
    let mut b = Vec::with_capacity(6);
    put_u32(&mut b, MAGIC);
    put_u16(&mut b, VERSION);
    b
}

/// Decodes `HELLO`, checking magic (version is returned for the caller to
/// judge).
pub fn dec_hello(payload: &[u8]) -> Result<u16> {
    let mut r = Reader::new(payload);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(PyroError::Wire(format!(
            "bad handshake magic {magic:#010x} (expected {MAGIC:#010x})"
        )));
    }
    let version = r.u16()?;
    r.finish()?;
    Ok(version)
}

/// Encodes `WELCOME`.
pub fn enc_welcome(server: &str) -> Vec<u8> {
    let mut b = Vec::new();
    put_u16(&mut b, VERSION);
    put_str(&mut b, server);
    b
}

/// Decodes `WELCOME` into `(version, server banner)`.
pub fn dec_welcome(payload: &[u8]) -> Result<(u16, String)> {
    let mut r = Reader::new(payload);
    let version = r.u16()?;
    let server = r.str()?;
    r.finish()?;
    Ok((version, server))
}

/// Encodes `QUERY` / `PREPARE` (both carry one SQL string).
pub fn enc_sql(sql: &str) -> Vec<u8> {
    let mut b = Vec::with_capacity(4 + sql.len());
    put_str(&mut b, sql);
    b
}

/// Decodes `QUERY` / `PREPARE`.
pub fn dec_sql(payload: &[u8]) -> Result<String> {
    let mut r = Reader::new(payload);
    let sql = r.str()?;
    r.finish()?;
    Ok(sql)
}

/// Encodes `EXECUTE`.
pub fn enc_execute(stmt_id: u32, params: &[Value]) -> Vec<u8> {
    let mut b = Vec::new();
    put_u32(&mut b, stmt_id);
    put_u16(&mut b, params.len() as u16);
    for p in params {
        put_value(&mut b, p);
    }
    b
}

/// Decodes `EXECUTE` into `(stmt_id, bound values)`.
pub fn dec_execute(payload: &[u8]) -> Result<(u32, Vec<Value>)> {
    let mut r = Reader::new(payload);
    let stmt_id = r.u32()?;
    let n = r.u16()? as usize;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(r.value()?);
    }
    r.finish()?;
    Ok((stmt_id, params))
}

/// Encodes `CLOSE` / `CLOSED` (one statement id).
pub fn enc_stmt_id(stmt_id: u32) -> Vec<u8> {
    stmt_id.to_le_bytes().to_vec()
}

/// Decodes `CLOSE` / `CLOSED`.
pub fn dec_stmt_id(payload: &[u8]) -> Result<u32> {
    let mut r = Reader::new(payload);
    let id = r.u32()?;
    r.finish()?;
    Ok(id)
}

/// Encodes `PREPARED`.
pub fn enc_prepared(stmt_id: u32, param_count: u16) -> Vec<u8> {
    let mut b = Vec::with_capacity(6);
    put_u32(&mut b, stmt_id);
    put_u16(&mut b, param_count);
    b
}

/// Decodes `PREPARED` into `(stmt_id, param_count)`.
pub fn dec_prepared(payload: &[u8]) -> Result<(u32, u16)> {
    let mut r = Reader::new(payload);
    let id = r.u32()?;
    let n = r.u16()?;
    r.finish()?;
    Ok((id, n))
}

/// Encodes `SCHEMA`.
pub fn enc_schema(schema: &Schema) -> Vec<u8> {
    let mut b = Vec::new();
    put_u16(&mut b, schema.len() as u16);
    for col in schema.columns() {
        put_str(&mut b, &col.name);
        b.push(type_tag(col.ty));
    }
    b
}

/// Decodes `SCHEMA`.
pub fn dec_schema(payload: &[u8]) -> Result<Schema> {
    let mut r = Reader::new(payload);
    let n = r.u16()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = match r.u8()? {
            0 => DataType::Int,
            1 => DataType::Double,
            2 => DataType::Str,
            tag => return Err(PyroError::Wire(format!("unknown column type tag {tag}"))),
        };
        cols.push(Column::new(name, ty));
    }
    r.finish()?;
    Ok(Schema::new(cols))
}

/// Encodes one `ROWS` batch (row-major values; the column count travels in
/// the preceding `SCHEMA` frame).
pub fn enc_rows(rows: &[Tuple]) -> Vec<u8> {
    let mut b = Vec::new();
    put_u32(&mut b, rows.len() as u32);
    for row in rows {
        for v in row.values() {
            put_value(&mut b, v);
        }
    }
    b
}

/// Decodes a `ROWS` batch of `ncols`-wide tuples.
pub fn dec_rows(payload: &[u8], ncols: usize) -> Result<Vec<Tuple>> {
    let mut r = Reader::new(payload);
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut vals = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            vals.push(r.value()?);
        }
        rows.push(Tuple::new(vals));
    }
    r.finish()?;
    Ok(rows)
}

/// Encodes `DONE`.
pub fn enc_done(rows: u64, elapsed_us: u64, cache: u8) -> Vec<u8> {
    let mut b = Vec::with_capacity(17);
    put_u64(&mut b, rows);
    put_u64(&mut b, elapsed_us);
    b.push(cache);
    b
}

/// Decodes `DONE` into `(rows, elapsed_us, cache flag)`.
pub fn dec_done(payload: &[u8]) -> Result<(u64, u64, u8)> {
    let mut r = Reader::new(payload);
    let rows = r.u64()?;
    let us = r.u64()?;
    let cache = r.u8()?;
    r.finish()?;
    Ok((rows, us, cache))
}

/// Encodes `ERROR` from any [`PyroError`]: stable code + detail payload.
pub fn enc_error(e: &PyroError) -> Vec<u8> {
    let mut b = Vec::new();
    put_u16(&mut b, e.code());
    put_str(&mut b, &e.detail());
    b
}

/// Decodes `ERROR` back into the typed [`PyroError`] the server produced.
pub fn dec_error(payload: &[u8]) -> Result<PyroError> {
    let mut r = Reader::new(payload);
    let code = r.u16()?;
    let detail = r.str()?;
    r.finish()?;
    Ok(PyroError::from_code(code, &detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trip_and_magic_check() {
        assert_eq!(dec_hello(&enc_hello()).unwrap(), VERSION);
        let mut bad = enc_hello();
        bad[0] ^= 0xff;
        assert!(dec_hello(&bad).is_err());
    }

    #[test]
    fn schema_and_rows_round_trip_bit_identically() {
        let schema = Schema::new(vec![
            Column::new("t.a", DataType::Int),
            Column::new("t.b", DataType::Double),
            Column::new("t.c", DataType::Str),
        ]);
        assert_eq!(dec_schema(&enc_schema(&schema)).unwrap(), schema);
        let rows = vec![
            Tuple::new(vec![
                Value::Int(i64::MIN),
                Value::Double(-0.0),
                Value::Str("héllo\u{1f}".into()),
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Double(f64::NAN),
                Value::Str(String::new()),
            ]),
        ];
        let decoded = dec_rows(&enc_rows(&rows), 3).unwrap();
        // PartialEq on Value compares NaN false; compare the encodings,
        // which capture the exact bits.
        assert_eq!(enc_rows(&decoded), enc_rows(&rows));
    }

    #[test]
    fn execute_round_trip() {
        let params = vec![Value::Int(7), Value::Null, Value::Str("x".into())];
        let (id, out) = dec_execute(&enc_execute(42, &params)).unwrap();
        assert_eq!(id, 42);
        assert_eq!(out, params);
    }

    #[test]
    fn error_frame_round_trips_typed_variants() {
        for e in [
            PyroError::ServerOverloaded("1 running, 0 queued".into()),
            PyroError::BudgetExceeded("row budget 10".into()),
            PyroError::UnknownTable("nope".into()),
        ] {
            assert_eq!(dec_error(&enc_error(&e)).unwrap(), e);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut p = enc_sql("SELECT 1");
        p.push(0xee);
        assert!(dec_sql(&p).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let p = enc_execute(1, &[Value::Int(5)]);
        for cut in 0..p.len() {
            assert!(dec_execute(&p[..cut]).is_err(), "cut at {cut} accepted");
        }
    }
}
