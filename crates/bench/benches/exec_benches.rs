//! Criterion benches: join operator implementations (merge vs hash vs
//! nested loops) on sorted inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pyro_common::{KeySpec, Schema, Tuple, Value};
use pyro_exec::join::{HashJoin, JoinKind, MergeJoin, NestedLoopsJoin};
use pyro_exec::{collect, ExecMetrics, ValuesOp};

fn rows(n: usize, dup: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::new(vec![Value::Int((i / dup) as i64), Value::Int(i as i64)]))
        .collect()
}

fn bench_joins(c: &mut Criterion) {
    let n = 10_000;
    let left = rows(n, 2);
    let right = rows(n, 2);
    let schema_l = Schema::ints(&["a", "b"]);
    let schema_r = Schema::ints(&["c", "d"]);
    let key = KeySpec::new(vec![0]);

    let mut group = c.benchmark_group("join_10k");
    group.bench_with_input(BenchmarkId::from_parameter("merge"), &(), |b, _| {
        b.iter(|| {
            let op = MergeJoin::new(
                Box::new(ValuesOp::new(schema_l.clone(), left.clone())),
                Box::new(ValuesOp::new(schema_r.clone(), right.clone())),
                key.clone(),
                key.clone(),
                JoinKind::Inner,
                ExecMetrics::new(),
            );
            collect(Box::new(op)).unwrap().len()
        })
    });
    group.bench_with_input(BenchmarkId::from_parameter("hash"), &(), |b, _| {
        b.iter(|| {
            let op = HashJoin::new(
                Box::new(ValuesOp::new(schema_l.clone(), left.clone())),
                Box::new(ValuesOp::new(schema_r.clone(), right.clone())),
                key.clone(),
                key.clone(),
                JoinKind::Inner,
            );
            collect(Box::new(op)).unwrap().len()
        })
    });
    group.finish();

    // Nested loops only at a smaller size (quadratic).
    let left = rows(500, 2);
    let right = rows(500, 2);
    c.bench_function("join_500_nested_loops", |b| {
        b.iter(|| {
            let op = NestedLoopsJoin::new(
                Box::new(ValuesOp::new(schema_l.clone(), left.clone())),
                Box::new(ValuesOp::new(schema_r.clone(), right.clone())),
                key.clone(),
                key.clone(),
                JoinKind::Inner,
            );
            collect(Box::new(op)).unwrap().len()
        })
    });
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
