//! Criterion benches: end-to-end optimization latency per strategy (the
//! micro version of Fig. 16 / §6.3 "optimization overheads").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pyro::sql::plan as sql_to_plan;
use pyro_bench::QUERY3;
use pyro_catalog::Catalog;
use pyro_core::{Optimizer, Strategy};
use pyro_datagen::tpch::{self, TpchConfig};

fn bench_optimize(c: &mut Criterion) {
    let mut catalog = Catalog::new();
    tpch::load(&mut catalog, TpchConfig::scaled(0.002)).unwrap();
    let logical = sql_to_plan(QUERY3, &catalog).unwrap();

    let mut group = c.benchmark_group("optimize_query3");
    for strategy in [
        Strategy::pyro(),
        Strategy::pyro_p(),
        Strategy::pyro_o(),
        Strategy::pyro_o_minus(),
        Strategy::pyro_e(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, s| {
                b.iter(|| {
                    Optimizer::new(&catalog)
                        .with_strategy(*s)
                        .optimize(&logical)
                        .unwrap()
                        .cost()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimize);
criterion_main!(benches);
