//! Criterion micro-benches for the sort-order algebra — the `lcp`
//! operations the paper's complexity analysis (§5.1.2) counts.

use criterion::{criterion_group, criterion_main, Criterion};
use pyro_ordering::{AttrSet, SortOrder};

fn orders(n: usize) -> (SortOrder, SortOrder, AttrSet) {
    let a: SortOrder = (0..n).map(|i| format!("a{i:03}")).collect();
    let mut names: Vec<String> = (0..n / 2).map(|i| format!("a{i:03}")).collect();
    names.extend((0..n / 2).map(|i| format!("b{i:03}")));
    let b = SortOrder::new(names.clone());
    let s: AttrSet = names.into_iter().collect();
    (a, b, s)
}

fn bench_algebra(c: &mut Criterion) {
    let (a, b, s) = orders(32);
    c.bench_function("lcp_32", |bch| bch.iter(|| a.lcp(&b).len()));
    c.bench_function("lcp_with_set_32", |bch| bch.iter(|| a.lcp_with_set(&s).len()));
    c.bench_function("concat_32", |bch| bch.iter(|| a.concat(&b).len()));
    c.bench_function("extend_with_set_32", |bch| {
        bch.iter(|| a.prefix(4).extend_with_set(&s).len())
    });
    c.bench_function("is_prefix_32", |bch| {
        let p = a.prefix(16);
        bch.iter(|| p.is_prefix_of(&a))
    });
}

criterion_group!(benches, bench_algebra);
criterion_main!(benches);
