//! Criterion micro-benches: SRS vs MRS across segment counts (the micro
//! version of Experiments A1/A3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pyro_common::KeySpec;
use pyro_datagen::rtables;
use pyro_exec::sort::{PartialSort, SortBudget, StandardReplacementSort};
use pyro_exec::{collect, ExecMetrics, ValuesOp};
use pyro_storage::SimDevice;

const ROWS: usize = 20_000;

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort");
    for &segments in &[1usize, 10, 100, 1000] {
        let (schema, rows) = rtables::generate(ROWS, segments, 0);
        group.bench_with_input(BenchmarkId::new("srs", segments), &rows, |b, rows| {
            b.iter(|| {
                let dev = SimDevice::new();
                let op = StandardReplacementSort::new(
                    Box::new(ValuesOp::new(schema.clone(), rows.clone())),
                    KeySpec::new(vec![0, 1]),
                    dev,
                    SortBudget::new(32, 4096),
                    ExecMetrics::new(),
                );
                collect(Box::new(op)).unwrap().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("mrs", segments), &rows, |b, rows| {
            b.iter(|| {
                let dev = SimDevice::new();
                let op = PartialSort::new(
                    Box::new(ValuesOp::new(schema.clone(), rows.clone())),
                    KeySpec::new(vec![0, 1]),
                    1,
                    dev,
                    SortBudget::new(32, 4096),
                    ExecMetrics::new(),
                );
                collect(Box::new(op)).unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_in_memory_reference(c: &mut Criterion) {
    let (_, rows) = rtables::generate(ROWS, 100, 0);
    c.bench_function("std_sort_reference", |b| {
        b.iter(|| {
            let mut v = rows.clone();
            let key = KeySpec::new(vec![0, 1]);
            v.sort_by(|a, b| key.compare(a, b));
            v.len()
        })
    });
}

criterion_group!(benches, bench_sorts, bench_in_memory_reference);
criterion_main!(benches);
