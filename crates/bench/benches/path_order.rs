//! Criterion benches for the §4.2 algorithms: the PathOrder DP and the
//! tree 2-approximation (the paper reports < 6 ms at 31 nodes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pyro_ordering::{path_order, two_approx_tree_order, AttrSet, JoinTree};

fn sets(n: usize, attrs: usize) -> Vec<AttrSet> {
    let mut state = 42u64;
    let mut next = move |m: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    (0..n)
        .map(|_| (0..attrs).map(|_| format!("a{:02}", next(20))).collect())
        .collect()
}

fn tree(n: usize, attrs: usize) -> JoinTree {
    let all = sets(n, attrs);
    let mut t = JoinTree::new();
    let mut ids = Vec::new();
    for (i, s) in all.into_iter().enumerate() {
        if i == 0 {
            ids.push(t.add_root(s));
        } else {
            let parent = ids[(i - 1) / 2];
            ids.push(t.add_child(parent, s));
        }
    }
    t
}

fn bench_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_order");
    for &n in &[8usize, 16, 31, 63] {
        let s = sets(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            b.iter(|| path_order(s).benefit)
        });
    }
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_approx_tree");
    for &n in &[15usize, 31, 63] {
        let t = tree(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &t, |b, t| {
            b.iter(|| two_approx_tree_order(t).benefit)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path, bench_tree);
criterion_main!(benches);
