//! # pyro-bench
//!
//! Shared plumbing for the figure-regeneration binaries (`src/bin/fig*.rs`)
//! and the Criterion micro-benches. Each binary reproduces one figure or
//! experiment of the paper; see `DESIGN.md` §5 for the full index and
//! `EXPERIMENTS.md` for paper-vs-measured notes.

use pyro_catalog::Catalog;
use pyro_common::Result;
use pyro_core::plan::{PhysNode, PhysOp};
use pyro_core::OptimizedPlan;
use pyro_exec::MetricsRef;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pretty banner for experiment output.
pub fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Result of one measured execution.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Rows returned.
    pub rows: usize,
    /// Scalar key comparisons.
    pub comparisons: u64,
    /// Sort-spill pages (read + written).
    pub run_io: u64,
    /// Device block reads during execution.
    pub device_reads: u64,
}

impl RunStats {
    /// Milliseconds as f64 for table printing.
    pub fn ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// Executes a compiled plan and gathers statistics.
pub fn run_plan(plan: &OptimizedPlan, catalog: &Catalog) -> Result<RunStats> {
    run_pipeline(plan.compile(catalog)?, catalog)
}

/// Executes an already-compiled pipeline (for plan-surgery comparisons).
pub fn run_pipeline(pipeline: pyro_exec::Pipeline, catalog: &Catalog) -> Result<RunStats> {
    let before = catalog.device().io();
    let start = Instant::now();
    let out = pipeline.run()?;
    let elapsed = start.elapsed();
    Ok(stats_of(
        elapsed,
        out.rows.len(),
        &out.metrics,
        catalog,
        before,
    ))
}

fn stats_of(
    elapsed: Duration,
    rows: usize,
    metrics: &MetricsRef,
    catalog: &Catalog,
    before: pyro_storage::IoSnapshot,
) -> RunStats {
    let delta = catalog.device().io().since(&before);
    RunStats {
        elapsed,
        rows,
        comparisons: metrics.comparisons(),
        run_io: metrics.run_io(),
        device_reads: delta.reads,
    }
}

/// Rewrites every `PartialSort` enforcer in a plan into a full `Sort` —
/// the surgical "same plan, standard replacement selection instead of
/// modified" comparison the paper's Experiments A1/A4 make.
pub fn degrade_partial_sorts(node: &Arc<PhysNode>) -> Arc<PhysNode> {
    let children: Vec<Arc<PhysNode>> = node.children.iter().map(degrade_partial_sorts).collect();
    let op = match &node.op {
        PhysOp::PartialSort { target, .. } => PhysOp::Sort {
            target: target.clone(),
        },
        other => other.clone(),
    };
    Arc::new(PhysNode {
        op,
        children,
        schema: node.schema.clone(),
        out_order: node.out_order.clone(),
        cost: node.cost,
        rows: node.rows,
        logical: node.logical,
    })
}

/// The paper's Query 3 ("parts running out of stock").
pub const QUERY3: &str = "SELECT ps_suppkey, ps_partkey, ps_availqty, sum(l_quantity) AS total \
     FROM partsupp, lineitem \
     WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND l_linestatus = 'O' \
     GROUP BY ps_availqty, ps_partkey, ps_suppkey \
     HAVING sum(l_quantity) > ps_availqty \
     ORDER BY ps_partkey";

/// The paper's Query 2 (Experiment A4).
pub const QUERY2: &str = "SELECT ps_suppkey, ps_partkey, ps_availqty, count(l_partkey) AS n \
     FROM partsupp, lineitem \
     WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
     GROUP BY ps_suppkey, ps_partkey, ps_availqty \
     ORDER BY ps_suppkey, ps_partkey";

/// The paper's Query 4 (Experiment B2).
pub const QUERY4: &str = "SELECT * FROM r1 FULL OUTER JOIN r2 \
     ON (r1.c5 = r2.c5 AND r1.c4 = r2.c4 AND r1.c3 = r2.c3) \
     FULL OUTER JOIN r3 \
     ON (r3.c1 = r1.c1 AND r3.c4 = r1.c4 AND r3.c5 = r1.c5)";

/// The paper's Query 5 (`min()` wrapper documented in `EXPERIMENTS.md`).
pub const QUERY5: &str =
    "SELECT t1.userid, t1.basketid, t1.parentorderid, t1.waveid, t1.childorderid, \
            min(t1.quantity * t1.price) AS ordervalue, \
            sum(t2.quantity * t2.price) AS executedvalue \
     FROM tran t1, tran t2 \
     WHERE t1.userid = t2.userid AND t1.parentorderid = t2.parentorderid \
       AND t1.basketid = t2.basketid AND t1.waveid = t2.waveid \
       AND t1.childorderid = t2.childorderid \
       AND t1.trantype = 'New' AND t2.trantype = 'Executed' \
     GROUP BY t1.userid, t1.basketid, t1.parentorderid, t1.waveid, t1.childorderid";

/// The paper's Query 6.
pub const QUERY6: &str = "SELECT * FROM basket b, analytics a \
     WHERE b.prodtype = a.prodtype AND b.symbol = a.symbol AND b.exchange = a.exchange";

/// Example 1's consolidation query (Figs. 1-2).
pub const EXAMPLE1: &str = "SELECT c1.make, c1.year, c1.city, c1.color, c1.sellreason, \
            c2.breakdowns, r.rating \
     FROM catalog1 c1, catalog2 c2, rating r \
     WHERE c1.city = c2.city AND c1.make = c2.make AND c1.year = c2.year \
       AND c1.color = c2.color AND c1.make = r.make AND c1.year = r.year \
     ORDER BY c1.make, c1.year, c1.color, c1.city, c1.sellreason, c2.breakdowns, r.rating";

/// The three micro-bench workloads shared by `bench_batch` and
/// `bench_parallel`. Each builds a session whose RNG seed is the one knob
/// (`SessionBuilder::seed`) that decides the generated data, so the two
/// harnesses — and any two runs — populate bit-identical tables from the
/// same seed.
pub mod workloads {
    use pyro::common::{Schema, Tuple, Value};
    use pyro::{Session, SortOrder};
    use pyro_datagen::rng_with;

    /// scan → filter → project over a 3-int-column table; the two-conjunct
    /// predicate keeps ~50% of the rows.
    pub fn scan_filter_project(n: usize, seed: u64) -> (Session, &'static str) {
        let mut session = Session::builder().seed(seed).build();
        let mut r = rng_with(session.seed());
        let rows: Vec<Tuple> = (0..n as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(r.gen_range(0..1_000_000)),
                    Value::Int(r.gen_range(0..97)),
                ])
            })
            .collect();
        session
            .register_table(
                "points",
                Schema::ints(&["a", "b", "c"]),
                SortOrder::new(["a"]),
                &rows,
            )
            .expect("register points");
        (
            session,
            "SELECT a, c FROM points WHERE b < 750000 AND c < 65",
        )
    }

    /// Hash join: an `n`-row fact probing an `n/10`-row dim build side.
    pub fn hash_join(n: usize, seed: u64) -> (Session, &'static str) {
        let dim_n = (n / 10).max(1);
        let mut session = Session::builder().seed(seed).build();
        let mut r = rng_with(session.seed());
        let dim: Vec<Tuple> = (0..dim_n as i64)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 3)]))
            .collect();
        let fact: Vec<Tuple> = (0..n as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(r.gen_range(0..dim_n as i64)),
                ])
            })
            .collect();
        session
            .register_table(
                "dim",
                Schema::ints(&["d_k", "d_v"]),
                SortOrder::new(["d_k"]),
                &dim,
            )
            .expect("register dim");
        session
            .register_table(
                "fact",
                Schema::ints(&["f_k", "f_d"]),
                SortOrder::new(["f_k"]),
                &fact,
            )
            .expect("register fact");
        (session, "SELECT * FROM dim, fact WHERE d_k = f_d")
    }

    /// The quickstart partial-sort query: ORDER BY (k, v) over clustering
    /// (k) — zero run I/O by the paper's §3.1 argument.
    pub fn partial_sort(n: usize, seed: u64) -> (Session, &'static str) {
        partial_sort_with_pool(n, seed, 0)
    }

    /// [`partial_sort`] over a session with a `pool_pages`-frame buffer
    /// pool (`0` = bypass) — the warm-vs-cold rerun workload of
    /// `bench_batch`.
    pub fn partial_sort_with_pool(
        n: usize,
        seed: u64,
        pool_pages: usize,
    ) -> (Session, &'static str) {
        let mut session = Session::builder()
            .seed(seed)
            .buffer_pool_pages(pool_pages)
            .build();
        register_events(&mut session, n);
        (session, "SELECT k, v FROM events ORDER BY k, v")
    }

    /// [`partial_sort_with_pool`] over a **durable** session rooted at
    /// `data_dir` — the file-backed cold/warm workload of `bench_batch`.
    /// The generated rows are bit-identical to the in-memory variant's.
    pub fn partial_sort_durable(
        n: usize,
        seed: u64,
        pool_pages: usize,
        data_dir: &std::path::Path,
    ) -> (Session, &'static str) {
        let mut session = Session::builder()
            .seed(seed)
            .buffer_pool_pages(pool_pages)
            .data_dir(data_dir)
            .open()
            .expect("open durable bench session");
        register_events(&mut session, n);
        (session, "SELECT k, v FROM events ORDER BY k, v")
    }

    /// The quickstart `events` table: `n` rows in 1000-row clustering
    /// segments, seeded by the session's RNG seed.
    fn register_events(session: &mut Session, n: usize) {
        let per_segment = 1000.min(n.max(2) / 2) as i64;
        let mut r = rng_with(session.seed());
        let rows: Vec<Tuple> = (0..n as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i / per_segment),
                    Value::Int(r.gen_range(0..1_000_000)),
                ])
            })
            .collect();
        session
            .register_table(
                "events",
                Schema::ints(&["k", "v"]),
                SortOrder::new(["k"]),
                &rows,
            )
            .expect("register events");
    }
}

/// Collects rows while recording `(tuples_produced, elapsed)` checkpoints —
/// the series Fig. 8 plots.
pub fn run_with_checkpoints(
    mut op: pyro_exec::BoxOp,
    every: usize,
) -> Result<(usize, Vec<(usize, Duration)>)> {
    let start = Instant::now();
    let mut produced = 0usize;
    let mut checkpoints = Vec::new();
    while let Some(_t) = op.next()? {
        produced += 1;
        if produced.is_multiple_of(every) {
            checkpoints.push((produced, start.elapsed()));
        }
    }
    checkpoints.push((produced, start.elapsed()));
    Ok((produced, checkpoints))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_ordering::SortOrder;

    #[test]
    fn degrade_replaces_partial_sorts() {
        let leaf = Arc::new(PhysNode {
            op: PhysOp::TableScan {
                table: "t".into(),
                alias: "t".into(),
            },
            children: vec![],
            schema: pyro_common::Schema::ints(&["t.a"]),
            out_order: SortOrder::empty(),
            cost: 1.0,
            rows: 1.0,
            logical: 0,
        });
        let ps = Arc::new(PhysNode {
            op: PhysOp::PartialSort {
                prefix_len: 1,
                target: SortOrder::new(["t.a"]),
            },
            children: vec![leaf],
            schema: pyro_common::Schema::ints(&["t.a"]),
            out_order: SortOrder::new(["t.a"]),
            cost: 2.0,
            rows: 1.0,
            logical: 0,
        });
        let degraded = degrade_partial_sorts(&ps);
        assert!(matches!(degraded.op, PhysOp::Sort { .. }));
        assert_eq!(degraded.children.len(), 1);
    }
}
