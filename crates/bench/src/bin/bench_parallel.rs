//! Serial vs morsel-parallel micro-benchmarks — the `workers` knob's
//! perf-trajectory file.
//!
//! Each workload is optimized once and then executed from the same plan at
//! `workers = 1` (the serial engine, bit-identical to every previous
//! release) and `workers ∈ {2, 4}`. Two invariants are asserted on every
//! run, on every machine:
//!
//! * **parity** — rows are identical as multisets (exactly, for the ordered
//!   `partial_sort` workload) and all four `ExecMetrics` counters are
//!   bit-identical between serial and parallel execution;
//! * **sanity** — parallel wall-clock does not collapse (speedup well above
//!   the channel-overhead floor).
//!
//! The *speedup gates* (≥ 2× at 4 workers in full mode, ≥ 1× in `--smoke`)
//! are enforced only when the machine actually has that many cores —
//! `cpu_cores` is recorded in the JSON so a reader can tell a 1-core
//! container's numbers from a real multicore run.
//!
//! ```bash
//! cargo run --release --bin bench_parallel                    # 1M rows → BENCH_parallel.json
//! cargo run --release --bin bench_parallel -- --smoke         # CI mode
//! cargo run --release --bin bench_parallel -- --out out.json --seed 42
//! ```

use pyro::common::Tuple;
use pyro::core::PhysOp;
use pyro::Session;
use pyro_bench::{banner, workloads};
use std::time::Instant;

const BATCH_SIZE: usize = 1024;
const REPS: usize = 5;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

#[derive(Debug, Clone)]
struct RunStats {
    elapsed_ms: f64,
    rows: usize,
    /// Row payloads are kept only until the parity assert runs, then freed
    /// (full mode would otherwise pin several million tuples per bench).
    rows_sorted: Vec<Tuple>,
    rows_exact: Vec<Tuple>,
    comparisons: u64,
    run_pages_written: u64,
    run_pages_read: u64,
    runs_created: u64,
}

impl RunStats {
    fn json(&self) -> String {
        format!(
            "{{\"elapsed_ms\": {:.3}, \"rows\": {}, \"comparisons\": {}, \"run_pages_written\": {}, \"run_pages_read\": {}, \"runs_created\": {}}}",
            self.elapsed_ms,
            self.rows,
            self.comparisons,
            self.run_pages_written,
            self.run_pages_read,
            self.runs_created
        )
    }
}

/// One timed execution: compile (including worker spawn) + drain.
fn run_once(session: &Session, sql: &str, workers: usize) -> RunStats {
    let plan = session.plan(sql).expect("plan");
    let start = Instant::now();
    let out = plan
        .compile_with_workers(session.catalog(), BATCH_SIZE, workers)
        .expect("compile")
        .run()
        .expect("run");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut rows_sorted = out.rows.clone();
    rows_sorted.sort();
    RunStats {
        elapsed_ms,
        rows: out.rows.len(),
        rows_sorted,
        rows_exact: out.rows,
        comparisons: out.metrics.comparisons(),
        run_pages_written: out.metrics.run_pages_written(),
        run_pages_read: out.metrics.run_pages_read(),
        runs_created: out.metrics.runs_created(),
    }
}

/// Interleaved reps (w=1, w=2, w=4, w=1, …) so machine-load drift hits all
/// worker counts equally; keeps each count's fastest rep.
fn measure(session: &Session, sql: &str) -> Vec<(usize, RunStats)> {
    let mut best: Vec<Option<RunStats>> = vec![None; WORKER_COUNTS.len()];
    for _ in 0..REPS {
        for (slot, &w) in WORKER_COUNTS.iter().enumerate() {
            let stats = run_once(session, sql, w);
            if best[slot]
                .as_ref()
                .is_none_or(|b| stats.elapsed_ms < b.elapsed_ms)
            {
                best[slot] = Some(stats);
            }
        }
    }
    WORKER_COUNTS
        .iter()
        .zip(best)
        .map(|(&w, s)| (w, s.expect("reps > 0")))
        .collect()
}

struct BenchResult {
    name: &'static str,
    rows_in: usize,
    ordered: bool,
    runs: Vec<(usize, RunStats)>,
}

impl BenchResult {
    fn serial(&self) -> &RunStats {
        &self.runs[0].1
    }

    fn speedup_at(&self, workers: usize) -> f64 {
        let par = &self
            .runs
            .iter()
            .find(|(w, _)| *w == workers)
            .expect("measured")
            .1;
        self.serial().elapsed_ms / par.elapsed_ms
    }

    fn json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|(w, s)| format!("        \"workers_{w}\": {}", s.json()))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"input_rows\": {},\n      \"ordered_output\": {},\n      \"runs\": {{\n{}\n      }},\n      \"speedup_2\": {:.3},\n      \"speedup_4\": {:.3}\n    }}",
            self.name,
            self.rows_in,
            self.ordered,
            runs,
            self.speedup_at(2),
            self.speedup_at(4)
        )
    }
}

/// Parity: the whole point of the exchange design — parallel execution may
/// only change wall-clock, never rows or the four paper counters.
fn assert_parity(result: &BenchResult) {
    let serial = result.serial();
    for (w, stats) in &result.runs[1..] {
        if result.ordered {
            assert_eq!(
                serial.rows_exact, stats.rows_exact,
                "{}: ordered rows diverged at workers={w}",
                result.name
            );
        } else {
            assert_eq!(
                serial.rows_sorted, stats.rows_sorted,
                "{}: row multiset diverged at workers={w}",
                result.name
            );
        }
        assert_eq!(
            serial.comparisons, stats.comparisons,
            "{}: comparisons diverged at workers={w}",
            result.name
        );
        assert_eq!(
            serial.run_pages_written, stats.run_pages_written,
            "{}: run pages written diverged at workers={w}",
            result.name
        );
        assert_eq!(
            serial.run_pages_read, stats.run_pages_read,
            "{}: run pages read diverged at workers={w}",
            result.name
        );
        assert_eq!(
            serial.runs_created, stats.runs_created,
            "{}: runs created diverged at workers={w}",
            result.name
        );
    }
}

fn run_bench(
    session: &Session,
    name: &'static str,
    rows_in: usize,
    ordered: bool,
    sql: &str,
) -> BenchResult {
    banner(&format!("{name}  ({rows_in} input rows)"));
    let runs = measure(session, sql);
    let mut result = BenchResult {
        name,
        rows_in,
        ordered,
        runs,
    };
    assert_parity(&result);
    // Parity checked: release the row payloads before the next bench runs.
    for (_, s) in &mut result.runs {
        s.rows_sorted = Vec::new();
        s.rows_exact = Vec::new();
    }
    for (w, s) in &result.runs {
        println!(
            "workers={w}    : {:>10.1} ms   ({} rows, {} comparisons, {} run pages)",
            s.elapsed_ms,
            s.rows,
            s.comparisons,
            s.run_pages_written + s.run_pages_read
        );
    }
    println!(
        "speedup      : {:>10.2}x @2   {:.2}x @4",
        result.speedup_at(2),
        result.speedup_at(4)
    );
    result
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(pyro::datagen::SEED);
    let n: usize = if smoke { 200_000 } else { 1_000_000 };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    banner(&format!(
        "bench_parallel  (mode={}, cpu_cores={cores}, seed={seed:#x})",
        if smoke { "smoke" } else { "full" }
    ));

    let mut results = Vec::new();

    let (session, sql) = workloads::scan_filter_project(n, seed);
    results.push(run_bench(&session, "scan_filter_project", n, false, sql));

    let (session, sql) = workloads::hash_join(n, seed);
    let plan = session.plan(sql).expect("plan");
    assert!(
        plan.root
            .count_nodes(&|node| matches!(node.op, PhysOp::HashJoin { .. }))
            > 0,
        "hash_join bench plan lost its hash join:\n{}",
        plan.explain()
    );
    results.push(run_bench(&session, "hash_join", n, false, sql));

    let (session, sql) = workloads::partial_sort(n, seed);
    let result = run_bench(&session, "quickstart_partial_sort", n, true, sql);
    assert_eq!(
        result.serial().run_pages_written + result.serial().run_pages_read,
        0,
        "quickstart invariant violated: partial sort must do zero run I/O"
    );
    results.push(result);

    // Speedup gates, enforced where the hardware can express them. Parity
    // above is unconditional; wall-clock only means something with cores.
    let headline = results
        .iter()
        .find(|r| r.name == "scan_filter_project")
        .expect("headline bench present");
    let join = results
        .iter()
        .find(|r| r.name == "hash_join")
        .expect("join bench");
    if cores >= 4 && !smoke {
        assert!(
            headline.speedup_at(4) >= 2.0,
            "scan_filter_project must reach 2x at 4 workers on a >=4-core machine (got {:.2}x)",
            headline.speedup_at(4)
        );
        assert!(
            join.speedup_at(4) >= 2.0,
            "hash_join must reach 2x at 4 workers on a >=4-core machine (got {:.2}x)",
            join.speedup_at(4)
        );
    }
    if cores >= 2 {
        // Small margin under the nominal "≥ 1×" so wall-clock noise on a
        // contended 2-core CI runner can't abort a defect-free build.
        assert!(
            headline.speedup_at(2).max(headline.speedup_at(4)) >= 0.9,
            "parallel scan_filter_project slower than serial on a multicore machine ({:.2}x)",
            headline.speedup_at(2).max(headline.speedup_at(4))
        );
    } else {
        // Single core: threads only add overhead; bound how much.
        assert!(
            headline.speedup_at(2).max(headline.speedup_at(4)) >= 0.3,
            "parallel overhead out of bounds on a 1-core machine ({:.2}x)",
            headline.speedup_at(2).max(headline.speedup_at(4))
        );
        println!(
            "\nNOTE: only {cores} CPU core(s) available — speedup gates skipped, parity still asserted."
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_parallel\",\n  \"mode\": \"{}\",\n  \"cpu_cores\": {},\n  \"batch_size\": {},\n  \"reps\": {},\n  \"seed\": {},\n  \"benches\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        cores,
        BATCH_SIZE,
        REPS,
        seed,
        results
            .iter()
            .map(BenchResult::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    banner(&format!("wrote {out_path}"));
    println!("{json}");
}
