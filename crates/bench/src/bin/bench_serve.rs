//! Serving-workload benchmark: N client threads hammer one shared
//! `Arc<Session>` with a repeating query mix, with and without the plan
//! cache — the amortization story of this engine's planner effort.
//!
//! Three invariants are asserted on every run, on every machine:
//!
//! * **parity** — every concurrent execution returns exactly the rows the
//!   serial reference run produced (identical sequences: the mix is
//!   single-plan deterministic at `workers = 1`);
//! * **warm hits** — with the cache on, every post-warmup lookup is a plan
//!   cache hit (same text, same knobs, unchanged catalog);
//! * **prepared parity** — a `?`-parameterized prepared statement returns
//!   the same rows as the equivalent literal SQL for every binding.
//!
//! The headline numbers are queries/second served with the cache off vs on
//! (same thread count, same mix) and the per-query planning share they
//! imply. Wall-clock speedups depend on the machine's core count —
//! `cpu_cores` is recorded in the JSON so a reader can tell a 1-core
//! container's numbers from a real multicore run.
//!
//! ```bash
//! cargo run --release --bin bench_serve                    # full → BENCH_serve.json
//! cargo run --release --bin bench_serve -- --smoke         # CI mode
//! cargo run --release --bin bench_serve -- --out out.json --seed 42 --threads 8
//! ```

use pyro::common::{Tuple, Value};
use pyro::datagen::tpch;
use pyro::{Session, SessionBuilder};
use pyro_bench::banner;
use std::sync::Arc;
use std::time::Instant;

const QUERIES: [(&str, &str); 4] = [
    (
        "partial_sort",
        "SELECT l_suppkey, l_partkey FROM lineitem ORDER BY l_suppkey, l_partkey",
    ),
    (
        "filter_scan",
        "SELECT l_suppkey, l_partkey, l_quantity FROM lineitem WHERE l_linestatus = 'O'",
    ),
    (
        "join_agg",
        "SELECT ps_suppkey, ps_partkey, ps_availqty, count(l_partkey) AS n \
         FROM partsupp, lineitem \
         WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
         GROUP BY ps_suppkey, ps_partkey, ps_availqty \
         ORDER BY ps_suppkey, ps_partkey",
    ),
    (
        "point_lookup",
        "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = 3 \
         ORDER BY l_orderkey, l_quantity",
    ),
];

const PREPARED: &str = "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = ? \
                        ORDER BY l_orderkey, l_quantity";

struct Args {
    smoke: bool,
    out_path: String,
    seed: u64,
    threads: usize,
    iters: usize,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Args {
        smoke,
        out_path: flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_string()),
        seed: flag("--seed")
            .map(|s| s.parse().expect("--seed takes a u64"))
            .unwrap_or(pyro::datagen::SEED),
        threads: flag("--threads")
            .map(|s| s.parse().expect("--threads takes a usize"))
            .unwrap_or(8),
        iters: flag("--iters")
            .map(|s| s.parse().expect("--iters takes a usize"))
            .unwrap_or(if smoke { 3 } else { 12 }),
    }
}

fn build_session(cache_entries: usize, scale: f64, seed: u64) -> Session {
    let mut session = SessionBuilder::new()
        .plan_cache_entries(cache_entries)
        .seed(seed)
        .build();
    tpch::load_with_seed(session.catalog_mut(), tpch::TpchConfig::scaled(scale), seed).unwrap();
    session
}

/// Serial reference rows per query (also warms a configured plan cache).
fn references(session: &Session) -> Vec<Vec<Tuple>> {
    QUERIES
        .iter()
        .map(|(_, sql)| session.sql(sql).expect("reference run").into_rows())
        .collect()
}

struct ServeStats {
    elapsed_ms: f64,
    queries: usize,
    qps: f64,
}

/// `threads` workers each run the whole mix `iters` times against the
/// shared session, asserting row parity with the serial reference on every
/// single execution.
fn serve(session: &Arc<Session>, reference: &Arc<Vec<Vec<Tuple>>>, args: &Args) -> ServeStats {
    let start = Instant::now();
    let handles: Vec<_> = (0..args.threads)
        .map(|t| {
            let session = Arc::clone(session);
            let reference = Arc::clone(reference);
            let iters = args.iters;
            std::thread::spawn(move || {
                for _ in 0..iters {
                    for ((name, sql), expect) in QUERIES.iter().zip(reference.iter()) {
                        let out = session.sql(sql).expect("serve query");
                        assert_eq!(
                            out.rows(),
                            &expect[..],
                            "{name}: concurrent rows diverged from serial (thread {t})"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("serve worker must not panic");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let queries = args.threads * args.iters * QUERIES.len();
    ServeStats {
        elapsed_ms,
        queries,
        qps: queries as f64 / (elapsed_ms / 1e3),
    }
}

fn main() {
    let args = parse_args();
    let scale = if args.smoke { 0.002 } else { 0.01 };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    banner(&format!(
        "bench_serve  (mode={}, cpu_cores={cores}, threads={}, iters={}, scale={scale}, seed={:#x})",
        if args.smoke { "smoke" } else { "full" },
        args.threads,
        args.iters,
        args.seed
    ));

    // --- cache off: every call re-plans -------------------------------
    let session_off = build_session(0, scale, args.seed);
    let reference = Arc::new(references(&session_off));
    let session_off = Arc::new(session_off);
    let off = serve(&session_off, &reference, &args);
    println!(
        "cache off : {:>9.1} ms  {:>7.0} qps  ({} queries)",
        off.elapsed_ms, off.qps, off.queries
    );

    // --- cache on: plan once per shape, serve from the cache ----------
    let session_on = build_session(64, scale, args.seed);
    let reference_on = Arc::new(references(&session_on)); // warms the cache
    for (a, b) in reference.iter().zip(reference_on.iter()) {
        assert_eq!(a, b, "cache knob must not change results");
    }
    let session_on = Arc::new(session_on);
    let warm_baseline = session_on.plan_cache_stats().expect("cache on");
    let on = serve(&session_on, &reference_on, &args);
    let stats = session_on.plan_cache_stats().expect("cache on");
    let served = (stats.hits - warm_baseline.hits) as usize;
    println!(
        "cache on  : {:>9.1} ms  {:>7.0} qps  (hits {}, misses {}, hit rate {:.3})",
        on.elapsed_ms,
        on.qps,
        stats.hits,
        stats.misses,
        stats.hits as f64 / (stats.hits + stats.misses) as f64
    );
    assert!(
        stats.hits > 0,
        "warm reruns must be served from the plan cache: {stats:?}"
    );
    assert_eq!(
        served, on.queries,
        "every post-warmup lookup must hit (same text, same knobs, unchanged catalog)"
    );

    // --- prepared statements: bind-time parameters, one plan ----------
    let stmt = session_on.prepare(PREPARED).expect("prepare");
    let mut prepared_queries = 0usize;
    let prep_start = Instant::now();
    for k in [1i64, 2, 3, 5, 8] {
        let bound = stmt.execute(&[Value::Int(k)]).expect("execute bound");
        let literal = session_on
            .sql(&format!(
                "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = {k} \
                 ORDER BY l_orderkey, l_quantity"
            ))
            .expect("literal run");
        assert_eq!(
            bound.rows(),
            literal.rows(),
            "prepared execution must match literal SQL at l_suppkey = {k}"
        );
        prepared_queries += 1;
    }
    let prep_ms = prep_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "prepared  : {prepared_queries} bindings via one plan, parity with literal SQL ({prep_ms:.1} ms)"
    );

    // --- planning amortization: plan() only, no execution -------------
    // The paper's strategies spend real planner effort; this is the cost
    // the cache converts from per-call to once-per-shape. Measured on the
    // planner-heaviest shape in the mix (the join + aggregate).
    let plan_sql = QUERIES[2].1;
    let reps = if args.smoke { 50 } else { 200 };
    let t0 = Instant::now();
    for _ in 0..reps {
        session_off.plan(plan_sql).expect("uncached plan");
    }
    let uncached_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    for _ in 0..reps {
        session_on.plan(plan_sql).expect("cached plan");
    }
    let cached_ms = t0.elapsed().as_secs_f64() * 1e3;
    let plan_speedup = uncached_ms / cached_ms.max(1e-6);
    println!(
        "planning  : {reps} reps  uncached {uncached_ms:.1} ms, cached {cached_ms:.1} ms  ({plan_speedup:.1}x)"
    );
    assert!(
        cached_ms < uncached_ms,
        "a cache hit must be cheaper than a full optimizer run \
         (cached {cached_ms:.2} ms vs uncached {uncached_ms:.2} ms over {reps} reps)"
    );

    let speedup = off.elapsed_ms / on.elapsed_ms;
    println!("\nplan-cache speedup over the mix: {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"BENCH_serve\",\n  \"mode\": \"{}\",\n  \"cpu_cores\": {},\n  \"threads\": {},\n  \"iters\": {},\n  \"scale\": {},\n  \"seed\": {},\n  \"queries_in_mix\": {},\n  \"cache_off\": {{\"elapsed_ms\": {:.3}, \"queries\": {}, \"qps\": {:.1}}},\n  \"cache_on\": {{\"elapsed_ms\": {:.3}, \"queries\": {}, \"qps\": {:.1}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n  \"prepared\": {{\"bindings\": {}, \"elapsed_ms\": {:.3}, \"parity\": true}},\n  \"planning\": {{\"reps\": {}, \"uncached_ms\": {:.3}, \"cached_ms\": {:.3}, \"speedup\": {:.1}}},\n  \"speedup_cache_on\": {:.3}\n}}\n",
        if args.smoke { "smoke" } else { "full" },
        cores,
        args.threads,
        args.iters,
        scale,
        args.seed,
        QUERIES.len(),
        off.elapsed_ms,
        off.queries,
        off.qps,
        on.elapsed_ms,
        on.queries,
        on.qps,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.hits as f64 / (stats.hits + stats.misses) as f64,
        prepared_queries,
        prep_ms,
        reps,
        uncached_ms,
        cached_ms,
        plan_speedup,
        speedup
    );
    std::fs::write(&args.out_path, &json).expect("write bench json");
    banner(&format!("wrote {}", args.out_path));
    println!("{json}");
}
