//! Figures 10–11 / Experiment B1: the plans chosen for Query 3.
//!
//! Paper: PostgreSQL chose merge join + *hash* aggregate with full sorts;
//! SYS1 defaulted to a hash join; SYS2 (and SYS1 when forced) used a merge
//! join with a full sort of 6 M lineitem index entries. PYRO-O instead sorts
//! the covering-index streams *partially* on (suppkey, partkey) and finishes
//! with a cheap sort of the few HAVING survivors on partkey.
//!
//! We print: the modern default (hash space, like Postgres/SYS1 defaults),
//! the forced merge-join plan without partial sorts (SYS-style), and the
//! PYRO-O plan.

use pyro::{Session, Strategy};
use pyro_bench::{banner, run_plan, QUERY3};
use pyro_datagen::tpch::{self, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figures 10-11 / Experiment B1: Query 3 plans");
    let mut session = Session::builder().sort_memory_blocks(64).build();
    tpch::load(session.catalog_mut(), TpchConfig::scaled(0.05))?;

    let cases = [
        (
            "default optimizer (hash plan space) — Fig. 11(a) analogue",
            Strategy::pyro_p(),
            true,
        ),
        (
            "forced merge joins, exact orders only — Fig. 10(a)/11(b) analogue",
            Strategy::pyro_o_minus(),
            false,
        ),
        (
            "PYRO-O (partial sorts) — Fig. 10(b)",
            Strategy::pyro_o(),
            false,
        ),
    ];
    let mut measured = Vec::new();
    for (label, strategy, hash) in cases {
        session.set_strategy(strategy);
        session.set_hash_operators(hash);
        let plan = session.plan(QUERY3)?;
        println!("\n--- {label} ---");
        println!("estimated cost = {:.0}\n{}", plan.cost(), plan.explain());
        let stats = run_plan(&plan, session.catalog())?;
        println!(
            "measured: {:.1} ms, {} comparisons, {} spill pages, {} rows",
            stats.ms(),
            stats.comparisons,
            stats.run_io,
            stats.rows
        );
        measured.push((label, stats));
    }
    let rows0 = measured[0].1.rows;
    assert!(measured.iter().all(|(_, s)| s.rows == rows0));
    let pyro_o = &measured[2].1;
    let forced_mj = &measured[1].1;
    println!(
        "\nPYRO-O vs forced-merge-join: {:.2}x wall, {:.1}x fewer spill pages",
        forced_mj.ms() / pyro_o.ms(),
        forced_mj.run_io.max(1) as f64 / pyro_o.run_io.max(1) as f64
    );
    Ok(())
}
