//! Figure 14 / Experiment B2: Query 4's two full outer joins — uncoordinated
//! vs coordinated sort orders.
//!
//! Paper: SYS1 and PostgreSQL chose orders with **no common prefix**
//! ((c3,c4,c5) then (c4,c5,c1), Fig. 14a), forcing a full re-sort between
//! the joins; PYRO-O's phase-2 refinement aligns both joins on the shared
//! prefix (c4, c5) so the upper join needs only a partial sort (Fig. 14b).

use pyro::{Session, Strategy};
use pyro_bench::{banner, run_plan, QUERY4};
use pyro_core::plan::PhysOp;
use pyro_datagen::qtables;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figure 14 / Experiment B2: Query 4 sort-order coordination");
    let mut session = Session::builder()
        .sort_memory_blocks(64)
        .hash_operators(false)
        .build();
    qtables::load_q4(session.catalog_mut(), 50_000)?; // paper: 100 K per table

    session.set_strategy(Strategy {
        refine: false,
        ..Strategy::pyro_o()
    });
    let uncoordinated = session.plan(QUERY4)?;
    println!("\n--- Figure 14(a) analogue: phase-1 only (uncoordinated) ---");
    println!(
        "cost = {:.0}\n{}",
        uncoordinated.cost(),
        uncoordinated.explain()
    );

    session.set_strategy(Strategy::pyro_o());
    let coordinated = session.plan(QUERY4)?;
    println!("--- Figure 14(b): PYRO-O with phase-2 refinement ---");
    println!(
        "cost = {:.0}\n{}",
        coordinated.cost(),
        coordinated.explain()
    );

    // Verify the headline property: shared 2-attribute prefix.
    let mut orders = Vec::new();
    coordinated.root.walk(&mut |n| {
        if let PhysOp::MergeJoin { order, .. } = &n.op {
            orders.push(order.clone());
        }
    });
    let bare = |o: &pyro_ordering::SortOrder, i: usize| {
        o.attrs()[i].rsplit('.').next().unwrap().to_string()
    };
    let shared = (0..2)
        .take_while(|&i| bare(&orders[0], i) == bare(&orders[1], i))
        .count();
    println!(
        "shared prefix between the two joins: {} attributes ({:?} vs {:?})",
        shared, orders[0], orders[1]
    );
    assert_eq!(shared, 2);

    let ru = run_plan(&uncoordinated, session.catalog())?;
    let rc = run_plan(&coordinated, session.catalog())?;
    println!("\nmeasured:");
    println!(
        "  uncoordinated: {:8.1} ms  {:>12} cmp  {:>8} spill pages",
        ru.ms(),
        ru.comparisons,
        ru.run_io
    );
    println!(
        "  coordinated  : {:8.1} ms  {:>12} cmp  {:>8} spill pages",
        rc.ms(),
        rc.comparisons,
        rc.run_io
    );
    assert_eq!(ru.rows, rc.rows);
    Ok(())
}
