//! Figures 12–13: measured running times of default plans vs PYRO-O plans
//! for Query 3 and Query 4.
//!
//! Paper (PostgreSQL, Fig. 12): Q3 default ≈ 80 s vs PYRO-O ≈ 25 s; Q4
//! default ≈ 40 s vs PYRO-O ≈ 30 s. Paper (SYS1, Fig. 13): Q3 default ≈
//! 22 s, forced-MJ ≈ 25 s, PYRO-O ≈ 15 s. The shape to reproduce: the
//! PYRO-O plan is fastest on both queries, with the bigger win on Q3.

use pyro::{Session, Strategy};
use pyro_bench::{banner, run_plan, QUERY3, QUERY4};
use pyro_datagen::{qtables, tpch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figures 12-13: default plan vs PYRO-O plan, measured");
    let mut session = Session::builder().sort_memory_blocks(64).build();
    tpch::load(session.catalog_mut(), tpch::TpchConfig::scaled(0.05))?;
    qtables::load_q4(session.catalog_mut(), 30_000)?;

    println!(
        "\n{:<10} {:<28} {:>10} {:>14} {:>12} {:>8}",
        "query", "plan", "time(ms)", "comparisons", "spill pages", "rows"
    );
    for (qname, sql) in [("Query 3", QUERY3), ("Query 4", QUERY4)] {
        // "Default plan": the Postgres-heuristic optimizer over the full
        // (hash-enabled) plan space, no partial sorts — what a 2006 system
        // would pick plus its sort behaviour.
        let cases = [
            ("default (PYRO-P, hash)", Strategy::pyro_p(), true),
            (
                "default MJ (PYRO-O-, sort)",
                Strategy::pyro_o_minus(),
                false,
            ),
            ("PYRO-O plan", Strategy::pyro_o(), false),
        ];
        let mut rows_seen = None;
        for (label, strategy, hash) in cases {
            session.set_strategy(strategy);
            session.set_hash_operators(hash);
            let plan = session.plan(sql)?;
            let stats = run_plan(&plan, session.catalog())?;
            println!(
                "{:<10} {:<28} {:>10.1} {:>14} {:>12} {:>8}",
                qname,
                label,
                stats.ms(),
                stats.comparisons,
                stats.run_io,
                stats.rows
            );
            match rows_seen {
                None => rows_seen = Some(stats.rows),
                Some(r) => assert_eq!(r, stats.rows, "{qname}: plans disagree"),
            }
        }
    }
    println!("\npaper shape: PYRO-O fastest on both; biggest gap on Query 3.");
    Ok(())
}
