//! Figure 9 / Experiment A3: effect of partial-sort segment size.
//!
//! Paper setup: tables R0..R7 of 10 M × 200 B rows clustered on c1, with
//! 10^i rows per c1 value (segment sizes 200 B … 2 GB) and 10 MB of sort
//! memory. Expected shape: MRS ≈ flat and cheap while segments fit in
//! memory, then rises and converges to SRS when a single segment is the
//! whole table; SRS jumps as soon as the *input* outgrows memory.
//!
//! We scale to 200 K rows × ~56 B with a 64-block (256 KB) budget; the
//! memory-fit boundary is crossed between segment sizes 10^3 and 10^4.

use pyro_bench::banner;
use pyro_catalog::Catalog;
use pyro_common::KeySpec;
use pyro_datagen::rtables;
use pyro_exec::scan::FileScan;
use pyro_exec::sort::{PartialSort, SortBudget, StandardReplacementSort};
use pyro_exec::{BoxOp, ExecMetrics};
use std::time::Instant;

const ROWS: usize = 200_000;
const PAD: usize = 24;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figure 9 / Experiment A3: partial sort segment size sweep");
    println!(
        "\n{:>12} {:>10} | {:>10} {:>12} | {:>10} {:>12} | {:>8}",
        "rows/seg", "segments", "SRS ms", "SRS spill", "MRS ms", "MRS spill", "MRS/SRS"
    );
    // R_i has 10^i rows per c1 value.
    for i in 0..=5 {
        let per_segment = 10usize.pow(i).min(ROWS);
        let segments = (ROWS / per_segment).max(1);
        let mut catalog = Catalog::new();
        catalog.set_sort_memory_blocks(64);
        rtables::load(&mut catalog, "r", ROWS, segments, PAD)?;
        let budget = SortBudget::new(64, catalog.device().block_size());
        let key = KeySpec::new(vec![0, 1]);
        let scan = |cat: &Catalog| -> BoxOp {
            let h = cat.table("r").expect("registered");
            Box::new(FileScan::new(h.meta.schema.qualify("r"), &h.heap))
        };

        let m_srs = ExecMetrics::new();
        let srs: BoxOp = Box::new(StandardReplacementSort::new(
            scan(&catalog),
            key.clone(),
            catalog.device().clone(),
            budget,
            m_srs.clone(),
        ));
        let t0 = Instant::now();
        let n_srs = drain(srs)?;
        let t_srs = t0.elapsed().as_secs_f64() * 1e3;

        let m_mrs = ExecMetrics::new();
        let mrs: BoxOp = Box::new(PartialSort::new(
            scan(&catalog),
            key.clone(),
            1,
            catalog.device().clone(),
            budget,
            m_mrs.clone(),
        ));
        let t0 = Instant::now();
        let n_mrs = drain(mrs)?;
        let t_mrs = t0.elapsed().as_secs_f64() * 1e3;

        assert_eq!(n_srs, ROWS);
        assert_eq!(n_mrs, ROWS);
        println!(
            "{:>12} {:>10} | {:>10.1} {:>12} | {:>10.1} {:>12} | {:>8.2}",
            per_segment,
            segments,
            t_srs,
            m_srs.run_io(),
            t_mrs,
            m_mrs.run_io(),
            t_mrs / t_srs
        );
    }
    println!(
        "\nexpected shape: MRS spill = 0 while segments fit in memory, then\n\
         converges to SRS at the right edge (single giant segment)."
    );
    Ok(())
}

fn drain(mut op: BoxOp) -> pyro_common::Result<usize> {
    let mut n = 0;
    while op.next()?.is_some() {
        n += 1;
    }
    Ok(n)
}
