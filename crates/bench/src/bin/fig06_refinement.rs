//! Figure 6: the post-optimization (phase-2) rework of free attributes.
//!
//! The paper's setup: R1..R4 all clustered on `a`, no other favorable
//! orders; three joins with attribute sets {a,h,d} / {a,h,b,c}-ish shapes.
//! Phase-1 fixes only the favorable prefix `(a)`; the free attributes get
//! arbitrary permutations. Phase-2 runs the 2-approximate tree algorithm so
//! adjacent joins share maximal prefixes (the paper's underlined orders).

use pyro::{Session, Strategy};
use pyro_bench::banner;
use pyro_common::{Schema, Tuple, Value};
use pyro_core::plan::PhysOp;
use pyro_ordering::SortOrder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figure 6: phase-2 refinement of free attributes");
    let mut session = Session::builder().hash_operators(false).build();
    let mut rng_state = 7u64;
    let mut rnd = move |m: i64| {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((rng_state >> 33) as i64) % m
    };
    // R1..R4: columns a..h, clustered on a.
    let cols = ["a", "b", "c", "d", "e", "h"];
    for t in ["r1", "r2", "r3", "r4"] {
        let mut rows: Vec<Tuple> = (0..3000)
            .map(|_| Tuple::new(cols.iter().map(|_| Value::Int(rnd(40))).collect()))
            .collect();
        rows.sort_by(|x, y| x.get(0).cmp(y.get(0)));
        session.register_table(t, Schema::ints(&cols), SortOrder::new(["a"]), &rows)?;
    }

    // The paper's join shape: ((R1 ⋈ R2) ⋈ R3) ⋈ R4 with attribute sets
    // {a,d,h}, {a,e,h}, {a,b,c,h}.
    let sql = "SELECT * FROM r1, r2, r3, r4 \
        WHERE r1.a = r2.a AND r1.d = r2.d AND r1.h = r2.h \
          AND r1.a = r3.a AND r1.e = r3.e AND r1.h = r3.h \
          AND r1.a = r4.a AND r1.b = r4.b AND r1.c = r4.c AND r1.h = r4.h";
    session.set_strategy(Strategy {
        refine: false,
        ..Strategy::pyro_o()
    });
    let phase1_only = session.plan(sql)?;
    session.set_strategy(Strategy::pyro_o());
    let refined = session.plan(sql)?;

    let orders = |plan: &pyro_core::OptimizedPlan| {
        let mut v = Vec::new();
        plan.root.walk(&mut |n| {
            if let PhysOp::MergeJoin { order, .. } = &n.op {
                v.push(order.clone());
            }
        });
        v
    };
    println!("\nphase-1 orders (free attributes arbitrary):");
    for o in orders(&phase1_only) {
        println!("  {o}");
    }
    println!("cost = {:.0}", phase1_only.cost());

    println!("\nphase-2 reworked orders (shared prefixes underlined in the paper):");
    for o in orders(&refined) {
        println!("  {o}");
    }
    println!("cost = {:.0}", refined.cost());
    println!(
        "\nrefinement improvement: {:.2}x",
        phase1_only.cost() / refined.cost()
    );
    assert!(refined.cost() <= phase1_only.cost());
    Ok(())
}
