//! Figures 1–2: naïve vs order-aware merge-join plans for Example 1.
//!
//! Paper: naïve plan cost 530,345 vs optimal 290,410 (≈ 1.8× better) at 2 M
//! rows per catalog. We print both plans and the cost ratio at a scaled-down
//! size; the *shape* to check is (a) both plans keep the same join order and
//! merge joins, (b) the order-aware plan replaces full sorts with partial
//! sorts fed by the clustering/covering indices, (c) a substantial cost gap.

use pyro::{Session, Strategy};
use pyro_bench::{banner, run_plan, EXAMPLE1};
use pyro_datagen::consolidation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figures 1-2: Example 1 plans (naive vs order-aware)");
    let mut session = Session::builder().hash_operators(false).build();
    consolidation::load(session.catalog_mut(), 60_000)?;

    // Fig. 1: a naive sort-based plan — arbitrary interesting orders.
    session.set_strategy(Strategy::pyro());
    let naive = session.plan(EXAMPLE1)?;
    println!("\n--- Figure 1 analogue: naive merge-join plan (PYRO, sort-based space) ---");
    println!("Plan Cost = {:.0}\n{}", naive.cost(), naive.explain());

    // Fig. 2: the order-aware plan.
    session.set_strategy(Strategy::pyro_o());
    let tuned = session.plan(EXAMPLE1)?;
    println!("--- Figure 2 analogue: optimal merge-join plan (PYRO-O) ---");
    println!("Plan Cost = {:.0}\n{}", tuned.cost(), tuned.explain());

    println!(
        "estimated cost ratio naive/optimal = {:.2}x   (paper: 530345/290410 = 1.83x)",
        naive.cost() / tuned.cost()
    );

    let rn = run_plan(&naive, session.catalog())?;
    let rt = run_plan(&tuned, session.catalog())?;
    println!("\nmeasured execution:");
    println!(
        "  naive : {:8.1} ms  {:>12} cmp  {:>8} spill pages  ({} rows)",
        rn.ms(),
        rn.comparisons,
        rn.run_io,
        rn.rows
    );
    println!(
        "  tuned : {:8.1} ms  {:>12} cmp  {:>8} spill pages  ({} rows)",
        rt.ms(),
        rt.comparisons,
        rt.run_io,
        rt.rows
    );
    assert_eq!(rn.rows, rt.rows, "plans must agree on the result");
    Ok(())
}
