//! Figure 7 / Experiment A1: ORDER BY (l_suppkey, l_partkey) with a
//! covering index on l_suppkey — default full sort vs partial sort.
//!
//! Paper: on all three systems the default sort ignored the available
//! (l_suppkey) prefix; exploiting it ran 3–4× faster. We execute the same
//! PYRO-O plan twice: once as produced (MRS partial sort) and once with the
//! partial sort degraded to a full SRS sort — the exact substitution the
//! paper made inside PostgreSQL.

use pyro::Session;
use pyro_bench::{banner, degrade_partial_sorts, run_pipeline};
use pyro_datagen::tpch::{self, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figure 7 / Experiment A1: default sort vs partial sort");
    // Keep the sort "interesting": shrink memory so a full sort of the index
    // entries goes external, as at paper scale.
    let mut session = Session::builder().sort_memory_blocks(64).build();
    tpch::load(session.catalog_mut(), TpchConfig::scaled(0.05))?; // 300 K lineitems

    let plan =
        session.plan("SELECT l_suppkey, l_partkey FROM lineitem ORDER BY l_suppkey, l_partkey")?;
    println!("\nPYRO-O plan:\n{}", plan.explain());

    // MRS (as planned).
    let mrs = run_pipeline(plan.compile(session.catalog())?, session.catalog())?;

    // SRS (partial sorts degraded to full sorts).
    let degraded = pyro_core::OptimizedPlan {
        root: degrade_partial_sorts(&plan.root),
        strategy: plan.strategy,
        ordered_output: plan.ordered_output,
        planning: plan.planning,
    };
    let srs = run_pipeline(degraded.compile(session.catalog())?, session.catalog())?;

    println!("\n             time(ms)   comparisons   spill pages");
    println!(
        "  SRS (full) {:9.1}  {:>12}  {:>12}",
        srs.ms(),
        srs.comparisons,
        srs.run_io
    );
    println!(
        "  MRS (part) {:9.1}  {:>12}  {:>12}",
        mrs.ms(),
        mrs.comparisons,
        mrs.run_io
    );
    println!(
        "\nspeedup: {:.2}x wall, {:.2}x comparisons   (paper: 3-4x wall)",
        srs.ms() / mrs.ms(),
        srs.comparisons as f64 / mrs.comparisons as f64
    );
    assert_eq!(srs.rows, mrs.rows);
    assert_eq!(mrs.run_io, 0, "MRS must avoid run I/O entirely here");
    assert!(srs.run_io > 0, "SRS must spill at this scale");
    Ok(())
}
