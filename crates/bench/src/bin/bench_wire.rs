//! `bench_wire` — throughput and latency of the TCP serving front door.
//!
//! Measures the full client → socket → admission → session → socket →
//! client path that `pyro serve` exposes, against an in-process
//! [`WireServer`] on a loopback socket:
//!
//! 1. **Parity** — the `bench_serve` four-query mix runs over the wire and
//!    directly on the session; every response must be *bit-identical*
//!    (compared on the wire encoding, so double bits count).
//! 2. **Point-query throughput** — N client connections each prepare the
//!    clustered-key point query once and hammer it with rotating keys (the
//!    compiler turns the equality on the clustering prefix into a
//!    binary-searched page range, so each request touches a handful of
//!    pages); per-request latency feeds the p50/p95/p99 histogram and the
//!    QPS headline.
//! 3. **Shedding** — a deliberately over-admitted gate must shed with the
//!    typed `ServerOverloaded` frame, and a tight row budget must cancel
//!    with `BudgetExceeded`; both leave their connections healthy.
//!
//! `--smoke` shrinks the data and asserts the contract; the full mode
//! writes `BENCH_wire.json`.

use pyro::datagen::tpch::{self, TpchConfig};
use pyro::{Session, SessionBuilder};
use pyro_bench::banner;
use pyro_common::{PyroError, Value};
use pyro_wire::{proto, AdmissionConfig, ServerConfig, WireClient, WireServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The same mix `bench_serve` serves in-process; over the wire it must
/// stay bit-identical to direct execution.
const MIX: [(&str, &str); 4] = [
    (
        "partial_sort",
        "SELECT l_suppkey, l_partkey FROM lineitem ORDER BY l_suppkey, l_partkey",
    ),
    (
        "filter_scan",
        "SELECT l_suppkey, l_partkey, l_quantity FROM lineitem WHERE l_linestatus = 'O'",
    ),
    (
        "join_agg",
        "SELECT ps_suppkey, ps_partkey, ps_availqty, count(l_partkey) AS n \
         FROM partsupp, lineitem \
         WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
         GROUP BY ps_suppkey, ps_partkey, ps_availqty \
         ORDER BY ps_suppkey, ps_partkey",
    ),
    (
        "point_lookup",
        "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_suppkey = 3 \
         ORDER BY l_orderkey, l_quantity",
    ),
];

/// The throughput phase's point query: a primary-key lookup on the
/// clustering order, prepared once per connection, bound per request. The
/// equality on `l_orderkey` seeks the clustered file instead of scanning
/// it (~4 matching rows per key).
const POINT: &str = "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = ? \
                     ORDER BY l_orderkey, l_quantity";

/// Latency histogram bucket upper bounds, microseconds (the last bucket is
/// open-ended).
const BUCKETS_US: [u64; 8] = [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000];

struct Args {
    smoke: bool,
    out_path: String,
    seed: u64,
    clients: usize,
    iters: usize,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Args {
        smoke,
        out_path: flag("--out").unwrap_or_else(|| "BENCH_wire.json".to_string()),
        seed: flag("--seed")
            .map(|s| s.parse().expect("--seed takes a u64"))
            .unwrap_or(pyro::datagen::SEED),
        clients: flag("--clients")
            .map(|s| s.parse().expect("--clients takes a usize"))
            .unwrap_or(4),
        iters: flag("--iters")
            .map(|s| s.parse().expect("--iters takes a usize"))
            .unwrap_or(if smoke { 200 } else { 2_000 }),
    }
}

/// The point query returns the ~4 lineitems of one order, so the
/// throughput phase measures serving overhead, not result volume.
fn data_config(smoke: bool) -> TpchConfig {
    if smoke {
        TpchConfig {
            lineitems: 6_000,
            parts: 400,
            suppliers: 200,
        }
    } else {
        TpchConfig {
            lineitems: 60_000,
            parts: 2_000,
            suppliers: 2_000,
        }
    }
}

fn build_session(cfg: TpchConfig, seed: u64) -> Arc<Session> {
    let mut session = SessionBuilder::new()
        .plan_cache_entries(256)
        .seed(seed)
        .build();
    tpch::load_with_seed(session.catalog_mut(), cfg, seed).unwrap();
    Arc::new(session)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

// --- phase 1: wire / direct parity on the full mix ---------------------

fn check_parity(session: &Arc<Session>, server: &WireServer) {
    let mut client = WireClient::connect(server.local_addr()).expect("parity connect");
    for (name, sql) in MIX {
        let direct = session.sql(sql).expect("direct run");
        let wire = client.query(sql).expect("wire run");
        assert_eq!(
            proto::enc_rows(&wire.rows),
            proto::enc_rows(direct.rows()),
            "{name}: wire rows must be bit-identical to direct execution"
        );
        assert_eq!(&wire.schema, direct.schema(), "{name}: schema parity");
    }
    println!(
        "parity    : {} queries bit-identical over the wire",
        MIX.len()
    );
}

// --- phase 2: point-query throughput -----------------------------------

struct Throughput {
    elapsed_ms: f64,
    queries: usize,
    qps: f64,
    latencies_us: Vec<u64>,
}

fn throughput(server: &WireServer, cfg: &TpchConfig, args: &Args) -> Throughput {
    let addr = server.local_addr();
    // The datagen assigns 4 lineitems per order, so orderkeys span
    // [0, lineitems/4).
    let orders = (cfg.lineitems / 4).max(1) as i64;
    let start = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let iters = args.iters;
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).expect("bench connect");
                let stmt = client.prepare(POINT).expect("prepare point query");
                let mut lat = Vec::with_capacity(iters);
                for i in 0..iters {
                    let key = ((c * 7919 + i * 13) as i64) % orders;
                    let t0 = Instant::now();
                    let out = client
                        .execute(stmt, &[Value::Int(key)])
                        .expect("point query");
                    lat.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(
                        out.total_rows,
                        out.rows.len() as u64,
                        "row count drift at key {key}"
                    );
                }
                client.bye().expect("bye");
                lat
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(args.clients * args.iters);
    for h in handles {
        latencies_us.extend(h.join().expect("bench client must not panic"));
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    latencies_us.sort_unstable();
    let queries = latencies_us.len();
    Throughput {
        elapsed_ms,
        queries,
        qps: queries as f64 / (elapsed_ms / 1e3),
        latencies_us,
    }
}

// --- phase 3: shedding + budgets under over-admission ------------------

struct Shedding {
    attempts: usize,
    shed: u64,
    budget_hits: usize,
}

fn shedding(session: &Arc<Session>, args: &Args) -> Shedding {
    // A gate this tight guarantees shedding under a concurrent storm: one
    // slot, no queue, and the bench itself occupies the slot.
    let server = WireServer::start(
        Arc::clone(session),
        ServerConfig {
            admission: AdmissionConfig {
                max_concurrent: 1,
                max_queue: 0,
                queue_timeout: Duration::from_millis(50),
            },
            max_rows_per_query: 10,
            ..ServerConfig::default()
        },
    )
    .expect("shed server");
    let addr = server.local_addr();
    let gate = server.admission();
    let held = gate.admit().expect("occupy the only slot");

    let attempts = args.clients.max(2) * 4;
    let handles: Vec<_> = (0..attempts)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).expect("shed connect");
                match client.query(MIX[3].1) {
                    Err(PyroError::ServerOverloaded(_)) => true,
                    Err(e) => panic!("expected a typed overload, got {e}"),
                    Ok(_) => false,
                }
            })
        })
        .collect();
    let mut typed_sheds = 0usize;
    for h in handles {
        if h.join().expect("shed client must not panic") {
            typed_sheds += 1;
        }
    }
    drop(held);
    assert_eq!(
        typed_sheds, attempts,
        "with the only slot held and no queue, every request must shed"
    );
    let shed = server.admission_stats().shed_queue_full;

    // Budgets: the full scan trips the 10-row budget with a typed error,
    // and the same connection then serves a query that fits.
    let mut client = WireClient::connect(addr).expect("budget connect");
    let e = client.query(MIX[0].1).expect_err("over the row budget");
    assert!(
        matches!(e, PyroError::BudgetExceeded(_)),
        "expected a typed budget error, got {e}"
    );
    let small = "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 1 \
                 ORDER BY l_orderkey, l_quantity";
    client
        .query(small)
        .expect("connection survives a budget cancellation");
    server.shutdown();
    println!(
        "shedding  : {typed_sheds}/{attempts} typed overloads (gate counted {shed}), \
         budget cancel + recovery ok"
    );
    Shedding {
        attempts,
        shed,
        budget_hits: 1,
    }
}

fn main() {
    let args = parse_args();
    let cfg = data_config(args.smoke);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    banner(&format!(
        "bench_wire  (mode={}, cpu_cores={cores}, clients={}, iters={}, lineitems={}, seed={:#x})",
        if args.smoke { "smoke" } else { "full" },
        args.clients,
        args.iters,
        cfg.lineitems,
        args.seed
    ));

    let session = build_session(cfg, args.seed);
    let server = WireServer::start(
        Arc::clone(&session),
        ServerConfig {
            conn_threads: args.clients.max(2),
            admission: AdmissionConfig {
                max_concurrent: cores.max(2),
                max_queue: 64,
                queue_timeout: Duration::from_secs(10),
            },
            ..ServerConfig::default()
        },
    )
    .expect("bench server");

    check_parity(&session, &server);

    // Warm the plan cache so the throughput phase measures serving, not
    // first-touch planning.
    {
        let mut warm = WireClient::connect(server.local_addr()).expect("warm connect");
        let stmt = warm.prepare(POINT).expect("warm prepare");
        warm.execute(stmt, &[Value::Int(1)]).expect("warm execute");
    }

    let t = throughput(&server, &cfg, &args);
    server.shutdown();
    let p50 = percentile(&t.latencies_us, 0.50);
    let p95 = percentile(&t.latencies_us, 0.95);
    let p99 = percentile(&t.latencies_us, 0.99);
    let max = t.latencies_us.last().copied().unwrap_or(0);
    println!(
        "throughput: {:>9.1} ms  {:>7.0} qps  ({} point queries, {} clients)",
        t.elapsed_ms, t.qps, t.queries, args.clients
    );
    println!("latency   : p50 {p50} us, p95 {p95} us, p99 {p99} us, max {max} us");
    let mut histogram = Vec::new();
    let mut lo = 0u64;
    let mut idx = 0usize;
    for &hi in BUCKETS_US.iter() {
        let end = t.latencies_us[idx..].partition_point(|&v| v < hi) + idx;
        histogram.push((format!("{lo}-{hi}us"), end - idx));
        idx = end;
        lo = hi;
    }
    histogram.push((format!(">={lo}us"), t.latencies_us.len() - idx));
    for (label, n) in &histogram {
        if *n > 0 {
            println!("            {label:>12}  {n}");
        }
    }

    let shed = shedding(&session, &args);

    if args.smoke {
        assert!(t.qps > 50.0, "smoke throughput collapsed: {:.0} qps", t.qps);
    }

    let hist_json = histogram
        .iter()
        .map(|(label, n)| format!("{{\"bucket\": \"{label}\", \"count\": {n}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"BENCH_wire\",\n  \"mode\": \"{}\",\n  \"cpu_cores\": {},\n  \"clients\": {},\n  \"iters_per_client\": {},\n  \"lineitems\": {},\n  \"suppliers\": {},\n  \"seed\": {},\n  \"parity\": true,\n  \"point_query\": {{\"elapsed_ms\": {:.3}, \"queries\": {}, \"qps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}},\n  \"latency_histogram\": [{}],\n  \"shedding\": {{\"attempts\": {}, \"shed_typed\": {}, \"budget_cancellations\": {}}}\n}}\n",
        if args.smoke { "smoke" } else { "full" },
        cores,
        args.clients,
        args.iters,
        cfg.lineitems,
        cfg.suppliers,
        args.seed,
        t.elapsed_ms,
        t.queries,
        t.qps,
        p50,
        p95,
        p99,
        max,
        hist_json,
        shed.attempts,
        shed.shed,
        shed.budget_hits,
    );
    std::fs::write(&args.out_path, &json).expect("write bench json");
    banner(&format!("wrote {}", args.out_path));
    println!("{json}");
}
