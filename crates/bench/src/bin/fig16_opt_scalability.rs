//! Figure 16: optimization time vs number of join attributes.
//!
//! Paper: two relations joined on 2–12 attributes; log-scale y. PYRO-P and
//! PYRO-O stay in the low milliseconds; PYRO-E blows up factorially. Our
//! PYRO-E is capped at 8 attributes (40 320 permutations) and falls back to
//! the Postgres heuristic above that, so its curve rises steeply to n = 8
//! and then flattens — the cap is printed so the series is honest.

use pyro_bench::banner;
use pyro_catalog::Catalog;
use pyro_common::{Schema, Tuple, Value};
use pyro_core::{JoinPair, LogicalPlan, Optimizer, Strategy};
use pyro_ordering::SortOrder;
use std::time::Instant;

fn catalog_with_width(attrs: usize) -> Catalog {
    let mut catalog = Catalog::new();
    let names: Vec<String> = (0..attrs).map(|i| format!("a{i:02}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows: Vec<Tuple> = (0..2000)
        .map(|r| {
            Tuple::new(
                (0..attrs)
                    .map(|c| Value::Int(((r * (c + 3)) % 97) as i64))
                    .collect(),
            )
        })
        .collect();
    let mut sorted = rows.clone();
    sorted.sort();
    // Cluster both tables on the first attribute so a favorable prefix
    // exists (otherwise PYRO-O degenerates to a single candidate).
    for t in ["t1", "t2"] {
        catalog
            .register_table(
                t,
                Schema::ints(&name_refs),
                SortOrder::new([names[0].clone()]),
                &sorted,
            )
            .unwrap();
    }
    catalog
}

fn join_plan(attrs: usize) -> LogicalPlan {
    let mut p = LogicalPlan::new();
    let l = p.scan_as("t1", "l");
    let r = p.scan_as("t2", "r");
    let pairs: Vec<JoinPair> = (0..attrs)
        .map(|i| JoinPair::new(format!("l.a{i:02}"), format!("r.a{i:02}")))
        .collect();
    p.join(l, r, pairs);
    p
}

fn main() {
    banner("Figure 16: optimization time vs number of join attributes");
    println!(
        "\n{:>6} {:>12} {:>12} {:>12}   (ms; PYRO-E capped at 8 attrs)",
        "attrs", "PYRO-P", "PYRO-O", "PYRO-E"
    );
    for attrs in 2..=12usize {
        let catalog = catalog_with_width(attrs);
        let logical = join_plan(attrs);
        let time_of = |strategy: Strategy| -> f64 {
            // Warm once, then take the best of 3 to de-noise.
            let _ = Optimizer::new(&catalog)
                .with_strategy(strategy)
                .optimize(&logical);
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let plan = Optimizer::new(&catalog)
                        .with_strategy(strategy)
                        .optimize(&logical)
                        .expect("plan");
                    std::hint::black_box(plan.cost());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let p = time_of(Strategy::pyro_p());
        let o = time_of(Strategy::pyro_o());
        let e = time_of(Strategy::pyro_e());
        println!("{attrs:>6} {p:>12.3} {o:>12.3} {e:>12.3}");
    }
    println!("\npaper shape: P and O flat in the single-digit ms; E factorial.");
}
