//! Figure 16: optimization time vs number of join attributes.
//!
//! Paper: two relations joined on 2–12 attributes; log-scale y. PYRO-P and
//! PYRO-O stay in the low milliseconds; PYRO-E blows up factorially. Our
//! PYRO-E is capped at 8 attributes (40 320 permutations) and falls back to
//! the Postgres heuristic above that, so its curve rises steeply to n = 8
//! and then flattens — the cap is printed so the series is honest.

use pyro_bench::banner;
use pyro_catalog::Catalog;
use pyro_common::{Schema, Tuple, Value};
use pyro_core::memo::EnumStrategy;
use pyro_core::{JoinPair, LogicalPlan, Optimizer, Strategy};
use pyro_ordering::SortOrder;
use std::time::Instant;

fn catalog_with_width(attrs: usize) -> Catalog {
    let mut catalog = Catalog::new();
    let names: Vec<String> = (0..attrs).map(|i| format!("a{i:02}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rows: Vec<Tuple> = (0..2000)
        .map(|r| {
            Tuple::new(
                (0..attrs)
                    .map(|c| Value::Int(((r * (c + 3)) % 97) as i64))
                    .collect(),
            )
        })
        .collect();
    let mut sorted = rows.clone();
    sorted.sort();
    // Cluster both tables on the first attribute so a favorable prefix
    // exists (otherwise PYRO-O degenerates to a single candidate).
    for t in ["t1", "t2"] {
        catalog
            .register_table(
                t,
                Schema::ints(&name_refs),
                SortOrder::new([names[0].clone()]),
                &sorted,
            )
            .unwrap();
    }
    catalog
}

fn join_plan(attrs: usize) -> LogicalPlan {
    let mut p = LogicalPlan::new();
    let l = p.scan_as("t1", "l");
    let r = p.scan_as("t2", "r");
    let pairs: Vec<JoinPair> = (0..attrs)
        .map(|i| JoinPair::new(format!("l.a{i:02}"), format!("r.a{i:02}")))
        .collect();
    p.join(l, r, pairs);
    p
}

fn main() {
    banner("Figure 16: optimization time vs number of join attributes");
    println!(
        "\n{:>6} {:>12} {:>12} {:>12}   (ms; PYRO-E capped at 8 attrs)",
        "attrs", "PYRO-P", "PYRO-O", "PYRO-E"
    );
    for attrs in 2..=12usize {
        let catalog = catalog_with_width(attrs);
        let logical = join_plan(attrs);
        let time_of = |strategy: Strategy| -> f64 {
            // Warm once, then take the best of 3 to de-noise.
            let _ = Optimizer::new(&catalog)
                .with_strategy(strategy)
                .optimize(&logical);
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let plan = Optimizer::new(&catalog)
                        .with_strategy(strategy)
                        .optimize(&logical)
                        .expect("plan");
                    std::hint::black_box(plan.cost());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let p = time_of(Strategy::pyro_p());
        let o = time_of(Strategy::pyro_o());
        let e = time_of(Strategy::pyro_e());
        println!("{attrs:>6} {p:>12.3} {o:>12.3} {e:>12.3}");
    }
    println!("\npaper shape: P and O flat in the single-digit ms; E factorial.");

    // Beyond the paper: the same sweep over plan *width* instead of join
    // *attributes* — an n-way chain join planned by each enumerator under
    // PYRO-O (see `bench_opt` for the full JSON-recorded version).
    println!(
        "\nn-way chain join, PYRO-O, per enumerator\n{:>6} {:>12} {:>12} {:>12}   (ms)",
        "tables", "exhaustive", "memo", "heuristic"
    );
    for n in [2usize, 4, 8, 12, 16, 20] {
        let (catalog, logical) = chain(n);
        let time_of = |enumerator: EnumStrategy| -> f64 {
            let _ = Optimizer::new(&catalog)
                .with_strategy(Strategy::pyro_o())
                .with_enum_strategy(enumerator)
                .optimize(&logical);
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    let plan = Optimizer::new(&catalog)
                        .with_strategy(Strategy::pyro_o())
                        .with_enum_strategy(enumerator)
                        .optimize(&logical)
                        .expect("plan");
                    std::hint::black_box(plan.cost());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let ex = time_of(EnumStrategy::Exhaustive);
        let memo = time_of(EnumStrategy::Memo);
        let heur = time_of(EnumStrategy::Heuristic);
        println!("{n:>6} {ex:>12.3} {memo:>12.3} {heur:>12.3}");
    }
    println!("\nall three stay in the low milliseconds out to 20 relations.");
}

/// n relations chained `t0 — t1 — … — t{n-1}` on shared link columns.
fn chain(n: usize) -> (Catalog, LogicalPlan) {
    let mut catalog = Catalog::new();
    for i in 0..n {
        let cols = [format!("x{i}"), format!("x{}", i + 1)];
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut rows: Vec<Tuple> = (0..500)
            .map(|r| {
                Tuple::new(vec![
                    Value::Int((r % 89) as i64),
                    Value::Int((r % 97) as i64),
                ])
            })
            .collect();
        rows.sort();
        catalog
            .register_table(
                &format!("t{i}"),
                Schema::ints(&col_refs),
                SortOrder::new([cols[0].clone()]),
                &rows,
            )
            .unwrap();
    }
    let mut plan = LogicalPlan::new();
    let mut cur = plan.scan_as("t0", "t0");
    for i in 1..n {
        let name = format!("t{i}");
        let next = plan.scan_as(&name, &name);
        let pair = JoinPair::new(format!("t{}.x{i}", i - 1), format!("t{i}.x{i}"));
        cur = plan.join(cur, next, vec![pair]);
    }
    (catalog, plan)
}
