//! Figure 8 / Experiment A2: rate of output — tuples produced vs time.
//!
//! Paper: with R(c1,c2,c3), 10 M rows, D(c1) = 10 000, an ORDER BY (c1, c2)
//! under MRS starts producing immediately and climbs linearly; SRS produces
//! its first tuple only after consuming (and spilling) the entire input.
//! We print both series plus the Top-K consequence (§3.1 benefit 2).

use pyro_bench::{banner, run_with_checkpoints};
use pyro_catalog::Catalog;
use pyro_common::KeySpec;
use pyro_datagen::rtables;
use pyro_exec::limit::Limit;
use pyro_exec::scan::FileScan;
use pyro_exec::sort::{PartialSort, SortBudget, StandardReplacementSort};
use pyro_exec::{BoxOp, ExecMetrics};
use std::time::Instant;

const ROWS: usize = 400_000; // paper: 10 M
const SEGMENTS: usize = 2_000; // paper: 10 000 distinct c1

fn scan(catalog: &Catalog) -> BoxOp {
    let handle = catalog.table("r").expect("registered");
    Box::new(FileScan::new(handle.meta.schema.qualify("r"), &handle.heap))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figure 8 / Experiment A2: rate of output (SRS vs MRS)");
    let mut catalog = Catalog::new();
    catalog.set_sort_memory_blocks(256);
    rtables::load(&mut catalog, "r", ROWS, SEGMENTS, 8)?;
    let key = KeySpec::new(vec![0, 1]);
    let budget = SortBudget::new(256, catalog.device().block_size());

    let mrs_op: BoxOp = Box::new(PartialSort::new(
        scan(&catalog),
        key.clone(),
        1,
        catalog.device().clone(),
        budget,
        ExecMetrics::new(),
    ));
    let (total, mrs_series) = run_with_checkpoints(mrs_op, ROWS / 10)?;
    println!("\nMRS series (tuples produced, elapsed ms):");
    for (n, t) in &mrs_series {
        println!("  {:>9}  {:>9.1}", n, t.as_secs_f64() * 1e3);
    }

    let srs_op: BoxOp = Box::new(StandardReplacementSort::new(
        scan(&catalog),
        key.clone(),
        catalog.device().clone(),
        budget,
        ExecMetrics::new(),
    ));
    let (_, srs_series) = run_with_checkpoints(srs_op, ROWS / 10)?;
    println!("\nSRS series (tuples produced, elapsed ms):");
    for (n, t) in &srs_series {
        println!("  {:>9}  {:>9.1}", n, t.as_secs_f64() * 1e3);
    }

    let first_mrs = mrs_series.first().expect("nonempty").1;
    let first_srs = srs_series.first().expect("nonempty").1;
    println!(
        "\ntime to first 10%: MRS {:.1} ms vs SRS {:.1} ms",
        first_mrs.as_secs_f64() * 1e3,
        first_srs.as_secs_f64() * 1e3
    );
    assert_eq!(total, ROWS);
    assert!(
        first_mrs < first_srs,
        "MRS must produce early output well before SRS"
    );

    // Top-K: fetch only the first 1000 tuples of the order.
    banner("Top-K consequence: LIMIT 1000 over the same sort");
    for (name, op) in [
        (
            "MRS",
            Box::new(PartialSort::new(
                scan(&catalog),
                key.clone(),
                1,
                catalog.device().clone(),
                budget,
                ExecMetrics::new(),
            )) as BoxOp,
        ),
        (
            "SRS",
            Box::new(StandardReplacementSort::new(
                scan(&catalog),
                key.clone(),
                catalog.device().clone(),
                budget,
                ExecMetrics::new(),
            )) as BoxOp,
        ),
    ] {
        let mut limited: BoxOp = Box::new(Limit::new(op, 1000));
        let start = Instant::now();
        let mut n = 0;
        while limited.next()?.is_some() {
            n += 1;
        }
        println!(
            "  {name}: first {n} tuples in {:.1} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }
    Ok(())
}
