//! Enumerator benchmark: planning time vs join count for the three plan
//! enumerators (`exhaustive`, `memo`, `heuristic`) on n-way chain and star
//! join plans, up to 20 relations.
//!
//! Two invariants are asserted on every run, on every machine:
//!
//! * **memo parity** — with the reorder threshold disabled, the memo
//!   enumerator's plan cost equals the exhaustive enumerator's on every
//!   size (the prefill is the same pure search, so ≤ is in fact =);
//! * **scalability** — the memo and heuristic enumerators plan the 20-way
//!   chain and star within a generous CI bound (the headline numbers in
//!   the JSON are single-digit milliseconds on an idle machine).
//!
//! ```bash
//! cargo run --release --bin bench_opt              # full → BENCH_opt.json
//! cargo run --release --bin bench_opt -- --smoke   # CI mode
//! cargo run --release --bin bench_opt -- --out out.json --rows 500
//! ```

use pyro_bench::banner;
use pyro_catalog::Catalog;
use pyro_common::{Schema, Tuple, Value};
use pyro_core::memo::EnumStrategy;
use pyro_core::{JoinPair, LogicalPlan, Optimizer, Strategy};
use pyro_ordering::SortOrder;

/// Planning-time bound (ms) the 20-way memo/heuristic runs must beat in
/// CI. Deliberately generous — the recorded numbers are the real claim.
const GATE_MS: f64 = 100.0;

struct Args {
    smoke: bool,
    out_path: String,
    rows: usize,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    Args {
        smoke,
        out_path: flag("--out").unwrap_or_else(|| "BENCH_opt.json".to_string()),
        rows: flag("--rows")
            .map(|s| s.parse().expect("--rows takes a usize"))
            .unwrap_or(if smoke { 200 } else { 1000 }),
    }
}

fn table_rows(width: usize, rows: usize, salt: usize) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = (0..rows)
        .map(|r| {
            Tuple::new(
                (0..width)
                    .map(|c| Value::Int(((r * (c + salt + 3)) % 97) as i64))
                    .collect(),
            )
        })
        .collect();
    out.sort();
    out
}

/// n relations in a chain: `t{i}` carries link columns `x{i}`, `x{i+1}`
/// and joins its successor on the shared `x{i+1}`.
fn chain(n: usize, rows: usize) -> (Catalog, LogicalPlan) {
    let mut catalog = Catalog::new();
    for i in 0..n {
        let cols = [format!("x{i}"), format!("x{}", i + 1)];
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        catalog
            .register_table(
                &format!("t{i}"),
                Schema::ints(&col_refs),
                SortOrder::new([cols[0].clone()]),
                &table_rows(2, rows, i),
            )
            .unwrap();
    }
    let mut plan = LogicalPlan::new();
    let mut cur = plan.scan_as("t0", "t0");
    for i in 1..n {
        let name = format!("t{i}");
        let next = plan.scan_as(&name, &name);
        let pair = JoinPair::new(format!("t{}.x{i}", i - 1), format!("t{i}.x{i}"));
        cur = plan.join(cur, next, vec![pair]);
    }
    (catalog, plan)
}

/// n relations in a star: hub `t0` carries one key column per satellite
/// and each satellite `t{i}` joins the hub on `k{i}`.
fn star(n: usize, rows: usize) -> (Catalog, LogicalPlan) {
    let mut catalog = Catalog::new();
    let hub_cols: Vec<String> = (1..n).map(|i| format!("k{i}")).collect();
    let hub_refs: Vec<&str> = hub_cols.iter().map(String::as_str).collect();
    catalog
        .register_table(
            "t0",
            Schema::ints(&hub_refs),
            SortOrder::new([hub_cols[0].clone()]),
            &table_rows(n - 1, rows, 0),
        )
        .unwrap();
    for i in 1..n {
        let cols = [format!("k{i}"), format!("s{i}")];
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        catalog
            .register_table(
                &format!("t{i}"),
                Schema::ints(&col_refs),
                SortOrder::new([cols[0].clone()]),
                &table_rows(2, rows, i),
            )
            .unwrap();
    }
    let mut plan = LogicalPlan::new();
    let mut cur = plan.scan_as("t0", "t0");
    for i in 1..n {
        let name = format!("t{i}");
        let next = plan.scan_as(&name, &name);
        let pair = JoinPair::new(format!("t0.k{i}"), format!("t{i}.k{i}"));
        cur = plan.join(cur, next, vec![pair]);
    }
    (catalog, plan)
}

struct Sample {
    plan_ms: f64,
    cost: f64,
    groups: u64,
    candidates: u64,
    reordered_joins: u64,
}

/// Warm once, then best-of-3 on the optimizer's own planning clock.
fn measure(catalog: &Catalog, plan: &LogicalPlan, enumerator: EnumStrategy) -> Sample {
    let optimize = || {
        Optimizer::new(catalog)
            .with_strategy(Strategy::pyro_o())
            .with_enum_strategy(enumerator)
            .with_join_enum_threshold(usize::MAX)
            .optimize(plan)
            .expect("plan")
    };
    let _ = optimize();
    let mut best: Option<Sample> = None;
    for _ in 0..3 {
        let out = optimize();
        let ms = out.planning.elapsed.as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|b| ms < b.plan_ms) {
            best = Some(Sample {
                plan_ms: ms,
                cost: out.cost(),
                groups: out.planning.groups,
                candidates: out.planning.candidates,
                reordered_joins: out.planning.reordered_joins,
            });
        }
    }
    best.unwrap()
}

fn sample_json(s: &Sample) -> String {
    format!(
        "{{\"plan_ms\": {:.3}, \"cost\": {:.1}, \"groups\": {}, \"candidates\": {}, \"reordered_joins\": {}}}",
        s.plan_ms, s.cost, s.groups, s.candidates, s.reordered_joins
    )
}

fn main() {
    let args = parse_args();
    banner("bench_opt: planning time vs join count, per enumerator");
    let sizes: &[usize] = if args.smoke {
        &[2, 4, 8, 20]
    } else {
        &[2, 3, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    };

    let mut shape_json = Vec::new();
    let mut gate_20way = Vec::new();
    for shape in ["chain", "star"] {
        println!(
            "\n{shape}\n{:>7} {:>12} {:>12} {:>12}   (plan ms, best of 3)",
            "tables", "exhaustive", "memo", "heuristic"
        );
        for &n in sizes {
            let (catalog, plan) = match shape {
                "chain" => chain(n, args.rows),
                _ => star(n, args.rows),
            };
            let ex = measure(&catalog, &plan, EnumStrategy::Exhaustive);
            let memo = measure(&catalog, &plan, EnumStrategy::Memo);
            let heur = measure(&catalog, &plan, EnumStrategy::Heuristic);
            println!(
                "{n:>7} {:>12.3} {:>12.3} {:>12.3}",
                ex.plan_ms, memo.plan_ms, heur.plan_ms
            );
            // Gate 1: memo parity. The memo prefill runs the same pure
            // search, so its cost can never exceed exhaustive (it is
            // equal whenever no reorder fires — and the threshold is
            // disabled here, so none does).
            assert!(
                memo.cost <= ex.cost,
                "{shape} n={n}: memo cost {} > exhaustive cost {}",
                memo.cost,
                ex.cost
            );
            assert_eq!(
                memo.cost, ex.cost,
                "{shape} n={n}: threshold disabled, costs must be identical"
            );
            if n == 20 {
                gate_20way.push((shape, "memo", memo.plan_ms));
                gate_20way.push((shape, "heuristic", heur.plan_ms));
            }
            shape_json.push(format!(
                "    {{\"shape\": \"{shape}\", \"tables\": {n}, \"joins\": {}, \
                 \"exhaustive\": {}, \"memo\": {}, \"heuristic\": {}}}",
                n - 1,
                sample_json(&ex),
                sample_json(&memo),
                sample_json(&heur)
            ));
        }
    }

    // Gate 2: the big plans stay cheap to plan.
    for (shape, enumerator, ms) in &gate_20way {
        assert!(
            *ms < GATE_MS,
            "{enumerator} planned the 20-way {shape} in {ms:.1} ms (gate {GATE_MS} ms)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"BENCH_opt\",\n  \"mode\": \"{}\",\n  \"strategy\": \"pyro-o\",\n  \"rows_per_table\": {},\n  \"gate_ms\": {GATE_MS},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        if args.smoke { "smoke" } else { "full" },
        args.rows,
        shape_json.join(",\n")
    );
    std::fs::write(&args.out_path, &json).expect("write JSON");
    println!("\nmemo cost == exhaustive cost on every size; 20-way gates under {GATE_MS} ms.");
    println!("wrote {}", args.out_path);
}
