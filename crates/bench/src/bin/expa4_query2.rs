//! Experiment A4: Query 2 (lineitems per (supplier, part)) — SRS vs MRS on
//! the same merge-join plan.
//!
//! Paper: 63 s with SRS vs 25 s with MRS on PostgreSQL (2.5×), identical
//! plan — a merge join of the two covering-index entry streams on
//! (suppkey, partkey) followed by a group aggregate. We reproduce exactly
//! that comparison via plan surgery: take the PYRO-O plan and degrade its
//! partial sorts into full sorts.

use pyro_bench::{banner, degrade_partial_sorts, plan_with, run_ops, sql_to_plan, QUERY2};
use pyro_catalog::Catalog;
use pyro_core::Strategy;
use pyro_datagen::tpch::{self, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Experiment A4: Query 2 with SRS vs MRS");
    let mut catalog = Catalog::new();
    catalog.set_sort_memory_blocks(64);
    tpch::load(&mut catalog, TpchConfig::scaled(0.05))?;

    let logical = sql_to_plan(&catalog, QUERY2)?;
    let plan = plan_with(&catalog, &logical, Strategy::pyro_o(), false)?;
    println!("\nplan (used by both runs, sort implementation swapped):\n{}", plan.explain());

    let (op, metrics) = plan.compile(&catalog)?;
    let mrs = run_ops(op, &metrics, &catalog)?;

    let degraded = pyro_core::OptimizedPlan {
        root: degrade_partial_sorts(&plan.root),
        strategy: plan.strategy,
    };
    let (op, metrics) = degraded.compile(&catalog)?;
    let srs = run_ops(op, &metrics, &catalog)?;

    println!("             time(ms)   comparisons   spill pages   rows");
    println!(
        "  SRS        {:9.1}  {:>12}  {:>12}  {:>6}",
        srs.ms(),
        srs.comparisons,
        srs.run_io,
        srs.rows
    );
    println!(
        "  MRS        {:9.1}  {:>12}  {:>12}  {:>6}",
        mrs.ms(),
        mrs.comparisons,
        mrs.run_io,
        mrs.rows
    );
    println!(
        "\nspeedup: {:.2}x wall   (paper: 63 s / 25 s = 2.5x)",
        srs.ms() / mrs.ms()
    );
    assert_eq!(srs.rows, mrs.rows);
    Ok(())
}
