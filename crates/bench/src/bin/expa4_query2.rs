//! Experiment A4: Query 2 (lineitems per (supplier, part)) — SRS vs MRS on
//! the same merge-join plan.
//!
//! Paper: 63 s with SRS vs 25 s with MRS on PostgreSQL (2.5×), identical
//! plan — a merge join of the two covering-index entry streams on
//! (suppkey, partkey) followed by a group aggregate. We reproduce exactly
//! that comparison via plan surgery: take the PYRO-O plan and degrade its
//! partial sorts into full sorts.

use pyro::Session;
use pyro_bench::{banner, degrade_partial_sorts, run_pipeline, QUERY2};
use pyro_datagen::tpch::{self, TpchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Experiment A4: Query 2 with SRS vs MRS");
    let mut session = Session::builder()
        .sort_memory_blocks(64)
        .hash_operators(false)
        .build();
    tpch::load(session.catalog_mut(), TpchConfig::scaled(0.05))?;

    let plan = session.plan(QUERY2)?;
    println!(
        "\nplan (used by both runs, sort implementation swapped):\n{}",
        plan.explain()
    );

    let mrs = run_pipeline(plan.compile(session.catalog())?, session.catalog())?;

    let degraded = pyro_core::OptimizedPlan {
        root: degrade_partial_sorts(&plan.root),
        strategy: plan.strategy,
        ordered_output: plan.ordered_output,
        planning: plan.planning,
    };
    let srs = run_pipeline(degraded.compile(session.catalog())?, session.catalog())?;

    println!("             time(ms)   comparisons   spill pages   rows");
    println!(
        "  SRS        {:9.1}  {:>12}  {:>12}  {:>6}",
        srs.ms(),
        srs.comparisons,
        srs.run_io,
        srs.rows
    );
    println!(
        "  MRS        {:9.1}  {:>12}  {:>12}  {:>6}",
        mrs.ms(),
        mrs.comparisons,
        mrs.run_io,
        mrs.rows
    );
    println!(
        "\nspeedup: {:.2}x wall   (paper: 63 s / 25 s = 2.5x)",
        srs.ms() / mrs.ms()
    );
    assert_eq!(srs.rows, mrs.rows);
    Ok(())
}
