//! §6.3: plan-refinement scalability — the 2-approximate tree algorithm on
//! trees of up to 31 join nodes with up to 10 attributes per node.
//!
//! Paper: "The execution of plan refinement phase took less than 6 ms even
//! for the tree with 31 nodes."

use pyro_bench::banner;
use pyro_ordering::{two_approx_tree_order, AttrSet, JoinTree};
use std::time::Instant;

/// Deterministic pseudo-random attribute sets drawn from a 20-attr pool.
fn build_tree(nodes: usize, attrs_per_node: usize, seed: u64) -> JoinTree {
    let mut state = seed;
    let mut next = move |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % m
    };
    let mut tree = JoinTree::new();
    let mut ids = Vec::new();
    for _ in 0..nodes {
        let set: AttrSet = (0..attrs_per_node)
            .map(|_| format!("a{:02}", next(20)))
            .collect();
        if ids.is_empty() {
            ids.push(tree.add_root(set));
        } else {
            let candidates: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&v| tree.children(v).len() < 2)
                .collect();
            let parent = candidates[next(candidates.len())];
            ids.push(tree.add_child(parent, set));
        }
    }
    tree
}

fn main() {
    banner("Plan refinement scalability (paper §6.3: < 6 ms at 31 nodes)");
    println!(
        "\n{:>8} {:>12} {:>12} {:>10}",
        "nodes", "attrs/node", "time (ms)", "benefit"
    );
    for &nodes in &[7usize, 15, 31, 63, 127] {
        for &attrs in &[4usize, 10] {
            let tree = build_tree(nodes, attrs, nodes as u64 * 31 + attrs as u64);
            let t = Instant::now();
            let sol = two_approx_tree_order(&tree);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            println!("{nodes:>8} {attrs:>12} {ms:>12.3} {:>10}", sol.benefit);
            if nodes <= 31 {
                assert!(
                    ms < 50.0,
                    "refinement must stay in the low milliseconds at paper scale"
                );
            }
        }
    }
}
