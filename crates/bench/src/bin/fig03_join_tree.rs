//! Figure 3: choosing globally optimal sort orders on a 7-node join tree.
//!
//! The paper's caption states the optimal total benefit is 8. We solve the
//! exact instance with the exhaustive tree solver (which must report 8) and
//! with the 2-approximation (which must report ≥ 4), printing the chosen
//! permutations.

use pyro_bench::banner;
use pyro_ordering::exhaustive::exhaustive_tree_order;
use pyro_ordering::{benefit_of, two_approx_tree_order, AttrSet, JoinTree};

fn s(attrs: &[&str]) -> AttrSet {
    AttrSet::from_iter(attrs.iter().copied())
}

fn main() {
    banner("Figure 3: optimal sort orders on the paper's example join tree");
    let mut tree = JoinTree::new();
    let root = tree.add_root(s(&["a", "b", "c", "d", "e"]));
    let left = tree.add_child(root, s(&["a", "b", "c", "k"]));
    let right = tree.add_child(root, s(&["c", "d", "h", "n"]));
    tree.add_child(left, s(&["c", "e", "i", "j"]));
    tree.add_child(left, s(&["c", "k", "l", "m"]));
    tree.add_child(right, s(&["c", "d"]));
    tree.add_child(right, s(&["f", "g", "p", "q"]));

    let exact = exhaustive_tree_order(&tree);
    println!(
        "\nexhaustive optimum benefit = {}   (paper: 8)",
        exact.benefit
    );
    for (i, order) in exact.orders.iter().enumerate() {
        println!("  node {i}: {order}");
    }
    assert_eq!(exact.benefit, 8, "must match the paper's optimum");

    let approx = two_approx_tree_order(&tree);
    println!(
        "\n2-approximation benefit = {} (parity: {} levels)   bound: ≥ {}",
        approx.benefit,
        approx.chosen_parity,
        exact.benefit / 2
    );
    for (i, order) in approx.orders.iter().enumerate() {
        println!("  node {i}: {order}");
    }
    assert!(2 * approx.benefit >= exact.benefit);
    assert_eq!(benefit_of(&tree, &approx.orders), approx.benefit);

    // The paper's hand-made solution, for reference.
    println!("\npaper's optimal assignment scores:");
    let paper = vec![
        pyro_ordering::SortOrder::new(["c", "d", "a", "b", "e"]),
        pyro_ordering::SortOrder::new(["c", "k", "a", "b"]),
        pyro_ordering::SortOrder::new(["c", "d", "h", "n"]),
        pyro_ordering::SortOrder::new(["c", "e", "i", "j"]),
        pyro_ordering::SortOrder::new(["c", "k", "l", "m"]),
        pyro_ordering::SortOrder::new(["c", "d"]),
        pyro_ordering::SortOrder::new(["f", "g", "p", "q"]),
    ];
    println!("  benefit = {}", benefit_of(&tree, &paper));
}
