//! Figure 15 / Experiment B3: normalized estimated plan costs for Queries
//! 3–6 under all five interesting-order strategies.
//!
//! Paper (log scale, PYRO-E = 100): PYRO worst everywhere; PYRO-O− in
//! between; PYRO-P near-optimal on Q3/Q4 (few join attributes) but clearly
//! worse on Q5/Q6 where its arbitrary *secondary* orders miss the favorable
//! prefixes; PYRO-O matches PYRO-E everywhere.
//!
//! The comparison runs in the paper's plan space (sort-based operators; the
//! PYRO prototype had no hash fallback — with one, every strategy converges
//! to the same hash plan and the experiment degenerates).

use pyro::{Session, Strategy};
use pyro_bench::{banner, QUERY3, QUERY4, QUERY5, QUERY6};
use pyro_datagen::{qtables, tpch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Figure 15 / Experiment B3: normalized plan costs (PYRO-E = 100)");
    let mut session = Session::builder()
        .sort_memory_blocks(64)
        .hash_operators(false)
        .build();
    tpch::load(session.catalog_mut(), tpch::TpchConfig::scaled(0.05))?;
    qtables::load_q4(session.catalog_mut(), 50_000)?;
    qtables::load_tran(session.catalog_mut(), 100_000)?;
    qtables::load_basket_analytics(session.catalog_mut(), 100_000)?;

    let queries = [
        ("Q3", QUERY3),
        ("Q4", QUERY4),
        ("Q5", QUERY5),
        ("Q6", QUERY6),
    ];
    let strategies = Strategy::all();

    print!("\n{:<10}", "query");
    for s in &strategies {
        print!("{:>10}", s.name());
    }
    println!();
    let mut all_normalized: Vec<Vec<f64>> = Vec::new();
    for (name, sql) in queries {
        let mut costs = Vec::with_capacity(strategies.len());
        for s in strategies {
            session.set_strategy(s);
            costs.push(session.plan(sql)?.cost());
        }
        let base = costs[4]; // PYRO-E
        let normalized: Vec<f64> = costs.iter().map(|c| 100.0 * c / base).collect();
        print!("{:<10}", name);
        for n in &normalized {
            print!("{:>10.1}", n);
        }
        println!();
        all_normalized.push(normalized);
    }
    println!("\n(paper, approximate readings from the log-scale chart:");
    println!("  Q3:  PYRO ~600  PYRO-O- ~300  PYRO-P ~105  PYRO-O 100  PYRO-E 100");
    println!("  Q4:  PYRO ~400  PYRO-O- ~200  PYRO-P ~110  PYRO-O 100  PYRO-E 100");
    println!("  Q5:  PYRO ~900  PYRO-O- ~400  PYRO-P ~300  PYRO-O 100  PYRO-E 100");
    println!("  Q6:  PYRO ~700  PYRO-O- ~350  PYRO-P ~250  PYRO-O 100  PYRO-E 100)");

    // Shape assertions: E is the floor; O matches E; PYRO is the worst.
    for row in &all_normalized {
        let (pyro, o_minus, _p, o, e) = (row[0], row[1], row[2], row[3], row[4]);
        assert!((e - 100.0).abs() < 1e-6);
        assert!(o <= pyro + 1e-6, "PYRO-O must beat plain PYRO");
        assert!(o <= o_minus + 1e-6, "partial sorts can only help");
        assert!(pyro >= 100.0 - 1e-6);
    }
    Ok(())
}
