//! Row-shim vs native-batch micro-benchmarks — the perf trajectory seed.
//!
//! Three pipelines, each executed twice from the same optimized plan: once
//! tuple-at-a-time through `Pipeline::run_tuple_at_a_time` (the classic
//! Volcano pull, kept as the A/B reference) and once batch-at-a-time
//! through `Pipeline::run` (the default engine path). The two paths must
//! produce identical `comparisons` and `run_io` counters — batching is a
//! CPU-efficiency change, not a semantics change — and the native path is
//! expected to be ≥ 1.5× faster on the scan→filter→project workload.
//!
//! A fourth section reruns the quickstart workload under a bounded buffer
//! pool: the cold run reads every heap page from the device, the warm
//! rerun must report `cache_hits > 0` and strictly fewer device reads
//! (asserted in every mode, `--smoke` included).
//!
//! ```bash
//! cargo run --release --bin bench_batch                  # 1M rows, writes BENCH_batch.json
//! cargo run --release --bin bench_batch -- --smoke       # small CI mode
//! cargo run --release --bin bench_batch -- --out out.json
//! ```

use pyro::core::PhysOp;
use pyro::Session;
use pyro_bench::{banner, workloads};
use std::time::Instant;

const BATCH_SIZE: usize = 1024;
const REPS: usize = 5;

#[derive(Debug, Clone)]
struct PathStats {
    elapsed_ms: f64,
    rows: usize,
    rows_per_sec: f64,
    comparisons: u64,
    run_io: u64,
}

impl PathStats {
    fn json(&self) -> String {
        format!(
            "{{\"elapsed_ms\": {:.3}, \"rows\": {}, \"rows_per_sec\": {:.0}, \"comparisons\": {}, \"run_io\": {}}}",
            self.elapsed_ms, self.rows, self.rows_per_sec, self.comparisons, self.run_io
        )
    }
}

/// Runs one timed execution of `sql` over a freshly compiled pipeline.
fn run_once(session: &Session, sql: &str, native_batch: bool) -> PathStats {
    let plan = session.plan(sql).expect("plan");
    let start = Instant::now();
    let out = if native_batch {
        plan.compile_with_batch(session.catalog(), BATCH_SIZE)
            .expect("compile")
            .run()
            .expect("run")
    } else {
        plan.compile(session.catalog())
            .expect("compile")
            .run_tuple_at_a_time()
            .expect("run")
    };
    let elapsed = start.elapsed().as_secs_f64();
    PathStats {
        elapsed_ms: elapsed * 1e3,
        rows: out.rows.len(),
        rows_per_sec: out.rows.len() as f64 / elapsed,
        comparisons: out.metrics.comparisons(),
        run_io: out.metrics.run_io(),
    }
}

/// Measures both paths with interleaved reps (row, native, row, native, …)
/// so slow machine-load drift hits both equally, and keeps each path's
/// fastest wall-clock rep (counters are identical across reps).
fn measure(session: &Session, sql: &str) -> (PathStats, PathStats) {
    let mut best: [Option<PathStats>; 2] = [None, None];
    for _ in 0..REPS {
        for (slot, native) in [(0usize, false), (1usize, true)] {
            let stats = run_once(session, sql, native);
            if best[slot]
                .as_ref()
                .is_none_or(|b| stats.elapsed_ms < b.elapsed_ms)
            {
                best[slot] = Some(stats);
            }
        }
    }
    let [row, native] = best;
    (row.expect("reps > 0"), native.expect("reps > 0"))
}

struct BenchResult {
    name: &'static str,
    rows_in: usize,
    row_shim: PathStats,
    native: PathStats,
}

impl BenchResult {
    fn speedup(&self) -> f64 {
        self.native.rows_per_sec / self.row_shim.rows_per_sec
    }

    fn json(&self) -> String {
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"input_rows\": {},\n      \"row_shim\": {},\n      \"native_batch\": {},\n      \"speedup\": {:.3}\n    }}",
            self.name,
            self.rows_in,
            self.row_shim.json(),
            self.native.json(),
            self.speedup()
        )
    }
}

fn run_bench(session: &Session, name: &'static str, rows_in: usize, sql: &str) -> BenchResult {
    banner(&format!("{name}  ({rows_in} input rows)"));
    let (row_shim, native) = measure(session, sql);
    assert_eq!(
        row_shim.rows, native.rows,
        "{name}: row counts diverged between paths"
    );
    assert_eq!(
        row_shim.comparisons, native.comparisons,
        "{name}: comparison counters diverged between paths"
    );
    assert_eq!(
        row_shim.run_io, native.run_io,
        "{name}: run-I/O counters diverged between paths"
    );
    let result = BenchResult {
        name,
        rows_in,
        row_shim,
        native,
    };
    println!(
        "row shim     : {:>10.1} ms  {:>12.0} rows/s",
        result.row_shim.elapsed_ms, result.row_shim.rows_per_sec
    );
    println!(
        "native batch : {:>10.1} ms  {:>12.0} rows/s",
        result.native.elapsed_ms, result.native.rows_per_sec
    );
    println!(
        "speedup      : {:>10.2}x   (comparisons {} / run_io {} on both paths)",
        result.speedup(),
        result.native.comparisons,
        result.native.run_io
    );
    result
}

/// One run's cache-facing stats under the bounded pool.
#[derive(Debug, Clone, Copy)]
struct PoolRunStats {
    elapsed_ms: f64,
    device_reads: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl PoolRunStats {
    fn json(&self) -> String {
        format!(
            "{{\"elapsed_ms\": {:.3}, \"device_reads\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            self.elapsed_ms, self.device_reads, self.cache_hits, self.cache_misses
        )
    }

    fn hit_rate(&self) -> f64 {
        pyro::storage::CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
            ..Default::default()
        }
        .hit_rate()
    }
}

fn run_pooled_once(session: &Session, sql: &str) -> PoolRunStats {
    let before = session.catalog().device().io();
    let start = Instant::now();
    let out = session.sql(sql).expect("pooled run");
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    PoolRunStats {
        elapsed_ms,
        device_reads: session.catalog().device().io().since(&before).reads,
        cache_hits: out.metrics().cache_hits(),
        cache_misses: out.metrics().cache_misses(),
    }
}

/// Cold run then warm rerun of the quickstart workload under a pool big
/// enough to hold the heap; asserts the warm run actually got warm.
fn run_pool_bench(n: usize, seed: u64, pool_pages: usize) -> String {
    banner(&format!(
        "buffer_pool warm rerun  ({n} input rows, {pool_pages}-page pool)"
    ));
    let (session, sql) = workloads::partial_sort_with_pool(n, seed, pool_pages);
    let cold = run_pooled_once(&session, sql);
    let warm = run_pooled_once(&session, sql);
    println!(
        "cold : {:>10.1} ms  {:>8} device reads  ({} misses, {} hits)",
        cold.elapsed_ms, cold.device_reads, cold.cache_misses, cold.cache_hits
    );
    println!(
        "warm : {:>10.1} ms  {:>8} device reads  ({} misses, {} hits, hit rate {:.2})",
        warm.elapsed_ms,
        warm.device_reads,
        warm.cache_misses,
        warm.cache_hits,
        warm.hit_rate()
    );
    assert!(
        warm.cache_hits > 0,
        "warm rerun under a bounded pool must hit the cache"
    );
    assert!(
        warm.device_reads < cold.device_reads,
        "warm rerun must read the device less: {} vs {}",
        warm.device_reads,
        cold.device_reads
    );
    format!(
        "  \"buffer_pool\": {{\n    \"pool_pages\": {},\n    \"cold\": {},\n    \"warm\": {},\n    \"warm_hit_rate\": {:.3}\n  }},",
        pool_pages,
        cold.json(),
        warm.json(),
        warm.hit_rate()
    )
}

/// Cold open then warm rerun of the quickstart workload on the durable
/// [`pyro::storage::FileDevice`]: register + checkpoint + drop, then
/// reopen the data directory so the cold run pays real file reads and the
/// warm rerun is served by the pool.
fn run_durable_bench(n: usize, seed: u64, pool_pages: usize) -> String {
    banner(&format!(
        "durable file-backed rerun  ({n} input rows, {pool_pages}-page pool)"
    ));
    let dir = std::env::temp_dir().join(format!("pyro_bench_durable_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale bench dir");
    }
    let sql = {
        let (session, sql) = workloads::partial_sort_durable(n, seed, pool_pages, &dir);
        session.checkpoint().expect("checkpoint");
        sql
    };
    let session = pyro::SessionBuilder::new()
        .data_dir(&dir)
        .buffer_pool_pages(pool_pages)
        .seed(seed)
        .open()
        .expect("reopen durable bench session");
    let cold = run_pooled_once(&session, sql);
    let warm = run_pooled_once(&session, sql);
    println!(
        "cold : {:>10.1} ms  {:>8} device reads  ({} misses, {} hits)",
        cold.elapsed_ms, cold.device_reads, cold.cache_misses, cold.cache_hits
    );
    println!(
        "warm : {:>10.1} ms  {:>8} device reads  ({} misses, {} hits, hit rate {:.2})",
        warm.elapsed_ms,
        warm.device_reads,
        warm.cache_misses,
        warm.cache_hits,
        warm.hit_rate()
    );
    assert!(
        cold.device_reads > 0,
        "the cold durable run must read the data file"
    );
    assert!(
        warm.cache_hits > 0 && warm.device_reads < cold.device_reads,
        "warm durable rerun must be served by the pool: {} hits, {} vs {} reads",
        warm.cache_hits,
        warm.device_reads,
        cold.device_reads
    );
    std::fs::remove_dir_all(&dir).expect("clean bench dir");
    format!(
        "  \"durable_file\": {{\n    \"pool_pages\": {},\n    \"cold\": {},\n    \"warm\": {},\n    \"warm_hit_rate\": {:.3}\n  }},",
        pool_pages,
        cold.json(),
        warm.json(),
        warm.hit_rate()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_batch.json".to_string());
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--seed takes a u64"))
        .unwrap_or(pyro::datagen::SEED);
    let n: usize = if smoke { 50_000 } else { 1_000_000 };

    let mut results = Vec::new();

    let (session, sql) = workloads::scan_filter_project(n, seed);
    let sfp = run_bench(&session, "scan_filter_project", n, sql);
    if smoke {
        // CI perf gate: the native batch path (columnar kernels) must not
        // run slower than the row shim on the vectorization showcase. The
        // margin absorbs shared-runner noise; real regressions are far
        // larger than 15%.
        assert!(
            sfp.speedup() >= 0.85,
            "perf gate: native batch fell below the row shim on \
             scan_filter_project ({:.3}x < 0.85x)",
            sfp.speedup()
        );
    }
    results.push(sfp);

    let (session, sql) = workloads::hash_join(n, seed);
    // The optimizer must actually have picked a hash join, or the numbers
    // would describe a different operator.
    let plan = session.plan(sql).expect("plan");
    assert!(
        plan.root
            .count_nodes(&|node| matches!(node.op, PhysOp::HashJoin { .. }))
            > 0,
        "hash_join bench plan lost its hash join:\n{}",
        plan.explain()
    );
    results.push(run_bench(&session, "hash_join", n, sql));

    let (session, sql) = workloads::partial_sort(n, seed);
    let result = run_bench(&session, "quickstart_partial_sort", n, sql);
    assert_eq!(
        result.native.run_io, 0,
        "quickstart invariant violated: partial sort must do zero run I/O"
    );
    assert!(result.native.comparisons > 0);
    results.push(result);

    // Bounded-pool warm rerun: sized to hold the whole events heap
    // (~20 B/row at 4 KB blocks → n/200 pages, rounded up generously).
    let pool_pages = (n / 100).max(256);
    let pool_json = run_pool_bench(n, seed, pool_pages);

    // The same workload off the durable FileDevice: cold reopen vs warm.
    let durable_json = run_durable_bench(n, seed, pool_pages);

    // Recorded so archived numbers can be normalized across machines.
    let cpu_cores = std::thread::available_parallelism().map_or(0, usize::from);
    let json = format!(
        "{{\n  \"bench\": \"BENCH_batch\",\n  \"mode\": \"{}\",\n  \"batch_size\": {},\n  \"reps\": {},\n  \"cpu_cores\": {},\n{}\n{}\n  \"benches\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        BATCH_SIZE,
        REPS,
        cpu_cores,
        pool_json,
        durable_json,
        results
            .iter()
            .map(BenchResult::json)
            .collect::<Vec<_>>()
            .join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    banner(&format!("wrote {out_path}"));
    println!("{json}");
}
