//! AST → logical plan lowering.
//!
//! Joins are built left-deep in `FROM` order (the paper's fixed-join-shape
//! setting); comma-joined tables take their equality pairs from `WHERE`,
//! explicit `FULL OUTER JOIN`s from their `ON` clauses. Single-table filters
//! are pushed below the joins. All column references are fully qualified
//! against the catalog so the optimizer's equivalence and favorable-order
//! machinery sees one consistent name space. Full qualification also
//! upholds the join-graph contract (`pyro_core::joingraph`): every
//! equi-join pair's columns resolve into exactly one leaf schema each, so
//! the optimizer's region extraction can attribute edges and — above the
//! session's `join_enum_threshold` — reorder the left-deep tree this
//! lowering produced.

use crate::ast::{Query, SelectItem, SqlExpr, TableRef};
use pyro_catalog::Catalog;
use pyro_common::{DataType, PyroError, Result};
use pyro_core::{AggSpec, JoinPair, LogicalPlan, NExpr, NodeId, ProjItem};
use pyro_exec::agg::AggFunc;
use pyro_exec::join::JoinKind;
use pyro_exec::CmpOp;
use pyro_ordering::SortOrder;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// What the lowerer learned about a statement's `?` placeholders: one slot
/// per parameter, in placeholder order. A slot holds the [`DataType`] the
/// query's use of that placeholder implies (it is compared against a base
/// column of that type), or `None` when the usage does not pin a type —
/// execution then accepts any value there.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamInfo {
    /// Expected type per placeholder, indexed by placeholder number.
    pub types: Vec<Option<DataType>>,
}

impl ParamInfo {
    /// Number of `?` placeholders in the statement.
    pub fn count(&self) -> usize {
        self.types.len()
    }
}

/// Lowers a parsed query against a catalog.
pub fn lower(q: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    Ok(lower_with_params(q, catalog)?.0)
}

/// Lowers a parsed query, also returning what was learned about its `?`
/// placeholders (count and expected types) for prepared-statement binding.
pub fn lower_with_params(q: &Query, catalog: &Catalog) -> Result<(LogicalPlan, ParamInfo)> {
    let mut lowerer = Lowerer::new(catalog)?;
    let plan = lowerer.lower(q)?;
    Ok((
        plan,
        ParamInfo {
            types: lowerer.param_types.into_inner(),
        },
    ))
}

/// Parses and lowers in one step — the frontend's front door, so callers
/// never juggle the intermediate [`Query`] AST.
pub fn plan(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    lower(&crate::parse_query(sql)?, catalog)
}

/// Parses and lowers in one step, returning the placeholder facts alongside
/// the plan — what `Session::prepare` builds on.
pub fn plan_with_params(sql: &str, catalog: &Catalog) -> Result<(LogicalPlan, ParamInfo)> {
    lower_with_params(&crate::parse_query(sql)?, catalog)
}

struct Lowerer<'a> {
    catalog: &'a Catalog,
    /// alias → bare column names, in scope order.
    scopes: BTreeMap<String, Vec<String>>,
    /// Qualified column name → declared type, for placeholder inference.
    col_types: BTreeMap<String, DataType>,
    /// Expected type per `?` placeholder, grown as placeholders are seen.
    /// `RefCell` because inference happens inside the `&self` expression
    /// walk.
    param_types: RefCell<Vec<Option<DataType>>>,
}

impl<'a> Lowerer<'a> {
    fn new(catalog: &'a Catalog) -> Result<Self> {
        Ok(Lowerer {
            catalog,
            scopes: BTreeMap::new(),
            col_types: BTreeMap::new(),
            param_types: RefCell::new(Vec::new()),
        })
    }

    /// Ensures the parameter table covers placeholder `i`.
    fn note_param(&self, i: usize) {
        let mut types = self.param_types.borrow_mut();
        if types.len() <= i {
            types.resize(i + 1, None);
        }
    }

    /// If `a` is a placeholder compared against base column `b`, records the
    /// column's type as the placeholder's expected type (first use wins; a
    /// later conflicting use leaves the earlier, stricter expectation).
    fn infer_param_type(&self, a: &NExpr, b: &NExpr) {
        if let (NExpr::Param(i), NExpr::Col(c)) = (a, b) {
            if let Some(ty) = self.col_types.get(c) {
                let mut types = self.param_types.borrow_mut();
                if types[*i].is_none() {
                    types[*i] = Some(*ty);
                }
            }
        }
    }

    /// Qualifies a possibly-bare column name against the aliases in scope.
    fn qualify(&self, name: &str) -> Result<String> {
        if let Some((alias, bare)) = name.split_once('.') {
            if self
                .scopes
                .get(alias)
                .is_some_and(|cols| cols.iter().any(|c| c == bare))
            {
                return Ok(format!("{alias}.{bare}"));
            }
            return Err(PyroError::UnknownColumn(name.to_string()));
        }
        let hits: Vec<String> = self
            .scopes
            .iter()
            .filter(|(_, cols)| cols.iter().any(|c| c == name))
            .map(|(alias, _)| format!("{alias}.{name}"))
            .collect();
        match hits.as_slice() {
            [one] => Ok(one.clone()),
            [] => Err(PyroError::UnknownColumn(name.to_string())),
            _ => Err(PyroError::AmbiguousColumn(name.to_string())),
        }
    }

    /// True iff the qualified column belongs to `alias`.
    fn belongs_to(col: &str, alias: &str) -> bool {
        col.split_once('.').is_some_and(|(a, _)| a == alias)
    }

    fn lower(&mut self, q: &Query) -> Result<LogicalPlan> {
        if q.from.is_empty() {
            return Err(PyroError::Sql("FROM clause required".into()));
        }
        // Placeholders are predicate-side only: a `?` in the SELECT list
        // (or an aggregate argument) would shape the *result schema*, whose
        // column types must be fixed at prepare time while a placeholder's
        // type is only known at bind time.
        for item in &q.select {
            if matches!(item, SelectItem::Expr(e, _) if e.has_param()) {
                return Err(PyroError::Unsupported(
                    "? placeholder in the SELECT list (a parameter cannot shape the \
                     result schema; bind parameters in WHERE / HAVING / ON predicates)"
                        .into(),
                ));
            }
        }
        // Register scopes up front so WHERE names can be qualified.
        for t in &q.from {
            let handle = self.catalog.table(&t.table)?;
            for col in handle.meta.schema.columns() {
                self.col_types
                    .insert(format!("{}.{}", t.alias, col.name), col.ty);
            }
            self.scopes
                .insert(t.alias.clone(), handle.meta.schema.names());
        }

        // Split WHERE into join pairs (col = col across tables),
        // single-table filters, and residual conditions.
        let mut join_equalities: Vec<(String, String)> = Vec::new();
        let mut table_filters: BTreeMap<String, Vec<NExpr>> = BTreeMap::new();
        let mut residual: Vec<NExpr> = Vec::new();
        for conj in &q.where_conjuncts {
            match conj {
                SqlExpr::Cmp(CmpOp::Eq, a, b) => {
                    if let (SqlExpr::Col(ca), SqlExpr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                        let (qa, qb) = (self.qualify(ca)?, self.qualify(cb)?);
                        let (aa, ab) = (
                            qa.split_once('.').expect("qualified").0.to_string(),
                            qb.split_once('.').expect("qualified").0.to_string(),
                        );
                        if aa != ab {
                            join_equalities.push((qa, qb));
                            continue;
                        }
                    }
                    self.classify_filter(conj, &mut table_filters, &mut residual)?;
                }
                _ => self.classify_filter(conj, &mut table_filters, &mut residual)?,
            }
        }

        // Build scans with pushed-down filters, then join left-deep.
        let mut plan = LogicalPlan::new();
        let mut current: Option<(NodeId, Vec<String>)> = None; // (node, aliases in scope)
        for t in &q.from {
            let mut node = plan.scan_as(&t.table, &t.alias);
            if let Some(filters) = table_filters.remove(&t.alias) {
                node = plan.filter(node, NExpr::And(filters));
            }
            current = Some(match current {
                None => (node, vec![t.alias.clone()]),
                Some((left, mut aliases)) => {
                    let (kind, pairs) = self.join_spec(t, &aliases, &mut join_equalities)?;
                    if pairs.is_empty() {
                        return Err(PyroError::Sql(format!(
                            "no join condition links table {} to the preceding tables",
                            t.alias
                        )));
                    }
                    let j = plan.join_kind(left, node, kind, pairs);
                    aliases.push(t.alias.clone());
                    (j, aliases)
                }
            });
        }
        let (mut node, _) = current.expect("at least one table");
        if !join_equalities.is_empty() {
            return Err(PyroError::Sql(format!(
                "unplaced join equalities: {join_equalities:?}"
            )));
        }
        if !residual.is_empty() {
            node = plan.filter(node, NExpr::And(residual));
        }

        // Aggregation.
        let select_has_agg = q
            .select
            .iter()
            .any(|s| matches!(s, SelectItem::Expr(e, _) if e.has_agg()));
        let mut agg_specs: Vec<AggSpec> = Vec::new();
        let mut select_items: Vec<ProjItem> = Vec::new();
        if !q.group_by.is_empty() || select_has_agg {
            // Collect aggregates from SELECT and HAVING.
            for (i, item) in q.select.iter().enumerate() {
                match item {
                    SelectItem::Star => {
                        return Err(PyroError::Sql(
                            "SELECT * cannot be combined with GROUP BY".into(),
                        ))
                    }
                    SelectItem::Expr(e, alias) => {
                        let lowered = self.lower_scalar(e, &mut agg_specs, alias.as_deref())?;
                        // Pass-through columns keep their qualified names so
                        // sort orders survive the projection; aggregates use
                        // their (possibly synthesized) output name.
                        let name = match (&lowered, alias) {
                            (_, Some(a)) => a.clone(),
                            (NExpr::Col(c), None) => c.clone(),
                            (_, None) => format!("expr{i}"),
                        };
                        select_items.push(ProjItem {
                            expr: lowered,
                            name,
                        });
                    }
                }
            }
            let group_cols: Vec<String> = q
                .group_by
                .iter()
                .map(|g| self.qualify(g))
                .collect::<Result<_>>()?;
            let mut having_expr = None;
            if let Some(h) = &q.having {
                having_expr = Some(self.lower_scalar(h, &mut agg_specs, None)?);
            }
            node = plan.aggregate(node, group_cols, agg_specs);
            if let Some(h) = having_expr {
                node = plan.filter(node, h);
            }
            node = plan.project(node, select_items);
        } else {
            // Plain projection (or SELECT *).
            let star = q.select.iter().any(|s| matches!(s, SelectItem::Star));
            if !star {
                for (i, item) in q.select.iter().enumerate() {
                    if let SelectItem::Expr(e, alias) = item {
                        let mut no_aggs = Vec::new();
                        let lowered = self.lower_scalar(e, &mut no_aggs, None)?;
                        if !no_aggs.is_empty() {
                            return Err(PyroError::Sql(
                                "aggregate without GROUP BY not supported".into(),
                            ));
                        }
                        // Preserve qualified names for pass-through columns
                        // so sort orders survive the projection.
                        let name = match (&lowered, alias) {
                            (_, Some(a)) => a.clone(),
                            (NExpr::Col(c), None) => c.clone(),
                            (_, None) => format!("expr{i}"),
                        };
                        select_items.push(ProjItem {
                            expr: lowered,
                            name,
                        });
                    }
                }
                node = plan.project(node, select_items);
            }
        }

        // DISTINCT applies to the projected output.
        if q.distinct {
            node = plan.distinct(node);
        }

        // ORDER BY.
        if !q.order_by.is_empty() {
            let attrs: Vec<String> = q
                .order_by
                .iter()
                .map(|c| {
                    // agg/select aliases take precedence over base columns
                    self.qualify(c).or_else(|_| Ok(c.clone()))
                })
                .collect::<Result<_>>()?;
            node = plan.order_by(node, SortOrder::new(attrs));
        }
        if let Some(k) = q.limit {
            node = plan.limit(node, k);
        }
        plan.set_root(node);
        Ok(plan)
    }

    fn classify_filter(
        &self,
        conj: &SqlExpr,
        table_filters: &mut BTreeMap<String, Vec<NExpr>>,
        residual: &mut Vec<NExpr>,
    ) -> Result<()> {
        let mut aggs = Vec::new();
        let lowered = self.lower_scalar(conj, &mut aggs, None)?;
        if !aggs.is_empty() {
            return Err(PyroError::Sql("aggregate in WHERE".into()));
        }
        let mut cols = Vec::new();
        lowered.columns(&mut cols);
        let mut aliases: Vec<&str> = cols.iter().filter_map(|c| c.split('.').next()).collect();
        aliases.sort_unstable();
        aliases.dedup();
        match aliases.as_slice() {
            [one] => table_filters
                .entry(one.to_string())
                .or_default()
                .push(lowered),
            _ => residual.push(lowered),
        }
        Ok(())
    }

    /// Lowers a scalar expression; aggregate calls are pulled out into
    /// `agg_specs` and replaced by column references to their outputs.
    fn lower_scalar(
        &self,
        e: &SqlExpr,
        agg_specs: &mut Vec<AggSpec>,
        preferred_name: Option<&str>,
    ) -> Result<NExpr> {
        Ok(match e {
            SqlExpr::Col(c) => match self.qualify(c) {
                Ok(q) => NExpr::Col(q),
                // HAVING/ORDER BY may reference a SELECT aggregate alias.
                Err(e) if agg_specs.iter().any(|a| &a.name == c) => {
                    let _ = e;
                    NExpr::Col(c.clone())
                }
                Err(e) => return Err(e),
            },
            SqlExpr::Lit(v) => NExpr::Lit(v.clone()),
            SqlExpr::Param(i) => {
                self.note_param(*i);
                NExpr::Param(*i)
            }
            SqlExpr::CountStar => {
                self.register_agg(AggFunc::Count, NExpr::lit(1i64), agg_specs, preferred_name)
            }
            SqlExpr::Agg(f, arg) => {
                let mut inner_aggs = Vec::new();
                let arg = self.lower_scalar(arg, &mut inner_aggs, None)?;
                if !inner_aggs.is_empty() {
                    return Err(PyroError::Sql("nested aggregates".into()));
                }
                self.register_agg(*f, arg, agg_specs, preferred_name)
            }
            SqlExpr::Cmp(op, a, b) => {
                let la = self.lower_scalar(a, agg_specs, None)?;
                let lb = self.lower_scalar(b, agg_specs, None)?;
                // `col <op> ?` (either way round) pins the placeholder's
                // expected type to the column's declared type.
                self.infer_param_type(&la, &lb);
                self.infer_param_type(&lb, &la);
                NExpr::Cmp(*op, Box::new(la), Box::new(lb))
            }
            SqlExpr::And(terms) => NExpr::And(
                terms
                    .iter()
                    .map(|t| self.lower_scalar(t, agg_specs, None))
                    .collect::<Result<_>>()?,
            ),
            SqlExpr::Mul(a, b) => NExpr::Mul(
                Box::new(self.lower_scalar(a, agg_specs, None)?),
                Box::new(self.lower_scalar(b, agg_specs, None)?),
            ),
            SqlExpr::Add(a, b) => NExpr::Add(
                Box::new(self.lower_scalar(a, agg_specs, None)?),
                Box::new(self.lower_scalar(b, agg_specs, None)?),
            ),
            SqlExpr::Sub(a, b) => NExpr::Sub(
                Box::new(self.lower_scalar(a, agg_specs, None)?),
                Box::new(self.lower_scalar(b, agg_specs, None)?),
            ),
        })
    }

    fn register_agg(
        &self,
        func: AggFunc,
        arg: NExpr,
        agg_specs: &mut Vec<AggSpec>,
        preferred_name: Option<&str>,
    ) -> NExpr {
        // Reuse a structurally identical aggregate (HAVING referencing the
        // same sum as SELECT).
        if let Some(existing) = agg_specs.iter().find(|a| a.func == func && a.arg == arg) {
            return NExpr::Col(existing.name.clone());
        }
        let name = preferred_name
            .map(str::to_string)
            .unwrap_or_else(|| format!("agg{}", agg_specs.len()));
        agg_specs.push(AggSpec {
            func,
            arg,
            name: name.clone(),
        });
        NExpr::Col(name)
    }

    /// Consumes the join condition linking `t` to the tables in
    /// `left_aliases`.
    fn join_spec(
        &self,
        t: &TableRef,
        left_aliases: &[String],
        pool: &mut Vec<(String, String)>,
    ) -> Result<(JoinKind, Vec<JoinPair>)> {
        let mut pairs = Vec::new();
        if let Some(on) = &t.full_outer_on {
            for conj in flatten(on) {
                let SqlExpr::Cmp(CmpOp::Eq, a, b) = conj else {
                    return Err(PyroError::Sql(
                        "ON clause must be equality conjuncts".into(),
                    ));
                };
                let (SqlExpr::Col(ca), SqlExpr::Col(cb)) = (a.as_ref(), b.as_ref()) else {
                    return Err(PyroError::Sql("ON clause must compare columns".into()));
                };
                let (qa, qb) = (self.qualify(ca)?, self.qualify(cb)?);
                // Normalize sides: left column first.
                if Self::belongs_to(&qa, &t.alias) {
                    pairs.push(JoinPair::new(qb, qa));
                } else {
                    pairs.push(JoinPair::new(qa, qb));
                }
            }
            return Ok((JoinKind::FullOuter, pairs));
        }
        // Comma join: take matching equalities from the WHERE pool.
        pool.retain(|(qa, qb)| {
            let a_new = Self::belongs_to(qa, &t.alias);
            let b_new = Self::belongs_to(qb, &t.alias);
            let a_old = left_aliases.iter().any(|al| Self::belongs_to(qa, al));
            let b_old = left_aliases.iter().any(|al| Self::belongs_to(qb, al));
            if a_old && b_new {
                pairs.push(JoinPair::new(qa.clone(), qb.clone()));
                false
            } else if b_old && a_new {
                pairs.push(JoinPair::new(qb.clone(), qa.clone()));
                false
            } else {
                true
            }
        });
        Ok((JoinKind::Inner, pairs))
    }
}

fn flatten(e: &SqlExpr) -> Vec<&SqlExpr> {
    match e {
        SqlExpr::And(terms) => terms.iter().flat_map(flatten).collect(),
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use pyro_common::{Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i % 3)]))
            .collect();
        cat.register_table(
            "t1",
            Schema::ints(&["a", "b", "c"]),
            SortOrder::new(["a"]),
            &rows,
        )
        .unwrap();
        cat.register_table(
            "t2",
            Schema::ints(&["a", "d", "e"]),
            SortOrder::new(["a"]),
            &rows,
        )
        .unwrap();
        cat
    }

    #[test]
    fn lowers_simple_select() {
        let cat = catalog();
        let q = parse_query("SELECT a, b FROM t1 ORDER BY a").unwrap();
        let plan = lower(&q, &cat).unwrap();
        assert!(plan.len() >= 3); // scan, project, sort
    }

    #[test]
    fn lowers_join_from_where() {
        let cat = catalog();
        let q = parse_query("SELECT * FROM t1, t2 WHERE t1.a = t2.a AND b > 3").unwrap();
        let plan = lower(&q, &cat).unwrap();
        // scan t1, filter (b>3 pushed), scan t2, join
        let mut has_join = false;
        for id in 0..plan.len() {
            if matches!(plan.node(id), pyro_core::logical::LogicalOp::Join { pairs, .. } if pairs.len() == 1)
            {
                has_join = true;
            }
        }
        assert!(has_join);
    }

    #[test]
    fn lowers_aggregate_with_having() {
        let cat = catalog();
        let q = parse_query(
            "SELECT b, sum(a) AS total FROM t1 GROUP BY b HAVING sum(a) > 100 ORDER BY b",
        )
        .unwrap();
        let plan = lower(&q, &cat).unwrap();
        // HAVING's sum(a) reuses SELECT's aggregate.
        let mut agg_count = 0;
        for id in 0..plan.len() {
            if let pyro_core::logical::LogicalOp::Aggregate { aggs, .. } = plan.node(id) {
                agg_count = aggs.len();
            }
        }
        assert_eq!(agg_count, 1, "HAVING must reuse the SELECT aggregate");
    }

    #[test]
    fn missing_join_condition_rejected() {
        let cat = catalog();
        let q = parse_query("SELECT * FROM t1, t2").unwrap();
        assert!(lower(&q, &cat).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let cat = catalog();
        let q = parse_query("SELECT zz FROM t1").unwrap();
        assert!(lower(&q, &cat).is_err());
    }

    #[test]
    fn ambiguous_column_rejected() {
        let cat = catalog();
        let q = parse_query("SELECT a FROM t1, t2 WHERE t1.a = t2.a").unwrap();
        assert!(matches!(
            lower(&q, &cat),
            Err(PyroError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn full_outer_join_lowering() {
        let cat = catalog();
        let q = parse_query("SELECT * FROM t1 FULL OUTER JOIN t2 ON (t1.a = t2.a AND t1.b = t2.d)")
            .unwrap();
        let plan = lower(&q, &cat).unwrap();
        let mut found = false;
        for id in 0..plan.len() {
            if let pyro_core::logical::LogicalOp::Join { kind, pairs, .. } = plan.node(id) {
                assert_eq!(*kind, JoinKind::FullOuter);
                assert_eq!(pairs.len(), 2);
                assert!(pairs.iter().all(|p| p.left.starts_with("t1.")));
                found = true;
            }
        }
        assert!(found);
    }
}
