//! Recursive-descent parser.

use crate::ast::{Query, SelectItem, SqlExpr, TableRef};
use crate::lexer::{tokenize, Token};
use pyro_common::{PyroError, Result, Value};
use pyro_exec::agg::AggFunc;
use pyro_exec::CmpOp;

/// Parses one SELECT query.
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> PyroError {
        PyroError::Sql(format!(
            "{msg} (at token {} = {:?})",
            self.pos,
            self.tokens.get(self.pos)
        ))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {}", kw.to_uppercase())))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    /// Possibly-qualified column name.
    fn column_name(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let second = self.ident()?;
            Ok(format!("{first}.{second}"))
        } else {
            Ok(first)
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut select = Vec::new();
        loop {
            if self.eat_symbol("*") {
                select.push(SelectItem::Star);
            } else {
                let e = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                select.push(SelectItem::Expr(e, alias));
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        from.push(self.table_ref(None)?);
        loop {
            if self.eat_symbol(",") {
                from.push(self.table_ref(None)?);
            } else if self.peek_kw("full") {
                self.expect_kw("full")?;
                self.expect_kw("outer")?;
                self.expect_kw("join")?;
                let mut t = self.table_ref(None)?;
                self.expect_kw("on")?;
                // Parenthesized ON conditions are handled by `comparison`.
                let cond = self.condition()?;
                t.full_outer_on = Some(cond);
                from.push(t);
            } else {
                break;
            }
        }
        let where_conjuncts = if self.eat_kw("where") {
            flatten_and(self.condition()?)
        } else {
            Vec::new()
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.column_name()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.condition()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                order_by.push(self.column_name()?);
                // Explicit ASC is the default and accepted; DESC is a typed
                // error — the engine implements the paper's ascending-only
                // order machinery, and silently returning ascending rows
                // for a DESC query would be silently wrong results.
                self.eat_kw("asc");
                if self.peek_kw("desc") {
                    return Err(PyroError::Unsupported(
                        "ORDER BY ... DESC (only ascending orders are implemented; \
                         drop DESC or sort client-side)"
                            .into(),
                    ));
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.peek().cloned() {
                Some(Token::Int(v)) if v >= 0 => {
                    self.pos += 1;
                    Some(v as u64)
                }
                _ => return Err(self.err("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            where_conjuncts,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self, on: Option<SqlExpr>) -> Result<TableRef> {
        let table = self.ident()?;
        // Optional alias: a bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if ![
                    "where", "group", "having", "order", "full", "on", "join", "inner", "left",
                    "as", "limit",
                ]
                .contains(&s.as_str()) =>
            {
                self.ident()?
            }
            _ => table.clone(),
        };
        Ok(TableRef {
            table,
            alias,
            full_outer_on: on,
        })
    }

    /// Boolean condition: conjunction of comparisons.
    fn condition(&mut self) -> Result<SqlExpr> {
        let mut terms = vec![self.comparison()?];
        while self.eat_kw("and") {
            terms.push(self.comparison()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one")
        } else {
            SqlExpr::And(terms)
        })
    }

    fn comparison(&mut self) -> Result<SqlExpr> {
        // allow parenthesized sub-conjunctions
        if self.eat_symbol("(") {
            let inner = self.condition()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        let left = self.expr()?;
        let op = if self.eat_symbol("=") {
            CmpOp::Eq
        } else if self.eat_symbol("<>") {
            CmpOp::Ne
        } else if self.eat_symbol("<=") {
            CmpOp::Le
        } else if self.eat_symbol(">=") {
            CmpOp::Ge
        } else if self.eat_symbol("<") {
            CmpOp::Lt
        } else if self.eat_symbol(">") {
            CmpOp::Gt
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let right = self.expr()?;
        Ok(SqlExpr::Cmp(op, Box::new(left), Box::new(right)))
    }

    /// Arithmetic expression: term (('+' | '-') term)*.
    fn expr(&mut self) -> Result<SqlExpr> {
        let mut e = self.term()?;
        loop {
            if self.eat_symbol("+") {
                e = SqlExpr::Add(Box::new(e), Box::new(self.term()?));
            } else if self.eat_symbol("-") {
                e = SqlExpr::Sub(Box::new(e), Box::new(self.term()?));
            } else {
                return Ok(e);
            }
        }
    }

    /// term: factor ('*' factor)*.
    fn term(&mut self) -> Result<SqlExpr> {
        let mut e = self.factor()?;
        while self.eat_symbol("*") {
            e = SqlExpr::Mul(Box::new(e), Box::new(self.factor()?));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Double(v)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Str(s)))
            }
            Some(Token::Param(i)) => {
                self.pos += 1;
                Ok(SqlExpr::Param(i))
            }
            Some(Token::Symbol(s)) if s == "(" => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                // aggregate call?
                let func = match name.as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    "avg" => Some(AggFunc::Avg),
                    _ => None,
                };
                if let Some(f) = func {
                    if self.tokens.get(self.pos + 1) == Some(&Token::Symbol("(".into())) {
                        self.pos += 2;
                        if self.eat_symbol("*") {
                            self.expect_symbol(")")?;
                            return Ok(SqlExpr::CountStar);
                        }
                        let arg = self.expr()?;
                        self.expect_symbol(")")?;
                        return Ok(SqlExpr::Agg(f, Box::new(arg)));
                    }
                }
                Ok(SqlExpr::Col(self.column_name()?))
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

fn flatten_and(e: SqlExpr) -> Vec<SqlExpr> {
    match e {
        SqlExpr::And(terms) => terms.into_iter().flat_map(flatten_and).collect(),
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_3() {
        let q = parse_query(
            "SELECT ps_suppkey, ps_partkey, ps_availqty, sum(l_quantity) AS total \
             FROM partsupp, lineitem \
             WHERE ps_suppkey=l_suppkey AND ps_partkey=l_partkey AND l_linestatus='O' \
             GROUP BY ps_availqty, ps_partkey, ps_suppkey \
             HAVING total > ps_availqty ORDER BY ps_partkey",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.where_conjuncts.len(), 3);
        assert_eq!(q.group_by.len(), 3);
        assert!(q.having.is_some());
        assert_eq!(q.order_by, vec!["ps_partkey"]);
    }

    #[test]
    fn parses_full_outer_join() {
        let q = parse_query(
            "SELECT * FROM r1 FULL OUTER JOIN r2 \
             ON (r1.c5=r2.c5 AND r1.c4=r2.c4) \
             FULL OUTER JOIN r3 ON (r3.c1=r1.c1)",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        assert!(q.from[1].full_outer_on.is_some());
        assert!(q.from[2].full_outer_on.is_some());
        assert_eq!(q.select, vec![SelectItem::Star]);
    }

    #[test]
    fn parses_arithmetic_and_aliases() {
        let q = parse_query(
            "SELECT t1.quantity * t1.price AS ordervalue, sum(t2.quantity * t2.price) AS ev \
             FROM tran t1, tran t2 WHERE t1.userid = t2.userid GROUP BY t1.userid",
        )
        .unwrap();
        assert_eq!(q.from[0].alias, "t1");
        assert_eq!(q.from[1].alias, "t2");
        match &q.select[0] {
            SelectItem::Expr(SqlExpr::Mul(..), Some(a)) => assert_eq!(a, "ordervalue"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let q = parse_query("SELECT count(*) FROM t GROUP BY g").unwrap();
        assert!(matches!(
            q.select[0],
            SelectItem::Expr(SqlExpr::CountStar, None)
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT a FROM").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t extra garbage here now").is_err());
    }

    #[test]
    fn order_by_desc_is_a_typed_error() {
        // Regression: DESC used to be silently ignored, returning ascending
        // rows for a descending query — silently wrong results.
        assert!(matches!(
            parse_query("SELECT a FROM t ORDER BY a DESC, b ASC"),
            Err(PyroError::Unsupported(m)) if m.contains("DESC")
        ));
        // Explicit ASC (the default direction) stays accepted.
        let q = parse_query("SELECT a FROM t ORDER BY a ASC, b ASC").unwrap();
        assert_eq!(q.order_by, vec!["a", "b"]);
    }

    #[test]
    fn parses_parameter_placeholders() {
        let q = parse_query("SELECT a FROM t WHERE a = ? AND b > ? ORDER BY a").unwrap();
        assert_eq!(
            q.where_conjuncts[0],
            SqlExpr::Cmp(
                CmpOp::Eq,
                Box::new(SqlExpr::Col("a".into())),
                Box::new(SqlExpr::Param(0))
            )
        );
        assert!(matches!(
            &q.where_conjuncts[1],
            SqlExpr::Cmp(CmpOp::Gt, _, b) if **b == SqlExpr::Param(1)
        ));
    }
}
