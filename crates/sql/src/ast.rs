//! The (small) SQL AST.

use pyro_common::Value;
use pyro_exec::agg::AggFunc;
use pyro_exec::CmpOp;

/// A scalar or boolean SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference, possibly qualified (`alias.col`).
    Col(String),
    /// Literal value.
    Lit(Value),
    /// A `?` parameter placeholder (0-based, numbered in text order); bound
    /// to a concrete [`Value`] when the prepared statement executes.
    Param(usize),
    /// Aggregate call (only legal in SELECT / HAVING).
    Agg(AggFunc, Box<SqlExpr>),
    /// `COUNT(*)`.
    CountStar,
    /// Binary comparison.
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Conjunction.
    And(Vec<SqlExpr>),
    /// Multiplication.
    Mul(Box<SqlExpr>, Box<SqlExpr>),
    /// Addition.
    Add(Box<SqlExpr>, Box<SqlExpr>),
    /// Subtraction.
    Sub(Box<SqlExpr>, Box<SqlExpr>),
}

impl SqlExpr {
    /// True iff the expression contains an aggregate call.
    pub fn has_agg(&self) -> bool {
        match self {
            SqlExpr::Agg(..) | SqlExpr::CountStar => true,
            SqlExpr::Col(_) | SqlExpr::Lit(_) | SqlExpr::Param(_) => false,
            SqlExpr::Cmp(_, a, b)
            | SqlExpr::Mul(a, b)
            | SqlExpr::Add(a, b)
            | SqlExpr::Sub(a, b) => a.has_agg() || b.has_agg(),
            SqlExpr::And(terms) => terms.iter().any(SqlExpr::has_agg),
        }
    }

    /// True iff the expression contains a `?` placeholder.
    pub fn has_param(&self) -> bool {
        match self {
            SqlExpr::Param(_) => true,
            SqlExpr::Col(_) | SqlExpr::Lit(_) | SqlExpr::CountStar => false,
            SqlExpr::Agg(_, a) => a.has_param(),
            SqlExpr::Cmp(_, a, b)
            | SqlExpr::Mul(a, b)
            | SqlExpr::Add(a, b)
            | SqlExpr::Sub(a, b) => a.has_param() || b.has_param(),
            SqlExpr::And(terms) => terms.iter().any(SqlExpr::has_param),
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// Expression with optional alias.
    Expr(SqlExpr, Option<String>),
}

/// One table in FROM, with optional alias and, for explicit joins, the ON
/// condition linking it to everything before it.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
    /// `Some(cond)` for `FULL OUTER JOIN ... ON cond`; `None` for
    /// comma-listed tables (joined via WHERE equalities).
    pub full_outer_on: Option<SqlExpr>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT DISTINCT?
    pub distinct: bool,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM tables, in join order.
    pub from: Vec<TableRef>,
    /// WHERE conjunction, flattened.
    pub where_conjuncts: Vec<SqlExpr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// HAVING condition.
    pub having: Option<SqlExpr>,
    /// ORDER BY column names (direction ignored, as in the paper).
    pub order_by: Vec<String>,
    /// LIMIT, if present.
    pub limit: Option<u64>,
}
