//! # pyro-sql
//!
//! A minimal SQL frontend covering the paper's query shapes: `SELECT` with
//! expressions and aggregates, comma-joins and `FULL OUTER JOIN ... ON`,
//! conjunctive `WHERE` (equi-join predicates and column/literal filters),
//! `GROUP BY`, `HAVING`, `ORDER BY`. Queries lower to
//! [`pyro_core::LogicalPlan`]s with left-deep join trees in `FROM` order —
//! matching the paper's fixed-join-shape setting.
//!
//! ```
//! # use pyro_sql::parse_query;
//! let q = parse_query(
//!     "SELECT ps_suppkey, count(l_partkey) AS n \
//!      FROM partsupp, lineitem \
//!      WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey \
//!      GROUP BY ps_suppkey ORDER BY ps_suppkey",
//! ).unwrap();
//! assert_eq!(q.order_by, vec!["ps_suppkey"]);
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{Query, SelectItem, SqlExpr, TableRef};
pub use lexer::normalize;
pub use lower::{lower, lower_with_params, plan, plan_with_params, ParamInfo};
pub use parser::parse_query;
