//! SQL tokenizer.

use pyro_common::{PyroError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively by the parser; identifiers keep original case
    /// lowered).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single quotes).
    Str(String),
    /// Punctuation / operator.
    Symbol(String),
}

/// Tokenizes SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token::Ident(
                chars[start..i].iter().collect::<String>().to_lowercase(),
            ));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                out.push(Token::Float(
                    text.parse()
                        .map_err(|e| PyroError::Sql(format!("bad float {text}: {e}")))?,
                ));
            } else {
                out.push(Token::Int(
                    text.parse()
                        .map_err(|e| PyroError::Sql(format!("bad int {text}: {e}")))?,
                ));
            }
            continue;
        }
        if c == '\'' {
            let start = i + 1;
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(PyroError::Sql("unterminated string literal".into()));
            }
            out.push(Token::Str(chars[start..i].iter().collect()));
            i += 1;
            continue;
        }
        // multi-char operators
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if ["<=", ">=", "<>", "!="].contains(&two.as_str()) {
            out.push(Token::Symbol(if two == "!=" { "<>".into() } else { two }));
            i += 2;
            continue;
        }
        if "(),.*=<>+-/".contains(c) {
            out.push(Token::Symbol(c.to_string()));
            i += 1;
            continue;
        }
        return Err(PyroError::Sql(format!(
            "unexpected character {c:?} at offset {i}"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x = 'O' AND y >= 4.5").unwrap();
        assert_eq!(t[0], Token::Ident("select".into()));
        assert!(t.contains(&Token::Str("O".into())));
        assert!(t.contains(&Token::Symbol(">=".into())));
        assert!(t.contains(&Token::Float(4.5)));
    }

    #[test]
    fn qualified_names_split_on_dot() {
        let t = tokenize("t1.c4").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("t1".into()),
                Token::Symbol(".".into()),
                Token::Ident("c4".into())
            ]
        );
    }

    #[test]
    fn not_equal_normalized() {
        let t = tokenize("a != b").unwrap();
        assert!(t.contains(&Token::Symbol("<>".into())));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn weird_chars_error() {
        assert!(tokenize("a ; b").is_err());
    }
}
