//! SQL tokenizer.

use pyro_common::{PyroError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched
    /// case-insensitively by the parser; identifiers keep original case
    /// lowered).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single quotes).
    Str(String),
    /// Punctuation / operator.
    Symbol(String),
    /// A `?` parameter placeholder, numbered 0-based in text order.
    Param(usize),
}

/// Tokenizes SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    let mut params = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token::Ident(
                chars[start..i].iter().collect::<String>().to_lowercase(),
            ));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                if chars[i] == '.' {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                out.push(Token::Float(
                    text.parse()
                        .map_err(|e| PyroError::Sql(format!("bad float {text}: {e}")))?,
                ));
            } else {
                out.push(Token::Int(
                    text.parse()
                        .map_err(|e| PyroError::Sql(format!("bad int {text}: {e}")))?,
                ));
            }
            continue;
        }
        if c == '\'' {
            let start = i + 1;
            i += 1;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            if i >= chars.len() {
                return Err(PyroError::Sql("unterminated string literal".into()));
            }
            out.push(Token::Str(chars[start..i].iter().collect()));
            i += 1;
            continue;
        }
        if c == '?' {
            out.push(Token::Param(params));
            params += 1;
            i += 1;
            continue;
        }
        // multi-char operators
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        if ["<=", ">=", "<>", "!="].contains(&two.as_str()) {
            out.push(Token::Symbol(if two == "!=" { "<>".into() } else { two }));
            i += 2;
            continue;
        }
        if "(),.*=<>+-/".contains(c) {
            out.push(Token::Symbol(c.to_string()));
            i += 1;
            continue;
        }
        return Err(PyroError::Sql(format!(
            "unexpected character {c:?} at offset {i}"
        )));
    }
    Ok(out)
}

/// Renders SQL text in canonical token form — keywords and identifiers
/// lowercased, every token separated by exactly one space — so texts that
/// differ only in whitespace or keyword case map to the same string. This
/// is the plan cache's notion of query identity: syntactic, not semantic
/// (`a = 1` and `1 = a` stay distinct keys).
pub fn normalize(sql: &str) -> Result<String> {
    let rendered: Vec<String> = tokenize(sql)?
        .into_iter()
        .map(|t| match t {
            Token::Ident(s) => s,
            Token::Int(v) => v.to_string(),
            // `{:?}` keeps the fraction ("4.0"), so a float literal can
            // never collide with the integer of the same value.
            Token::Float(v) => format!("{v:?}"),
            Token::Str(s) => format!("'{s}'"),
            Token::Symbol(s) => s,
            Token::Param(_) => "?".to_string(),
        })
        .collect();
    Ok(rendered.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x = 'O' AND y >= 4.5").unwrap();
        assert_eq!(t[0], Token::Ident("select".into()));
        assert!(t.contains(&Token::Str("O".into())));
        assert!(t.contains(&Token::Symbol(">=".into())));
        assert!(t.contains(&Token::Float(4.5)));
    }

    #[test]
    fn qualified_names_split_on_dot() {
        let t = tokenize("t1.c4").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("t1".into()),
                Token::Symbol(".".into()),
                Token::Ident("c4".into())
            ]
        );
    }

    #[test]
    fn not_equal_normalized() {
        let t = tokenize("a != b").unwrap();
        assert!(t.contains(&Token::Symbol("<>".into())));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn weird_chars_error() {
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn params_numbered_in_text_order() {
        let t = tokenize("a = ? AND b > ?").unwrap();
        assert_eq!(t[2], Token::Param(0));
        assert_eq!(t[6], Token::Param(1));
    }

    #[test]
    fn normalize_collapses_case_and_whitespace() {
        let a = normalize("SELECT  a FROM t WHERE x = ?  AND y = 'O'").unwrap();
        let b = normalize("select a from t where x=? and y='O'").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, "select a from t where x = ? and y = 'O'");
        // Float and int literals of the same value must stay distinct.
        assert_ne!(normalize("x = 4").unwrap(), normalize("x = 4.0").unwrap());
    }
}
