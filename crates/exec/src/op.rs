//! The Volcano operator interface.

use crate::metrics::MetricsRef;
use pyro_common::{Result, Schema, Tuple};

/// A pull-based iterator operator. `next` returns `Ok(None)` at end of
/// stream; operators are single-use.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Pulls the next output tuple.
    fn next(&mut self) -> Result<Option<Tuple>>;
}

/// Boxed operator, the uniform child type.
pub type BoxOp = Box<dyn Operator>;

/// Drains an operator into a vector (tests and leaf consumers).
pub fn collect(mut op: BoxOp) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    Ok(out)
}

/// A compiled, ready-to-run operator tree bundled with the metrics block
/// every operator in it shares.
///
/// This is the unit the optimizer hands back: callers either drain it in one
/// shot with [`Pipeline::run`] or pull tuples themselves via
/// [`Pipeline::into_parts`] (streaming consumers, checkpointed benchmarks).
pub struct Pipeline {
    op: BoxOp,
    metrics: MetricsRef,
}

impl Pipeline {
    /// Bundles an operator tree with its shared metrics.
    pub fn new(op: BoxOp, metrics: MetricsRef) -> Pipeline {
        Pipeline { op, metrics }
    }

    /// Output schema of the root operator.
    pub fn schema(&self) -> &Schema {
        self.op.schema()
    }

    /// The shared counter block. The handle stays valid (and keeps
    /// counting) across [`Pipeline::run`], so clone it before draining if
    /// you need readings afterwards.
    pub fn metrics(&self) -> &MetricsRef {
        &self.metrics
    }

    /// Drains the pipeline, returning the rows together with the metrics
    /// that produced them.
    pub fn run(self) -> Result<Rows> {
        let rows = collect(self.op)?;
        Ok(Rows {
            rows,
            metrics: self.metrics,
        })
    }

    /// Splits into the raw operator and metrics handle for streaming use.
    pub fn into_parts(self) -> (BoxOp, MetricsRef) {
        (self.op, self.metrics)
    }
}

/// Materialized pipeline output: the rows plus the counters accumulated
/// while producing them.
#[derive(Debug)]
pub struct Rows {
    /// The produced tuples, in stream order.
    pub rows: Vec<Tuple>,
    /// Counters accumulated during execution.
    pub metrics: MetricsRef,
}

/// An operator yielding a fixed in-memory tuple list — the standard test
/// source and the bridge for pre-materialized inputs.
pub struct ValuesOp {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl ValuesOp {
    /// Builds from a schema and rows.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ValuesOp {
            schema,
            rows: rows.into_iter(),
        }
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::Value;

    #[test]
    fn values_roundtrip() {
        let schema = Schema::ints(&["a"]);
        let rows: Vec<Tuple> = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let op = ValuesOp::new(schema.clone(), rows.clone());
        assert_eq!(op.schema(), &schema);
        assert_eq!(collect(Box::new(op)).unwrap(), rows);
    }
}
