//! The Volcano operator interface, in both granularities: classic
//! tuple-at-a-time `next()` and batch-at-a-time `next_batch()`.
//!
//! **Batch contract.** One `next_batch()` call on an operator configured for
//! batch size `B` performs exactly the same per-row work — and charges
//! exactly the same [`crate::ExecMetrics`] — as up to `B` consecutive
//! `next()` calls would; it returns `Ok(None)` only at end of stream, and a
//! short (even partial) batch does *not* signal the end. This equivalence is
//! what keeps counter totals bit-identical between the two paths (the
//! paper's Experiment A figures depend on it) while letting batch-native
//! operators skip per-row virtual dispatch, reuse buffers, and charge
//! metrics once per batch. Base-table device reads are the one deliberate
//! exception: a [`Stash`] refill pulls a whole child batch, so under early
//! termination (Top-K) the batch path may read up to one batch of input
//! beyond demand — bounded read-ahead, like any paged scan; `ExecMetrics`
//! (comparisons, run I/O) still match exactly. The two pull styles must not
//! be interleaved on the same operator: batch-native operators stash
//! buffered input that the row path does not see.

use crate::metrics::MetricsRef;
use pyro_common::{ColumnarBatch, Result, Schema, Tuple};
use pyro_storage::StoreRef;

/// Default number of rows per batch (the `SessionBuilder::batch_size`
/// default).
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A pull-based iterator operator. `next` returns `Ok(None)` at end of
/// stream; operators are single-use.
///
/// Only [`Operator::schema`] and [`Operator::next`] are required — the
/// batch pull defaults to the row shim, so a minimal operator is a few
/// lines:
///
/// ```
/// use pyro_common::{Result, Schema, Tuple, Value};
/// use pyro_exec::{collect_batched, Operator};
///
/// /// Yields the integers `0..n` as single-column tuples.
/// struct Counter {
///     schema: Schema,
///     next: i64,
///     n: i64,
/// }
///
/// impl Operator for Counter {
///     fn schema(&self) -> &Schema {
///         &self.schema
///     }
///
///     fn next(&mut self) -> Result<Option<Tuple>> {
///         if self.next >= self.n {
///             return Ok(None);
///         }
///         self.next += 1;
///         Ok(Some(Tuple::new(vec![Value::Int(self.next - 1)])))
///     }
/// }
///
/// let op = Counter { schema: Schema::ints(&["i"]), next: 0, n: 3 };
/// let rows = collect_batched(Box::new(op)).unwrap();
/// assert_eq!(rows.len(), 3);
/// ```
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Pulls the next output tuple.
    fn next(&mut self) -> Result<Option<Tuple>>;

    /// Pulls roughly [`Operator::batch_size`] output tuples. `Ok(None)`
    /// means end of stream; a short batch does not, and an operator whose
    /// natural production unit doesn't divide evenly (a join key with many
    /// matches) may overshoot the batch size by one such unit — consumers
    /// must not treat `batch_size` as a hard upper bound on batch length.
    ///
    /// The default implementation is the row shim — it loops [`Operator::
    /// next`] — so third-party operators keep working unchanged; every
    /// in-tree operator overrides it with a native batch implementation.
    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        let cap = self.batch_size().max(1);
        let mut out = Vec::new();
        while out.len() < cap {
            match self.next()? {
                Some(t) => out.push(t),
                None => break,
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    /// Pulls roughly one batch of output in columnar (SoA) layout. Same
    /// contract as [`Operator::next_batch`]: `Ok(None)` only at end of
    /// stream, short batches carry no meaning, overshoot by one natural
    /// production unit is allowed, and the pull styles must not be
    /// interleaved on one operator.
    ///
    /// The default shims the row batch through
    /// [`ColumnarBatch::from_rows`], so any operator can sit under a
    /// vectorized parent; the hot operators (scan, filter, project, hash
    /// join) override it with kernels that never box a row. None of those
    /// operators charge `ExecMetrics`, which is why the columnar path is
    /// outside the counter-parity contract's blast radius: converters only
    /// change *how* cells are laid out, never what work the metered
    /// operators do.
    fn next_columnar(&mut self) -> Result<Option<ColumnarBatch>> {
        Ok(self.next_batch()?.map(|b| ColumnarBatch::from_rows(&b)))
    }

    /// The operator's configured batch granularity in rows.
    fn batch_size(&self) -> usize {
        DEFAULT_BATCH_SIZE
    }

    /// Reconfigures the batch granularity. Pass-through operators forward
    /// the new size to their input so demand stays bounded (e.g. `Limit`
    /// narrows its child to the rows still wanted). Default: no-op, for
    /// operators without buffering.
    fn set_batch_size(&mut self, _rows: usize) {}

    /// Bounds on the number of rows this operator will still produce, in
    /// `Iterator::size_hint` form: `(lower, Some(upper))` when known.
    /// Collectors use the hint to pre-allocate — a Limit-topped plan knows
    /// its exact output cardinality, a scan knows its file's tuple count.
    /// The default `(0, None)` claims nothing; implementations must never
    /// under-report the upper bound.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Boxed operator, the uniform child type. `Send`, so a compiled fragment
/// can be moved into a worker thread by the exchange operators.
pub type BoxOp = Box<dyn Operator + Send>;

/// Capacity to pre-allocate for a drain of `op`: the hinted upper bound
/// (exact for Limit-topped plans and bare scans), clamped so a misreported
/// hint cannot trigger an absurd allocation.
fn drain_capacity(op: &BoxOp) -> usize {
    const CAP: usize = 1 << 20;
    let (lower, upper) = op.size_hint();
    upper.unwrap_or(lower).min(CAP)
}

/// Drains an operator into a vector (tests and leaf consumers),
/// pre-allocating from the operator's [`Operator::size_hint`].
pub fn collect(mut op: BoxOp) -> Result<Vec<Tuple>> {
    let mut out = Vec::with_capacity(drain_capacity(&op));
    while let Some(t) = op.next()? {
        out.push(t);
    }
    Ok(out)
}

/// Drains an operator batch-at-a-time into a vector, pre-allocating from
/// the operator's [`Operator::size_hint`].
pub fn collect_batched(mut op: BoxOp) -> Result<Vec<Tuple>> {
    let mut out = Vec::with_capacity(drain_capacity(&op));
    while let Some(mut batch) = op.next_batch()? {
        out.append(&mut batch);
    }
    Ok(out)
}

/// Batched-input adapter: buffers one child batch and hands rows out one at
/// a time, so an operator whose logic is inherently row-wise (replacement
/// selection, group detection, hash build) can consume its input in batches
/// without changing a single per-row decision.
#[derive(Default)]
pub struct Stash {
    buf: std::vec::IntoIter<Tuple>,
}

impl Stash {
    /// An empty stash.
    pub fn new() -> Stash {
        Stash::default()
    }

    /// The next input row, refilling from `child.next_batch()` when the
    /// buffer runs dry.
    pub fn next_row(&mut self, child: &mut BoxOp) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.buf.next() {
                return Ok(Some(t));
            }
            match child.next_batch()? {
                Some(batch) => self.buf = batch.into_iter(),
                None => return Ok(None),
            }
        }
    }

    /// The next whole chunk of input: buffered rows first (the remainder of
    /// a batch partially consumed row-wise), then a fresh child batch.
    /// Bulk consumers (sort ingest) use this to move rows by `Vec` append
    /// instead of one iterator step per row.
    pub fn next_chunk(&mut self, child: &mut BoxOp) -> Result<Option<Vec<Tuple>>> {
        if self.buf.len() > 0 {
            return Ok(Some(self.buf.by_ref().collect()));
        }
        child.next_batch()
    }

    /// Puts unconsumed rows back so the next pull (row- or chunk-wise)
    /// returns them first. The stash must be empty.
    pub fn preload(&mut self, rows: Vec<Tuple>) {
        debug_assert_eq!(self.buf.len(), 0, "preload over buffered rows");
        self.buf = rows.into_iter();
    }
}

/// Pulls one input row in either granularity: directly via `next()` on the
/// row path, or through the operator's [`Stash`] on the batch path.
pub(crate) fn pull_row(
    child: &mut BoxOp,
    stash: &mut Stash,
    batched: bool,
) -> Result<Option<Tuple>> {
    if batched {
        stash.next_row(child)
    } else {
        child.next()
    }
}

/// A compiled, ready-to-run operator tree bundled with the metrics block
/// every operator in it shares.
///
/// This is the unit the optimizer hands back: callers either drain it in one
/// shot with [`Pipeline::run`] or pull tuples themselves via
/// [`Pipeline::into_parts`] (streaming consumers, checkpointed benchmarks).
pub struct Pipeline {
    op: BoxOp,
    metrics: MetricsRef,
    /// When set, the drain entry points charge the store's buffer-pool
    /// counter delta (hits/misses) to `metrics` — the per-query slice of
    /// the catalog-wide pool counters.
    store: Option<StoreRef>,
}

impl Pipeline {
    /// Bundles an operator tree with its shared metrics.
    pub fn new(op: BoxOp, metrics: MetricsRef) -> Pipeline {
        Pipeline {
            op,
            metrics,
            store: None,
        }
    }

    /// Attributes `store`'s buffer-pool activity during [`Pipeline::run`] /
    /// [`Pipeline::run_tuple_at_a_time`] to this pipeline's metrics as
    /// `cache_hits` / `cache_misses`. A bypass store charges nothing. The
    /// plan compiler sets this to the catalog's store; streaming consumers
    /// going through [`Pipeline::into_parts`] read the pool stats
    /// themselves.
    ///
    /// Attribution is a counter *delta* across the drain, so it assumes
    /// one drain at a time per store: pipelines drained concurrently over
    /// the same pooled store each observe the combined activity. The
    /// pool's own [`pyro_storage::CacheStats`] totals stay exact
    /// regardless.
    pub fn with_store(mut self, store: StoreRef) -> Pipeline {
        self.store = Some(store);
        self
    }

    /// Output schema of the root operator.
    pub fn schema(&self) -> &Schema {
        self.op.schema()
    }

    /// The shared counter block. The handle stays valid (and keeps
    /// counting) across [`Pipeline::run`], so clone it before draining if
    /// you need readings afterwards.
    pub fn metrics(&self) -> &MetricsRef {
        &self.metrics
    }

    /// Drains the pipeline batch-at-a-time, returning the rows together
    /// with the metrics that produced them.
    pub fn run(self) -> Result<Rows> {
        let Pipeline { op, metrics, store } = self;
        let before = store.as_ref().map(|s| s.cache_stats());
        let rows = collect_batched(op)?;
        charge_cache(&metrics, &store, before);
        Ok(Rows { rows, metrics })
    }

    /// Drains the pipeline tuple-at-a-time through `Operator::next` — the
    /// pre-batching Volcano path, kept for A/B measurement (the
    /// `bench_batch` harness) and as the semantic reference the batch path
    /// must match counter-for-counter.
    pub fn run_tuple_at_a_time(self) -> Result<Rows> {
        let Pipeline { op, metrics, store } = self;
        let before = store.as_ref().map(|s| s.cache_stats());
        let rows = collect(op)?;
        charge_cache(&metrics, &store, before);
        Ok(Rows { rows, metrics })
    }

    /// Splits into the raw operator and metrics handle for streaming use.
    /// Cache accounting is dropped with the pipeline: streaming consumers
    /// read the pool's counters from the store directly.
    pub fn into_parts(self) -> (BoxOp, MetricsRef) {
        (self.op, self.metrics)
    }

    /// Bounds on the rows the pipeline will produce, delegated to the root
    /// operator's [`Operator::size_hint`]. Exact for Limit-topped plans.
    pub fn size_hint(&self) -> (usize, Option<usize>) {
        self.op.size_hint()
    }
}

/// Adds the store's pool-counter delta since `before` to `metrics` (the
/// [`Pipeline`] drain epilogue).
fn charge_cache(
    metrics: &MetricsRef,
    store: &Option<StoreRef>,
    before: Option<pyro_storage::CacheStats>,
) {
    if let (Some(store), Some(before)) = (store, before) {
        let delta = store.cache_stats().since(&before);
        metrics.add_cache_hits(delta.hits);
        metrics.add_cache_misses(delta.misses);
    }
}

/// Materialized pipeline output: the rows plus the counters accumulated
/// while producing them.
#[derive(Debug)]
pub struct Rows {
    /// The produced tuples, in stream order.
    pub rows: Vec<Tuple>,
    /// Counters accumulated during execution.
    pub metrics: MetricsRef,
}

impl Rows {
    /// Number of produced rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl IntoIterator for Rows {
    type Item = Tuple;
    /// `vec::IntoIter` is an `ExactSizeIterator`, so consumers of a drained
    /// pipeline can pre-allocate from `len()`.
    type IntoIter = std::vec::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

/// An operator yielding a fixed in-memory tuple list — the standard test
/// source and the bridge for pre-materialized inputs.
pub struct ValuesOp {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
    batch: usize,
}

impl ValuesOp {
    /// Builds from a schema and rows.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ValuesOp {
            schema,
            rows: rows.into_iter(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.rows.next())
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        let out: Vec<Tuple> = self.rows.by_ref().take(self.batch).collect();
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rows.len();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::Value;

    #[test]
    fn values_roundtrip() {
        let schema = Schema::ints(&["a"]);
        let rows: Vec<Tuple> = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let op = ValuesOp::new(schema.clone(), rows.clone());
        assert_eq!(op.size_hint(), (3, Some(3)));
        assert_eq!(op.schema(), &schema);
        assert_eq!(collect(Box::new(op)).unwrap(), rows);
    }

    #[test]
    fn pipeline_and_rows_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<BoxOp>();
        assert_send::<Pipeline>();
        assert_send::<Rows>();
        assert_send::<crate::metrics::MetricsRef>();
    }

    #[test]
    fn rows_into_iter_is_exact_size() {
        let rows = Rows {
            rows: (0..5).map(|i| Tuple::new(vec![Value::Int(i)])).collect(),
            metrics: crate::metrics::ExecMetrics::new(),
        };
        assert_eq!(rows.len(), 5);
        assert!(!rows.is_empty());
        let it = rows.into_iter();
        assert_eq!(it.len(), 5, "ExactSizeIterator over drained rows");
        assert_eq!(it.size_hint(), (5, Some(5)));
    }
}
