//! The Volcano operator interface.

use pyro_common::{Result, Schema, Tuple};

/// A pull-based iterator operator. `next` returns `Ok(None)` at end of
/// stream; operators are single-use.
pub trait Operator {
    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Pulls the next output tuple.
    fn next(&mut self) -> Result<Option<Tuple>>;
}

/// Boxed operator, the uniform child type.
pub type BoxOp = Box<dyn Operator>;

/// Drains an operator into a vector (tests and leaf consumers).
pub fn collect(mut op: BoxOp) -> Result<Vec<Tuple>> {
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    Ok(out)
}

/// An operator yielding a fixed in-memory tuple list — the standard test
/// source and the bridge for pre-materialized inputs.
pub struct ValuesOp {
    schema: Schema,
    rows: std::vec::IntoIter<Tuple>,
}

impl ValuesOp {
    /// Builds from a schema and rows.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ValuesOp { schema, rows: rows.into_iter() }
    }
}

impl Operator for ValuesOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.rows.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::Value;

    #[test]
    fn values_roundtrip() {
        let schema = Schema::ints(&["a"]);
        let rows: Vec<Tuple> = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let op = ValuesOp::new(schema.clone(), rows.clone());
        assert_eq!(op.schema(), &schema);
        assert_eq!(collect(Box::new(op)).unwrap(), rows);
    }
}
