//! Join operators: sort-merge (inner / left / full outer), hash, and block
//! nested loops.

mod hash;
mod merge;
mod nl;

pub use hash::HashJoin;
pub use merge::MergeJoin;
pub use nl::NestedLoopsJoin;

/// Join type. The paper's Query 4 requires FULL OUTER; the rest are inner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Matching pairs only.
    Inner,
    /// All left rows; unmatched padded with NULLs on the right.
    LeftOuter,
    /// All rows from both sides; unmatched padded with NULLs.
    FullOuter,
}
