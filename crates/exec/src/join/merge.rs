//! Sort-merge join with group buffering.
//!
//! Both inputs must arrive sorted on their join keys under the *same*
//! permutation — the requirement that makes interesting-order choice matter
//! (the paper's whole subject). The operator consumes one *group* (maximal
//! run of equal-key tuples) from each side at a time and emits the cross
//! product of matching groups; outer variants emit NULL-padded rows for
//! groups without a partner.
//!
//! Like the paper (and SQL), rows whose join key contains NULL match
//! nothing — they are emitted only by the outer variants.
//!
//! **Output order.** Inner and left-outer output is sorted on the left key
//! columns by construction. For FULL OUTER joins, unmatched *right* rows are
//! NULL on every left column; emitting them in stream position would
//! interleave NULL keys into the output and silently break the order the
//! optimizer propagates (the paper's Fig. 14 plans depend on that order for
//! the partial sort between the two joins). They are therefore *deferred*
//! and emitted at the end of the stream — exactly where rows with NULL left
//! keys belong under NULLS-LAST ordering, so the guarantee stays truthful.

use super::JoinKind;
use crate::metrics::MetricsRef;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple};
use std::cmp::Ordering;

/// Merge join over key-sorted inputs.
pub struct MergeJoin {
    left: BoxOp,
    right: BoxOp,
    left_key: KeySpec,
    right_key: KeySpec,
    kind: JoinKind,
    schema: Schema,
    metrics: MetricsRef,
    left_group: Vec<Tuple>,
    right_group: Vec<Tuple>,
    left_next: Option<Tuple>,
    right_next: Option<Tuple>,
    started: bool,
    /// Pending output rows from the current group pairing.
    pending: std::vec::IntoIter<Tuple>,
    /// FULL OUTER only: right-padded rows held back until end-of-stream so
    /// the output stays sorted on the left key columns (NULLS LAST).
    deferred_right: Vec<Tuple>,
    deferred_flushed: bool,
    left_stash: Stash,
    right_stash: Stash,
    batch: usize,
}

impl MergeJoin {
    /// Builds a merge join; `left_key`/`right_key` are positional keys of
    /// equal length giving the shared sort order.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: KeySpec,
        right_key: KeySpec,
        kind: JoinKind,
        metrics: MetricsRef,
    ) -> Self {
        assert_eq!(left_key.len(), right_key.len(), "join keys must align");
        let schema = left.schema().join(right.schema());
        MergeJoin {
            left,
            right,
            left_key,
            right_key,
            kind,
            schema,
            metrics,
            left_group: Vec::new(),
            right_group: Vec::new(),
            left_next: None,
            right_next: None,
            started: false,
            pending: Vec::new().into_iter(),
            deferred_right: Vec::new(),
            deferred_flushed: false,
            left_stash: Stash::new(),
            right_stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Reads the next maximal equal-key group from one side; key
    /// comparisons accumulate in `acc`.
    fn read_group(
        source: &mut BoxOp,
        stash: &mut Stash,
        batched: bool,
        key: &KeySpec,
        head: &mut Option<Tuple>,
        acc: &mut u64,
    ) -> Result<Vec<Tuple>> {
        let Some(first) = head.take() else {
            return Ok(Vec::new());
        };
        let mut group = vec![first];
        loop {
            match pull_row(source, stash, batched)? {
                None => break,
                Some(t) => {
                    let (ord, n) = key.compare_counting(&group[0], &t);
                    *acc += n;
                    if ord == Ordering::Equal {
                        group.push(t);
                    } else {
                        *head = Some(t);
                        break;
                    }
                }
            }
        }
        Ok(group)
    }

    fn refill_left(&mut self, batched: bool, acc: &mut u64) -> Result<()> {
        self.left_group = Self::read_group(
            &mut self.left,
            &mut self.left_stash,
            batched,
            &self.left_key,
            &mut self.left_next,
            acc,
        )?;
        Ok(())
    }

    fn refill_right(&mut self, batched: bool, acc: &mut u64) -> Result<()> {
        self.right_group = Self::read_group(
            &mut self.right,
            &mut self.right_stash,
            batched,
            &self.right_key,
            &mut self.right_next,
            acc,
        )?;
        Ok(())
    }

    fn key_has_null(&self, t: &Tuple, key: &KeySpec) -> bool {
        key.cols().iter().any(|&c| t.get(c).is_null())
    }

    /// Compares the current group keys across sides, accumulating the
    /// scalar comparisons in `acc`.
    fn cross_compare(&self, l: &Tuple, r: &Tuple, acc: &mut u64) -> Ordering {
        let mut ord = Ordering::Equal;
        for (&lc, &rc) in self.left_key.cols().iter().zip(self.right_key.cols()) {
            *acc += 1;
            ord = l.get(lc).cmp(r.get(rc));
            if ord != Ordering::Equal {
                break;
            }
        }
        ord
    }

    fn emit_left_unmatched(&self, group: Vec<Tuple>, out: &mut Vec<Tuple>) {
        if matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            let pad = Tuple::nulls(self.right.schema().len());
            out.extend(group.into_iter().map(|l| l.concat(&pad)));
        }
    }

    fn emit_right_unmatched(&mut self, group: Vec<Tuple>) {
        if matches!(self.kind, JoinKind::FullOuter) {
            let pad = Tuple::nulls(self.left.schema().len());
            self.deferred_right
                .extend(group.into_iter().map(|r| pad.concat(&r)));
        }
    }

    /// Advances group state and produces the next batch of output rows;
    /// comparisons are charged to the metrics once per call.
    fn advance(&mut self, batched: bool) -> Result<Vec<Tuple>> {
        let mut acc = 0;
        let out = self.advance_inner(batched, &mut acc);
        self.metrics.add_comparisons(acc);
        out
    }

    fn advance_inner(&mut self, batched: bool, acc: &mut u64) -> Result<Vec<Tuple>> {
        if !self.started {
            self.started = true;
            self.left_next = pull_row(&mut self.left, &mut self.left_stash, batched)?;
            self.right_next = pull_row(&mut self.right, &mut self.right_stash, batched)?;
            self.refill_left(batched, acc)?;
            self.refill_right(batched, acc)?;
        }
        let mut out = Vec::new();
        while out.is_empty() {
            match (self.left_group.is_empty(), self.right_group.is_empty()) {
                (true, true) => return Ok(out), // both exhausted
                (false, true) => {
                    let g = std::mem::take(&mut self.left_group);
                    self.emit_left_unmatched(g, &mut out);
                    self.refill_left(batched, acc)?;
                    if out.is_empty() && self.left_group.is_empty() {
                        return Ok(out);
                    }
                    continue;
                }
                (true, false) => {
                    let g = std::mem::take(&mut self.right_group);
                    self.emit_right_unmatched(g);
                    self.refill_right(batched, acc)?;
                    if out.is_empty() && self.right_group.is_empty() {
                        return Ok(out);
                    }
                    continue;
                }
                (false, false) => {}
            }
            let lnull = self.key_has_null(&self.left_group[0], &self.left_key);
            let rnull = self.key_has_null(&self.right_group[0], &self.right_key);
            // NULL keys never match; NULLs sort last, so NULL-keyed groups
            // surface after all joinable keys on their side and drain as
            // unmatched.
            let ord = self.cross_compare(&self.left_group[0], &self.right_group[0], acc);
            match ord {
                Ordering::Less => {
                    let g = std::mem::take(&mut self.left_group);
                    self.emit_left_unmatched(g, &mut out);
                    self.refill_left(batched, acc)?;
                }
                Ordering::Greater => {
                    let g = std::mem::take(&mut self.right_group);
                    self.emit_right_unmatched(g);
                    self.refill_right(batched, acc)?;
                }
                Ordering::Equal if lnull || rnull => {
                    // Equal but NULL-keyed: both groups are unmatched.
                    let gl = std::mem::take(&mut self.left_group);
                    let gr = std::mem::take(&mut self.right_group);
                    self.emit_left_unmatched(gl, &mut out);
                    self.emit_right_unmatched(gr);
                    self.refill_left(batched, acc)?;
                    self.refill_right(batched, acc)?;
                }
                Ordering::Equal => {
                    let gl = std::mem::take(&mut self.left_group);
                    let gr = std::mem::take(&mut self.right_group);
                    out.reserve(gl.len() * gr.len());
                    for l in &gl {
                        for r in &gr {
                            out.push(l.concat(r));
                        }
                    }
                    self.refill_left(batched, acc)?;
                    self.refill_right(batched, acc)?;
                }
            }
        }
        Ok(out)
    }

    /// Produces pending rows if none are buffered. `Ok(false)` means the
    /// stream (including the deferred full-outer tail) is complete.
    fn replenish(&mut self, batched: bool) -> Result<bool> {
        let produced = self.advance(batched)?;
        if produced.is_empty() {
            // End of the merged stream: release the deferred right-padded
            // rows (NULL left keys sort last).
            if !self.deferred_flushed {
                self.deferred_flushed = true;
                if !self.deferred_right.is_empty() {
                    self.pending = std::mem::take(&mut self.deferred_right).into_iter();
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        self.pending = produced.into_iter();
        Ok(true)
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.next() {
                return Ok(Some(t));
            }
            if !self.replenish(false)? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        // Leftovers buffered by a previous oversized pairing drain first.
        let mut out = Vec::new();
        while out.len() < self.batch {
            match self.pending.next() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        if !out.is_empty() {
            return Ok(Some(out));
        }
        let produced = self.advance(true)?;
        if produced.is_empty() {
            // End of the merged stream: release the deferred right-padded
            // rows (NULL left keys sort last).
            if !self.deferred_flushed {
                self.deferred_flushed = true;
                if !self.deferred_right.is_empty() {
                    let tail = std::mem::take(&mut self.deferred_right);
                    if tail.len() <= self.batch {
                        return Ok(Some(tail));
                    }
                    self.pending = tail.into_iter();
                    return self.next_batch();
                }
            }
            return Ok(None);
        }
        // Hand a whole group pairing over without re-buffering; only
        // oversized pairings go through the pending cursor.
        if produced.len() <= self.batch {
            return Ok(Some(produced));
        }
        self.pending = produced.into_iter();
        self.next_batch()
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn join(l: &[(i64, i64)], r: &[(i64, i64)], kind: JoinKind) -> Vec<Vec<Option<i64>>> {
        let m = ExecMetrics::new();
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(l));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(r));
        let op = MergeJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            kind,
            m,
        );
        collect(Box::new(op))
            .unwrap()
            .iter()
            .map(|t| t.values().iter().map(|v| v.as_int()).collect())
            .collect()
    }

    #[test]
    fn inner_join_basic() {
        let out = join(
            &[(1, 10), (2, 20), (4, 40)],
            &[(2, 200), (3, 300), (4, 400)],
            JoinKind::Inner,
        );
        assert_eq!(
            out,
            vec![
                vec![Some(2), Some(20), Some(2), Some(200)],
                vec![Some(4), Some(40), Some(4), Some(400)],
            ]
        );
    }

    #[test]
    fn duplicates_cross_product() {
        let out = join(&[(1, 1), (1, 2)], &[(1, 3), (1, 4)], JoinKind::Inner);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn left_outer_pads() {
        let out = join(&[(1, 10), (2, 20)], &[(2, 200)], JoinKind::LeftOuter);
        assert_eq!(
            out,
            vec![
                vec![Some(1), Some(10), None, None],
                vec![Some(2), Some(20), Some(2), Some(200)],
            ]
        );
    }

    #[test]
    fn full_outer_pads_both() {
        let out = join(&[(1, 10)], &[(2, 200)], JoinKind::FullOuter);
        assert_eq!(
            out,
            vec![
                vec![Some(1), Some(10), None, None],
                vec![None, None, Some(2), Some(200)],
            ]
        );
    }

    #[test]
    fn full_outer_with_matches_and_tails() {
        let out = join(
            &[(1, 1), (3, 3), (5, 5)],
            &[(3, 30), (5, 50), (7, 70)],
            JoinKind::FullOuter,
        );
        assert_eq!(out.len(), 4); // 1 unmatched, 3 match, 5 match, 7 unmatched
    }

    #[test]
    fn empty_inputs() {
        assert!(join(&[], &[], JoinKind::Inner).is_empty());
        assert_eq!(join(&[(1, 1)], &[], JoinKind::FullOuter).len(), 1);
        assert_eq!(join(&[], &[(1, 1)], JoinKind::FullOuter).len(), 1);
        assert!(join(&[(1, 1)], &[], JoinKind::Inner).is_empty());
    }

    #[test]
    fn null_keys_never_match() {
        let m = ExecMetrics::new();
        let left = ValuesOp::new(
            Schema::ints(&["a", "b"]),
            vec![
                Tuple::new(vec![Value::Null, Value::Int(1)]),
                Tuple::new(vec![Value::Int(1), Value::Int(2)]),
            ],
        );
        let right = ValuesOp::new(
            Schema::ints(&["c", "d"]),
            vec![
                Tuple::new(vec![Value::Null, Value::Int(3)]),
                Tuple::new(vec![Value::Int(1), Value::Int(4)]),
            ],
        );
        let op = MergeJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            JoinKind::FullOuter,
            m,
        );
        let out = collect(Box::new(op)).unwrap();
        // NULL left row padded, NULL right row padded, 1-1 match = 3 rows.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn multi_column_join_keys() {
        let m = ExecMetrics::new();
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(&[(1, 1), (1, 2), (2, 1)]));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(&[(1, 1), (1, 3), (2, 1)]));
        let op = MergeJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0, 1]),
            KeySpec::new(vec![0, 1]),
            JoinKind::Inner,
            m,
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 2); // (1,1) and (2,1)
    }
}
