//! Nested loops join — the semantic reference implementation.
//!
//! Used by the optimizer as a (rarely winning) physical alternative and by
//! the property-test suite as the oracle merge/hash joins are checked
//! against.

use super::JoinKind;
use crate::op::{BoxOp, Operator};
use pyro_common::{KeySpec, Result, Schema, Tuple, Value};

/// Materializing nested-loops join (inner side buffered).
pub struct NestedLoopsJoin {
    left: BoxOp,
    left_key: KeySpec,
    right_key: KeySpec,
    kind: JoinKind,
    schema: Schema,
    right_schema_len: usize,
    right_rows: Option<Vec<(Tuple, std::cell::Cell<bool>)>>,
    right_source: Option<BoxOp>,
    pending: std::vec::IntoIter<Tuple>,
    drained_right: bool,
}

impl NestedLoopsJoin {
    /// Builds an NL join on positional equality keys.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: KeySpec,
        right_key: KeySpec,
        kind: JoinKind,
    ) -> Self {
        assert_eq!(left_key.len(), right_key.len());
        let schema = left.schema().join(right.schema());
        NestedLoopsJoin {
            left,
            left_key,
            right_key,
            kind,
            schema,
            right_schema_len: right.schema().len(),
            right_rows: None,
            right_source: Some(right),
            pending: Vec::new().into_iter(),
            drained_right: false,
        }
    }

    fn keys_match(&self, l: &Tuple, r: &Tuple) -> bool {
        self.left_key
            .cols()
            .iter()
            .zip(self.right_key.cols())
            .all(|(&lc, &rc)| {
                let (lv, rv) = (l.get(lc), r.get(rc));
                !lv.is_null() && !rv.is_null() && lv == rv
            })
    }
}

impl Operator for NestedLoopsJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.next() {
                return Ok(Some(t));
            }
            if self.right_rows.is_none() {
                let mut src = self.right_source.take().expect("materialize once");
                let mut rows = Vec::new();
                while let Some(t) = src.next()? {
                    rows.push((t, std::cell::Cell::new(false)));
                }
                self.right_rows = Some(rows);
            }
            match self.left.next()? {
                Some(l) => {
                    let rows = self.right_rows.as_ref().expect("materialized");
                    let mut out = Vec::new();
                    for (r, seen) in rows {
                        if self.keys_match(&l, r) {
                            seen.set(true);
                            out.push(l.concat(r));
                        }
                    }
                    if out.is_empty()
                        && matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter)
                    {
                        out.push(l.concat(&Tuple::nulls(self.right_schema_len)));
                    }
                    if !out.is_empty() {
                        self.pending = out.into_iter();
                    }
                }
                None => {
                    if self.drained_right {
                        return Ok(None);
                    }
                    self.drained_right = true;
                    if matches!(self.kind, JoinKind::FullOuter) {
                        let rows = self.right_rows.as_ref().expect("materialized");
                        let pad_len = self.schema.len() - self.right_schema_len;
                        let pad = Tuple::nulls(pad_len);
                        let out: Vec<Tuple> = rows
                            .iter()
                            .filter(|(_, seen)| !seen.get())
                            .map(|(r, _)| pad.concat(r))
                            .collect();
                        if out.is_empty() {
                            return Ok(None);
                        }
                        self.pending = out.into_iter();
                    } else {
                        return Ok(None);
                    }
                }
            }
        }
    }
}

// Silence unused import warning for Value (used in keys_match via is_null).
#[allow(unused)]
fn _type_check(v: &Value) -> bool {
    v.is_null()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn join(l: &[(i64, i64)], r: &[(i64, i64)], kind: JoinKind) -> Vec<Tuple> {
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(l));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(r));
        let op = NestedLoopsJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            kind,
        );
        collect(Box::new(op)).unwrap()
    }

    #[test]
    fn inner() {
        assert_eq!(
            join(&[(1, 1), (2, 2)], &[(2, 9), (3, 9)], JoinKind::Inner).len(),
            1
        );
    }

    #[test]
    fn left_outer() {
        assert_eq!(
            join(&[(1, 1), (2, 2)], &[(2, 9)], JoinKind::LeftOuter).len(),
            2
        );
    }

    #[test]
    fn full_outer() {
        assert_eq!(join(&[(1, 1)], &[(2, 9)], JoinKind::FullOuter).len(), 2);
    }

    #[test]
    fn unordered_inputs_fine() {
        // NL join does not require sorted inputs.
        assert_eq!(
            join(&[(2, 2), (1, 1)], &[(3, 9), (2, 9)], JoinKind::Inner).len(),
            1
        );
    }
}
