//! Nested loops join — the semantic reference implementation.
//!
//! Used by the optimizer as a (rarely winning) physical alternative and by
//! the property-test suite as the oracle merge/hash joins are checked
//! against.

use super::JoinKind;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple, Value};

/// Materializing nested-loops join (inner side buffered).
pub struct NestedLoopsJoin {
    left: BoxOp,
    left_key: KeySpec,
    right_key: KeySpec,
    kind: JoinKind,
    schema: Schema,
    right_schema_len: usize,
    right_rows: Option<Vec<(Tuple, std::cell::Cell<bool>)>>,
    right_source: Option<BoxOp>,
    pending: std::vec::IntoIter<Tuple>,
    drained_right: bool,
    left_stash: Stash,
    batch: usize,
}

impl NestedLoopsJoin {
    /// Builds an NL join on positional equality keys.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: KeySpec,
        right_key: KeySpec,
        kind: JoinKind,
    ) -> Self {
        assert_eq!(left_key.len(), right_key.len());
        let schema = left.schema().join(right.schema());
        NestedLoopsJoin {
            left,
            left_key,
            right_key,
            kind,
            schema,
            right_schema_len: right.schema().len(),
            right_rows: None,
            right_source: Some(right),
            pending: Vec::new().into_iter(),
            drained_right: false,
            left_stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    fn keys_match(&self, l: &Tuple, r: &Tuple) -> bool {
        self.left_key
            .cols()
            .iter()
            .zip(self.right_key.cols())
            .all(|(&lc, &rc)| {
                let (lv, rv) = (l.get(lc), r.get(rc));
                !lv.is_null() && !rv.is_null() && lv == rv
            })
    }
}

impl NestedLoopsJoin {
    /// Buffers the inner side, pulling in the given granularity.
    fn materialize_right(&mut self, batched: bool) -> Result<()> {
        if self.right_rows.is_none() {
            let mut src = self.right_source.take().expect("materialize once");
            let mut stash = Stash::new();
            let mut rows = Vec::new();
            while let Some(t) = pull_row(&mut src, &mut stash, batched)? {
                rows.push((t, std::cell::Cell::new(false)));
            }
            self.right_rows = Some(rows);
        }
        Ok(())
    }

    /// Joins one left row against the buffered inner side, appending all
    /// produced rows (matches, or the outer pad) to `out`. Shared by both
    /// pull paths so match semantics can never diverge.
    fn join_left_row(&self, l: &Tuple, out: &mut Vec<Tuple>) {
        let rows = self.right_rows.as_ref().expect("materialized");
        let before = out.len();
        for (r, seen) in rows {
            if self.keys_match(l, r) {
                seen.set(true);
                out.push(l.concat(r));
            }
        }
        if out.len() == before && matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            out.push(l.concat(&Tuple::nulls(self.right_schema_len)));
        }
    }

    /// Processes one left row (or the full-outer drain), leaving produced
    /// rows in `self.pending`. `Ok(false)` means the stream is complete.
    fn step(&mut self, batched: bool) -> Result<bool> {
        self.materialize_right(batched)?;
        match pull_row(&mut self.left, &mut self.left_stash, batched)? {
            Some(l) => {
                let mut out = Vec::new();
                self.join_left_row(&l, &mut out);
                if !out.is_empty() {
                    self.pending = out.into_iter();
                }
                Ok(true)
            }
            None => {
                if self.drained_right {
                    return Ok(false);
                }
                self.drained_right = true;
                if matches!(self.kind, JoinKind::FullOuter) {
                    let rows = self.right_rows.as_ref().expect("materialized");
                    let pad_len = self.schema.len() - self.right_schema_len;
                    let pad = Tuple::nulls(pad_len);
                    let out: Vec<Tuple> = rows
                        .iter()
                        .filter(|(_, seen)| !seen.get())
                        .map(|(r, _)| pad.concat(r))
                        .collect();
                    if out.is_empty() {
                        return Ok(false);
                    }
                    self.pending = out.into_iter();
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }
}

impl Operator for NestedLoopsJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.next() {
                return Ok(Some(t));
            }
            if !self.step(false)? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        // Leftovers from the row path or the full-outer drain.
        let mut out: Vec<Tuple> = Vec::new();
        while out.len() < self.batch {
            match self.pending.next() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        if out.len() >= self.batch {
            return Ok(Some(out));
        }
        self.materialize_right(true)?;
        // Join loop: matched rows go straight into the output batch.
        while !self.drained_right && out.len() < self.batch {
            match pull_row(&mut self.left, &mut self.left_stash, true)? {
                Some(l) => {
                    self.join_left_row(&l, &mut out);
                }
                None => {
                    // Stage the full-outer drain through the shared path.
                    if !self.step(true)? && self.pending.len() == 0 {
                        break;
                    }
                    while out.len() < self.batch {
                        match self.pending.next() {
                            Some(t) => out.push(t),
                            None => break,
                        }
                    }
                    break;
                }
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

// Silence unused import warning for Value (used in keys_match via is_null).
#[allow(unused)]
fn _type_check(v: &Value) -> bool {
    v.is_null()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn join(l: &[(i64, i64)], r: &[(i64, i64)], kind: JoinKind) -> Vec<Tuple> {
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(l));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(r));
        let op = NestedLoopsJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            kind,
        );
        collect(Box::new(op)).unwrap()
    }

    #[test]
    fn inner() {
        assert_eq!(
            join(&[(1, 1), (2, 2)], &[(2, 9), (3, 9)], JoinKind::Inner).len(),
            1
        );
    }

    #[test]
    fn left_outer() {
        assert_eq!(
            join(&[(1, 1), (2, 2)], &[(2, 9)], JoinKind::LeftOuter).len(),
            2
        );
    }

    #[test]
    fn full_outer() {
        assert_eq!(join(&[(1, 1)], &[(2, 9)], JoinKind::FullOuter).len(), 2);
    }

    #[test]
    fn unordered_inputs_fine() {
        // NL join does not require sorted inputs.
        assert_eq!(
            join(&[(2, 2), (1, 1)], &[(3, 9), (2, 9)], JoinKind::Inner).len(),
            1
        );
    }
}
