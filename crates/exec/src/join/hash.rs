//! In-memory hash join (build/probe).
//!
//! The cost-model counterpart the optimizer weighs against merge joins; also
//! the plan shape SYS1 chose for Query 3 (paper Fig. 11a). Build side is
//! materialized into a hash table; NULL keys never match (and are emitted
//! padded by the outer variants).

use super::JoinKind;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple, Value};
use std::collections::HashMap;

/// Hash join; the **left** input is the build side.
pub struct HashJoin {
    right: BoxOp,
    left_schema_len: usize,
    right_schema_len: usize,
    left_key: KeySpec,
    right_key: KeySpec,
    kind: JoinKind,
    schema: Schema,
    state: Option<BuildState>,
    build_input: Option<BoxOp>,
    pending: std::vec::IntoIter<Tuple>,
    /// Full-outer only: after probe ends, emit unmatched build rows.
    drain_unmatched: bool,
    /// Reused probe-key buffer: the table lookup borrows it as a slice, so
    /// probing allocates nothing per row.
    probe_key: Vec<Value>,
    build_stash: Stash,
    probe_stash: Stash,
    batch: usize,
}

struct BuildState {
    table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>>,
    /// Build rows with NULL keys (never match; emitted by FULL OUTER).
    null_rows: Vec<Tuple>,
}

impl HashJoin {
    /// Builds a hash join of `left ⋈ right` on the positional keys.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: KeySpec,
        right_key: KeySpec,
        kind: JoinKind,
    ) -> Self {
        assert_eq!(left_key.len(), right_key.len());
        let schema = left.schema().join(right.schema());
        HashJoin {
            left_schema_len: left.schema().len(),
            right_schema_len: right.schema().len(),
            right,
            left_key,
            right_key,
            kind,
            schema,
            state: None,
            build_input: Some(left),
            pending: Vec::new().into_iter(),
            drain_unmatched: false,
            probe_key: Vec::new(),
            build_stash: Stash::new(),
            probe_stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    fn build(&mut self, batched: bool) -> Result<BuildState> {
        let mut input = self.build_input.take().expect("build once");
        let mut table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>> = HashMap::new();
        let mut null_rows = Vec::new();
        while let Some(t) = pull_row(&mut input, &mut self.build_stash, batched)? {
            let key = t.key(self.left_key.cols());
            if key.iter().any(Value::is_null) {
                null_rows.push(t);
            } else {
                table
                    .entry(key)
                    .or_default()
                    .push((t, std::cell::Cell::new(false)));
            }
        }
        Ok(BuildState { table, null_rows })
    }

    /// Probes one right row against the build table, appending all
    /// produced rows (matches, or the full-outer pad) to `out`. Shared by
    /// both pull paths so match semantics can never diverge.
    fn probe_row(&mut self, probe: &Tuple, out: &mut Vec<Tuple>) {
        probe.key_into(self.right_key.cols(), &mut self.probe_key);
        let state = self.state.as_ref().expect("built");
        let before = out.len();
        if !self.probe_key.iter().any(Value::is_null) {
            if let Some(matches) = state.table.get(self.probe_key.as_slice()) {
                for (l, seen) in matches {
                    seen.set(true);
                    out.push(l.concat(probe));
                }
            }
        }
        if out.len() == before && matches!(self.kind, JoinKind::FullOuter) {
            // Right row without partner.
            out.push(Tuple::nulls(self.left_schema_len).concat(probe));
        }
    }

    /// Probes one right row (or, at probe end, stages the outer-join
    /// drains), leaving produced rows in `self.pending`. `Ok(false)` means
    /// the stream is complete.
    fn step(&mut self, batched: bool) -> Result<bool> {
        if self.state.is_none() {
            let built = self.build(batched)?;
            self.state = Some(built);
        }
        if self.drain_unmatched {
            return Ok(false);
        }
        match pull_row(&mut self.right, &mut self.probe_stash, batched)? {
            Some(probe) => {
                let mut out = Vec::new();
                self.probe_row(&probe, &mut out);
                if !out.is_empty() {
                    self.pending = out.into_iter();
                }
            }
            None => {
                // Probe exhausted. Left/Full outer: emit unmatched build
                // rows once.
                self.drain_unmatched = true;
                if matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                    let state = self.state.as_ref().expect("built");
                    let pad = Tuple::nulls(self.right_schema_len);
                    let mut out: Vec<Tuple> = Vec::new();
                    for bucket in state.table.values() {
                        for (l, seen) in bucket {
                            if !seen.get() {
                                out.push(l.concat(&pad));
                            }
                        }
                    }
                    for l in &state.null_rows {
                        out.push(l.concat(&pad));
                    }
                    // Deterministic order for tests.
                    out.sort();
                    self.pending = out.into_iter();
                }
                if self.pending.len() == 0 {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.next() {
                return Ok(Some(t));
            }
            if !self.step(false)? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        // Leftovers from the row path or the unmatched-rows drain.
        let mut out: Vec<Tuple> = Vec::new();
        while out.len() < self.batch {
            match self.pending.next() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        if out.len() >= self.batch {
            return Ok(Some(out));
        }
        if self.state.is_none() {
            let built = self.build(true)?;
            self.state = Some(built);
        }
        // Probe loop: matches go straight into the output batch — no
        // per-probe-row staging vector. A probe row with several matches
        // may overshoot the batch size by one match set (allowed by the
        // trait contract).
        while !self.drain_unmatched && out.len() < self.batch {
            match pull_row(&mut self.right, &mut self.probe_stash, true)? {
                Some(probe) => {
                    self.probe_row(&probe, &mut out);
                }
                None => {
                    // Stage the outer-join drain through the shared path.
                    if !self.step(true)? && self.pending.len() == 0 {
                        break;
                    }
                    while out.len() < self.batch {
                        match self.pending.next() {
                            Some(t) => out.push(t),
                            None => break,
                        }
                    }
                    break;
                }
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn join(l: &[(i64, i64)], r: &[(i64, i64)], kind: JoinKind) -> Vec<Tuple> {
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(l));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(r));
        let op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            kind,
        );
        collect(Box::new(op)).unwrap()
    }

    #[test]
    fn inner_matches_merge_join_semantics() {
        let out = join(
            &[(1, 10), (2, 20), (4, 40)],
            &[(2, 200), (4, 400), (9, 900)],
            JoinKind::Inner,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn full_outer_emits_all() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (3, 300)],
            JoinKind::FullOuter,
        );
        // match on 2, unmatched 1 (left), unmatched 3 (right)
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn left_outer() {
        let out = join(&[(1, 10), (2, 20)], &[(2, 200)], JoinKind::LeftOuter);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_build_keys_dont_match() {
        let left = ValuesOp::new(
            Schema::ints(&["a", "b"]),
            vec![Tuple::new(vec![Value::Null, Value::Int(1)])],
        );
        let right = ValuesOp::new(
            Schema::ints(&["c", "d"]),
            vec![Tuple::new(vec![Value::Null, Value::Int(2)])],
        );
        let op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            JoinKind::FullOuter,
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 2, "both NULL rows padded, no match");
    }

    #[test]
    fn duplicate_keys_cross() {
        let out = join(&[(1, 1), (1, 2)], &[(1, 3), (1, 4)], JoinKind::Inner);
        assert_eq!(out.len(), 4);
    }
}
