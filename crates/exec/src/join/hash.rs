//! In-memory hash join (build/probe).
//!
//! The cost-model counterpart the optimizer weighs against merge joins; also
//! the plan shape SYS1 chose for Query 3 (paper Fig. 11a). Build side is
//! materialized into a hash table; NULL keys never match (and are emitted
//! padded by the outer variants).

use super::JoinKind;
use crate::op::{BoxOp, Operator};
use pyro_common::{KeySpec, Result, Schema, Tuple, Value};
use std::collections::HashMap;

/// Hash join; the **left** input is the build side.
pub struct HashJoin {
    right: BoxOp,
    left_schema_len: usize,
    right_schema_len: usize,
    left_key: KeySpec,
    right_key: KeySpec,
    kind: JoinKind,
    schema: Schema,
    state: Option<BuildState>,
    build_input: Option<BoxOp>,
    pending: std::vec::IntoIter<Tuple>,
    /// Full-outer only: after probe ends, emit unmatched build rows.
    drain_unmatched: bool,
}

struct BuildState {
    table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>>,
    /// Build rows with NULL keys (never match; emitted by FULL OUTER).
    null_rows: Vec<Tuple>,
}

impl HashJoin {
    /// Builds a hash join of `left ⋈ right` on the positional keys.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: KeySpec,
        right_key: KeySpec,
        kind: JoinKind,
    ) -> Self {
        assert_eq!(left_key.len(), right_key.len());
        let schema = left.schema().join(right.schema());
        HashJoin {
            left_schema_len: left.schema().len(),
            right_schema_len: right.schema().len(),
            right,
            left_key,
            right_key,
            kind,
            schema,
            state: None,
            build_input: Some(left),
            pending: Vec::new().into_iter(),
            drain_unmatched: false,
        }
    }

    fn build(&mut self) -> Result<BuildState> {
        let mut input = self.build_input.take().expect("build once");
        let mut table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>> = HashMap::new();
        let mut null_rows = Vec::new();
        while let Some(t) = input.next()? {
            let key = t.key(self.left_key.cols());
            if key.iter().any(Value::is_null) {
                null_rows.push(t);
            } else {
                table
                    .entry(key)
                    .or_default()
                    .push((t, std::cell::Cell::new(false)));
            }
        }
        Ok(BuildState { table, null_rows })
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.next() {
                return Ok(Some(t));
            }
            if self.state.is_none() {
                self.state = Some(self.build()?);
            }
            if self.drain_unmatched {
                return Ok(None);
            }
            match self.right.next()? {
                Some(probe) => {
                    let key = probe.key(self.right_key.cols());
                    let state = self.state.as_ref().expect("built");
                    let mut out = Vec::new();
                    if !key.iter().any(Value::is_null) {
                        if let Some(matches) = state.table.get(&key) {
                            for (l, seen) in matches {
                                seen.set(true);
                                out.push(l.concat(&probe));
                            }
                        }
                    }
                    if out.is_empty() && matches!(self.kind, JoinKind::FullOuter) {
                        // Right row without partner.
                        out.push(Tuple::nulls(self.left_schema_len).concat(&probe));
                    }
                    if !out.is_empty() {
                        self.pending = out.into_iter();
                    }
                }
                None => {
                    // Probe exhausted. Left/Full outer: emit unmatched build
                    // rows once.
                    self.drain_unmatched = true;
                    if matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                        let state = self.state.as_ref().expect("built");
                        let pad = Tuple::nulls(self.right_schema_len);
                        let mut out: Vec<Tuple> = Vec::new();
                        for bucket in state.table.values() {
                            for (l, seen) in bucket {
                                if !seen.get() {
                                    out.push(l.concat(&pad));
                                }
                            }
                        }
                        for l in &state.null_rows {
                            out.push(l.concat(&pad));
                        }
                        // Deterministic order for tests.
                        out.sort();
                        self.pending = out.into_iter();
                    }
                    if self.pending.len() == 0 {
                        return Ok(None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn join(l: &[(i64, i64)], r: &[(i64, i64)], kind: JoinKind) -> Vec<Tuple> {
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(l));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(r));
        let op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            kind,
        );
        collect(Box::new(op)).unwrap()
    }

    #[test]
    fn inner_matches_merge_join_semantics() {
        let out = join(
            &[(1, 10), (2, 20), (4, 40)],
            &[(2, 200), (4, 400), (9, 900)],
            JoinKind::Inner,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn full_outer_emits_all() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (3, 300)],
            JoinKind::FullOuter,
        );
        // match on 2, unmatched 1 (left), unmatched 3 (right)
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn left_outer() {
        let out = join(&[(1, 10), (2, 20)], &[(2, 200)], JoinKind::LeftOuter);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_build_keys_dont_match() {
        let left = ValuesOp::new(
            Schema::ints(&["a", "b"]),
            vec![Tuple::new(vec![Value::Null, Value::Int(1)])],
        );
        let right = ValuesOp::new(
            Schema::ints(&["c", "d"]),
            vec![Tuple::new(vec![Value::Null, Value::Int(2)])],
        );
        let op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            JoinKind::FullOuter,
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 2, "both NULL rows padded, no match");
    }

    #[test]
    fn duplicate_keys_cross() {
        let out = join(&[(1, 1), (1, 2)], &[(1, 3), (1, 4)], JoinKind::Inner);
        assert_eq!(out.len(), 4);
    }
}
