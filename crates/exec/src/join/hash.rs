//! In-memory hash join (build/probe).
//!
//! The cost-model counterpart the optimizer weighs against merge joins; also
//! the plan shape SYS1 chose for Query 3 (paper Fig. 11a). Build side is
//! materialized into a hash table; NULL keys never match (and are emitted
//! padded by the outer variants).

use super::JoinKind;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{
    ColumnBuilder, ColumnData, ColumnVec, ColumnarBatch, KeySpec, Result, Schema, Tuple, Value,
};
use std::collections::HashMap;

/// Hash join; the **left** input is the build side.
pub struct HashJoin {
    right: BoxOp,
    left_schema_len: usize,
    right_schema_len: usize,
    left_key: KeySpec,
    right_key: KeySpec,
    kind: JoinKind,
    schema: Schema,
    state: Option<BuildState>,
    build_input: Option<BoxOp>,
    pending: std::vec::IntoIter<Tuple>,
    /// Full-outer only: after probe ends, emit unmatched build rows.
    drain_unmatched: bool,
    /// Reused probe-key buffer: the table lookup borrows it as a slice, so
    /// probing allocates nothing per row.
    probe_key: Vec<Value>,
    build_stash: Stash,
    probe_stash: Stash,
    batch: usize,
    /// When set (by the plan compiler, inner joins over fully columnar
    /// subtrees only) the batch pull runs the vectorized build/probe kernel.
    columnar: bool,
    /// Vectorized build state; `None` until the first columnar pull.
    col_build: Option<ColBuild>,
    /// The probe batch currently being walked: `(batch, selection, cursor)`.
    probe_pos: Option<(ColumnarBatch, Vec<u32>, usize)>,
}

struct BuildState {
    table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>>,
    /// Build rows with NULL keys (never match; emitted by FULL OUTER).
    null_rows: Vec<Tuple>,
}

/// Result of the columnar build phase.
enum ColBuild {
    /// Every build-key column came back integer-typed: tight chained hash
    /// table over flattened `i64` keys.
    Vector(VectorTable),
    /// Non-integer build keys present — the row table (in `state`) is
    /// authoritative and the columnar pull shims through the row probe.
    RowFallback,
}

/// A chained hash table over the concatenated build side, all in flat
/// vectors: `first[bucket]` heads a chain threaded through `next[row]`.
/// Rows are inserted in *reverse* arrival order so walking a chain yields
/// ascending build-arrival order — exactly the bucket order the row path
/// emits matches in.
struct VectorTable {
    /// Concatenated build columns (physical rows, no selection).
    cols: Vec<ColumnVec>,
    /// Flattened keys, row-major: `keys[row * k .. row * k + k]`.
    keys: Vec<i64>,
    k: usize,
    first: Vec<u32>,
    next: Vec<u32>,
    mask: usize,
}

const NIL: u32 = u32::MAX;

/// Multiply-xorshift hash over `k` flattened key words (kernel-internal —
/// nothing about it leaks into row-path semantics).
#[inline]
fn hash_keys(keys: &[i64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &x in keys {
        h ^= x as u64;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h
}

impl VectorTable {
    fn build(cols: Vec<ColumnVec>, key_cols: &[usize]) -> VectorTable {
        let n = cols.first().map_or(0, ColumnVec::len);
        let k = key_cols.len();
        let mut keys = vec![0i64; n * k];
        // A row with any NULL key word never matches and stays out of the
        // chains entirely (Inner join drops it).
        let mut valid = vec![true; n];
        for (j, &c) in key_cols.iter().enumerate() {
            let ColumnData::Int(v) = cols[c].data() else {
                unreachable!("vector table requires integer key columns");
            };
            let nulls = cols[c].nulls();
            for i in 0..n {
                keys[i * k + j] = v[i];
                if nulls.get(i) {
                    valid[i] = false;
                }
            }
        }
        let cap = (n.max(1) * 2).next_power_of_two();
        let mut first = vec![NIL; cap];
        let mut next = vec![NIL; n];
        for i in (0..n).rev() {
            if !valid[i] {
                continue;
            }
            let b = (hash_keys(&keys[i * k..i * k + k]) as usize) & (cap - 1);
            next[i] = first[b];
            first[b] = i as u32;
        }
        VectorTable {
            cols,
            keys,
            k,
            first,
            next,
            mask: cap - 1,
        }
    }

    /// Appends the build-row indices matching `key` to `out`, in build
    /// arrival order.
    #[inline]
    fn matches_into(&self, key: &[i64], out: &mut Vec<u32>) {
        let mut slot = self.first[(hash_keys(key) as usize) & self.mask];
        while slot != NIL {
            let i = slot as usize;
            if self.keys[i * self.k..i * self.k + self.k] == *key {
                out.push(slot);
            }
            slot = self.next[i];
        }
    }
}

/// One probe-side key column, resolved to its fastest access form once per
/// probe batch.
enum ProbeKeyCol<'a> {
    /// Integer column: value + null bit.
    Int(&'a [i64], &'a pyro_common::NullBitmap),
    /// Heterogeneous column: only `Value::Int` cells can match.
    Mixed(&'a [Value]),
    /// Double/Str typed column: no cell can equal an integer build key
    /// (join equality is `Value` equality, which never crosses types).
    Never,
}

impl ProbeKeyCol<'_> {
    /// The key word for row `i`, or `None` when the row cannot match.
    #[inline]
    fn word(&self, i: usize) -> Option<i64> {
        match self {
            ProbeKeyCol::Int(v, nulls) => (!nulls.get(i)).then(|| v[i]),
            ProbeKeyCol::Mixed(vals) => match &vals[i] {
                Value::Int(x) => Some(*x),
                _ => None,
            },
            ProbeKeyCol::Never => None,
        }
    }
}

impl HashJoin {
    /// Builds a hash join of `left ⋈ right` on the positional keys.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: KeySpec,
        right_key: KeySpec,
        kind: JoinKind,
    ) -> Self {
        assert_eq!(left_key.len(), right_key.len());
        let schema = left.schema().join(right.schema());
        HashJoin {
            left_schema_len: left.schema().len(),
            right_schema_len: right.schema().len(),
            right,
            left_key,
            right_key,
            kind,
            schema,
            state: None,
            build_input: Some(left),
            pending: Vec::new().into_iter(),
            drain_unmatched: false,
            probe_key: Vec::new(),
            build_stash: Stash::new(),
            probe_stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
            columnar: false,
            col_build: None,
            probe_pos: None,
        }
    }

    /// Routes this operator's batch pull through the vectorized build/probe
    /// kernel. Only honoured for inner joins (outer pads need the row
    /// table's seen-bits); set only when both subtrees support native
    /// columnar pulls.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on && matches!(self.kind, JoinKind::Inner);
    }

    fn build(&mut self, batched: bool) -> Result<BuildState> {
        let mut input = self.build_input.take().expect("build once");
        let mut table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>> = HashMap::new();
        let mut null_rows = Vec::new();
        while let Some(t) = pull_row(&mut input, &mut self.build_stash, batched)? {
            let key = t.key(self.left_key.cols());
            if key.iter().any(Value::is_null) {
                null_rows.push(t);
            } else {
                table
                    .entry(key)
                    .or_default()
                    .push((t, std::cell::Cell::new(false)));
            }
        }
        Ok(BuildState { table, null_rows })
    }

    /// Probes one right row against the build table, appending all
    /// produced rows (matches, or the full-outer pad) to `out`. Shared by
    /// both pull paths so match semantics can never diverge.
    fn probe_row(&mut self, probe: &Tuple, out: &mut Vec<Tuple>) {
        probe.key_into(self.right_key.cols(), &mut self.probe_key);
        let state = self.state.as_ref().expect("built");
        let before = out.len();
        if !self.probe_key.iter().any(Value::is_null) {
            if let Some(matches) = state.table.get(self.probe_key.as_slice()) {
                for (l, seen) in matches {
                    seen.set(true);
                    out.push(l.concat(probe));
                }
            }
        }
        if out.len() == before && matches!(self.kind, JoinKind::FullOuter) {
            // Right row without partner.
            out.push(Tuple::nulls(self.left_schema_len).concat(probe));
        }
    }

    /// Probes one right row (or, at probe end, stages the outer-join
    /// drains), leaving produced rows in `self.pending`. `Ok(false)` means
    /// the stream is complete.
    fn step(&mut self, batched: bool) -> Result<bool> {
        if self.state.is_none() {
            let built = self.build(batched)?;
            self.state = Some(built);
        }
        if self.drain_unmatched {
            return Ok(false);
        }
        match pull_row(&mut self.right, &mut self.probe_stash, batched)? {
            Some(probe) => {
                let mut out = Vec::new();
                self.probe_row(&probe, &mut out);
                if !out.is_empty() {
                    self.pending = out.into_iter();
                }
            }
            None => {
                // Probe exhausted. Left/Full outer: emit unmatched build
                // rows once.
                self.drain_unmatched = true;
                if matches!(self.kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
                    let state = self.state.as_ref().expect("built");
                    let pad = Tuple::nulls(self.right_schema_len);
                    let mut out: Vec<Tuple> = Vec::new();
                    for bucket in state.table.values() {
                        for (l, seen) in bucket {
                            if !seen.get() {
                                out.push(l.concat(&pad));
                            }
                        }
                    }
                    for l in &state.null_rows {
                        out.push(l.concat(&pad));
                    }
                    // Deterministic order for tests.
                    out.sort();
                    self.pending = out.into_iter();
                }
                if self.pending.len() == 0 {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Columnar build: drains the left input's columnar stream into one
    /// concatenated set of owned columns (batch arrival order — identical
    /// to the row build's pull order), then picks the table form. Integer
    /// key columns get the flat chained table; anything else materializes
    /// the same rows into the row table and the probe shims through the
    /// row path.
    fn build_columnar(&mut self) -> Result<()> {
        let mut input = self.build_input.take().expect("build once");
        let mut builders: Vec<ColumnBuilder> = (0..self.left_schema_len)
            .map(|_| ColumnBuilder::new())
            .collect();
        while let Some(b) = input.next_columnar()? {
            for (c, builder) in builders.iter_mut().enumerate() {
                builder.append_column(b.column(c), b.sel());
            }
        }
        let cols: Vec<ColumnVec> = builders.into_iter().map(ColumnBuilder::finish).collect();
        let all_int = self
            .left_key
            .cols()
            .iter()
            .all(|&c| matches!(cols[c].data(), ColumnData::Int(_)));
        if all_int {
            self.col_build = Some(ColBuild::Vector(VectorTable::build(
                cols,
                self.left_key.cols(),
            )));
            return Ok(());
        }
        // Row fallback: rebuild the exact row stream and hand it to the row
        // table so match semantics (Value equality, NULL handling) cannot
        // diverge from the row path.
        let n = cols.first().map_or(0, ColumnVec::len);
        let mut table: HashMap<Vec<Value>, Vec<(Tuple, std::cell::Cell<bool>)>> = HashMap::new();
        let mut null_rows = Vec::new();
        for i in 0..n {
            let t = Tuple::new(cols.iter().map(|c| c.value_at(i)).collect());
            let key = t.key(self.left_key.cols());
            if key.iter().any(Value::is_null) {
                null_rows.push(t);
            } else {
                table
                    .entry(key)
                    .or_default()
                    .push((t, std::cell::Cell::new(false)));
            }
        }
        self.state = Some(BuildState { table, null_rows });
        self.col_build = Some(ColBuild::RowFallback);
        Ok(())
    }

    /// The row-granularity batch pull (original path); also serves the
    /// columnar pull's row fallback.
    fn next_batch_rows(&mut self) -> Result<Option<Vec<Tuple>>> {
        // Leftovers from the row path or the unmatched-rows drain.
        let mut out: Vec<Tuple> = Vec::new();
        while out.len() < self.batch {
            match self.pending.next() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        if out.len() >= self.batch {
            return Ok(Some(out));
        }
        if self.state.is_none() {
            let built = self.build(true)?;
            self.state = Some(built);
        }
        // Probe loop: matches go straight into the output batch — no
        // per-probe-row staging vector. A probe row with several matches
        // may overshoot the batch size by one match set (allowed by the
        // trait contract).
        while !self.drain_unmatched && out.len() < self.batch {
            match pull_row(&mut self.right, &mut self.probe_stash, true)? {
                Some(probe) => {
                    self.probe_row(&probe, &mut out);
                }
                None => {
                    // Stage the outer-join drain through the shared path.
                    if !self.step(true)? && self.pending.len() == 0 {
                        break;
                    }
                    while out.len() < self.batch {
                        match self.pending.next() {
                            Some(t) => out.push(t),
                            None => break,
                        }
                    }
                    break;
                }
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    /// Walks the current probe batch from `cursor`, appending matched
    /// `(build_row, probe_row)` index pairs until the output would reach
    /// the batch size (each probe row's match set lands whole — the
    /// overshoot the trait contract allows). Returns the new cursor.
    #[allow(clippy::too_many_arguments)]
    fn probe_kernel(
        table: &VectorTable,
        batch: &ColumnarBatch,
        sel: &[u32],
        mut cursor: usize,
        key_cols: &[usize],
        target: usize,
        build_idx: &mut Vec<u32>,
        probe_idx: &mut Vec<u32>,
    ) -> usize {
        let key_views: Vec<ProbeKeyCol<'_>> = key_cols
            .iter()
            .map(|&c| {
                let col = batch.column(c);
                match col.data() {
                    ColumnData::Int(v) => ProbeKeyCol::Int(v, col.nulls()),
                    ColumnData::Mixed(vals) => ProbeKeyCol::Mixed(vals),
                    ColumnData::Double(_) | ColumnData::Str(_) => ProbeKeyCol::Never,
                }
            })
            .collect();
        let mut key = vec![0i64; key_cols.len()];
        'rows: while cursor < sel.len() {
            if build_idx.len() >= target {
                break;
            }
            let row = sel[cursor] as usize;
            cursor += 1;
            for (slot, view) in key.iter_mut().zip(&key_views) {
                match view.word(row) {
                    Some(w) => *slot = w,
                    None => continue 'rows,
                }
            }
            let before = build_idx.len();
            table.matches_into(&key, build_idx);
            for _ in before..build_idx.len() {
                probe_idx.push(row as u32);
            }
        }
        cursor
    }

    /// Gathers the matched rows column-at-a-time: build columns indexed by
    /// `build_idx`, probe columns by `probe_idx`.
    fn gather_output(
        &self,
        table: &VectorTable,
        probe: &ColumnarBatch,
        build_idx: &[u32],
        probe_idx: &[u32],
    ) -> ColumnarBatch {
        let mut builders: Vec<ColumnBuilder> = (0..self.schema.len())
            .map(|_| ColumnBuilder::new())
            .collect();
        for (c, builder) in builders.iter_mut().enumerate().take(self.left_schema_len) {
            builder.append_column(&table.cols[c], Some(build_idx));
        }
        for (c, builder) in builders.iter_mut().enumerate().skip(self.left_schema_len) {
            builder.append_column(probe.column(c - self.left_schema_len), Some(probe_idx));
        }
        ColumnarBatch::from_builders(builders)
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.pending.next() {
                return Ok(Some(t));
            }
            if !self.step(false)? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.columnar {
            return Ok(self.next_columnar()?.map(|b| b.to_rows()));
        }
        self.next_batch_rows()
    }

    /// Vectorized inner join. Build concatenates the left stream's columns
    /// once; probing extracts integer key words per probe batch, walks the
    /// flat chains, and gathers output column-at-a-time. Emission order is
    /// the row path's exactly: probe stream order, matches per probe row in
    /// build arrival order. Non-integer build keys shim through the row
    /// probe (`RowFallback`).
    fn next_columnar(&mut self) -> Result<Option<ColumnarBatch>> {
        if !matches!(self.kind, JoinKind::Inner) {
            // Outer pads need the row table's seen-bits; shim.
            return Ok(self
                .next_batch_rows()?
                .map(|b| ColumnarBatch::from_rows(&b)));
        }
        if self.col_build.is_none() {
            self.build_columnar()?;
        }
        // Detach the build state so the probe loop can borrow `self`
        // mutably (pulling the right child) while reading the table.
        let built = self.col_build.take().expect("built");
        let result = self.probe_columnar(&built);
        self.col_build = Some(built);
        result
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

impl HashJoin {
    fn probe_columnar(&mut self, built: &ColBuild) -> Result<Option<ColumnarBatch>> {
        let table = match built {
            ColBuild::RowFallback => {
                return Ok(self
                    .next_batch_rows()?
                    .map(|b| ColumnarBatch::from_rows(&b)));
            }
            ColBuild::Vector(t) => t,
        };
        let mut build_idx: Vec<u32> = Vec::new();
        let mut probe_idx: Vec<u32> = Vec::new();
        loop {
            if let Some((pb, sel, cursor)) = self.probe_pos.take() {
                let new_cursor = Self::probe_kernel(
                    table,
                    &pb,
                    &sel,
                    cursor,
                    self.right_key.cols(),
                    self.batch,
                    &mut build_idx,
                    &mut probe_idx,
                );
                let exhausted = new_cursor >= sel.len();
                if !exhausted {
                    // More rows remain in this batch; the output target was
                    // reached. Gather before putting the batch back.
                    let out = self.gather_output(table, &pb, &build_idx, &probe_idx);
                    self.probe_pos = Some((pb, sel, new_cursor));
                    return Ok(Some(out));
                }
                if !build_idx.is_empty() {
                    return Ok(Some(self.gather_output(table, &pb, &build_idx, &probe_idx)));
                }
                // Batch fully probed with no matches: fall through to pull
                // the next one.
            }
            match self.right.next_columnar()? {
                Some(pb) => {
                    let sel = pb.sel_vec();
                    self.probe_pos = Some((pb, sel, 0));
                }
                None => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn join(l: &[(i64, i64)], r: &[(i64, i64)], kind: JoinKind) -> Vec<Tuple> {
        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(l));
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), rows(r));
        let op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            kind,
        );
        collect(Box::new(op)).unwrap()
    }

    #[test]
    fn inner_matches_merge_join_semantics() {
        let out = join(
            &[(1, 10), (2, 20), (4, 40)],
            &[(2, 200), (4, 400), (9, 900)],
            JoinKind::Inner,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn full_outer_emits_all() {
        let out = join(
            &[(1, 10), (2, 20)],
            &[(2, 200), (3, 300)],
            JoinKind::FullOuter,
        );
        // match on 2, unmatched 1 (left), unmatched 3 (right)
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn left_outer() {
        let out = join(&[(1, 10), (2, 20)], &[(2, 200)], JoinKind::LeftOuter);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn null_build_keys_dont_match() {
        let left = ValuesOp::new(
            Schema::ints(&["a", "b"]),
            vec![Tuple::new(vec![Value::Null, Value::Int(1)])],
        );
        let right = ValuesOp::new(
            Schema::ints(&["c", "d"]),
            vec![Tuple::new(vec![Value::Null, Value::Int(2)])],
        );
        let op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            JoinKind::FullOuter,
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 2, "both NULL rows padded, no match");
    }

    #[test]
    fn duplicate_keys_cross() {
        let out = join(&[(1, 1), (1, 2)], &[(1, 3), (1, 4)], JoinKind::Inner);
        assert_eq!(out.len(), 4);
    }

    /// The vectorized columnar pull must emit the row batch pull's rows in
    /// the row batch pull's order — duplicate keys, NULL keys, multi-column
    /// keys, and sub-batch-size output slices included.
    #[test]
    fn columnar_pull_matches_row_pull() {
        use crate::op::collect_batched;

        let left_rows: Vec<Tuple> = (0..200)
            .map(|i| {
                Tuple::new(vec![
                    if i % 17 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 23)
                    },
                    Value::Int(i),
                ])
            })
            .collect();
        let right_rows: Vec<Tuple> = (0..150)
            .map(|i| {
                Tuple::new(vec![
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i % 29)
                    },
                    Value::Int(1000 + i),
                ])
            })
            .collect();
        let make = |columnar: bool, batch: usize| {
            let left = ValuesOp::new(Schema::ints(&["a", "b"]), left_rows.clone());
            let right = ValuesOp::new(Schema::ints(&["c", "d"]), right_rows.clone());
            let mut op = HashJoin::new(
                Box::new(left),
                Box::new(right),
                KeySpec::new(vec![0]),
                KeySpec::new(vec![0]),
                JoinKind::Inner,
            );
            op.set_columnar(columnar);
            op.set_batch_size(batch);
            Box::new(op)
        };
        let reference = collect_batched(make(false, 1024)).unwrap();
        assert!(!reference.is_empty());
        for batch in [1usize, 7, 1024] {
            let out = collect_batched(make(true, batch)).unwrap();
            assert_eq!(reference, out, "batch size {batch}");
        }
    }

    /// Non-integer build keys take the row-table fallback inside the
    /// columnar pull and must still match the row path exactly.
    #[test]
    fn columnar_fallback_on_string_keys_matches_row_pull() {
        use crate::op::collect_batched;
        use pyro_common::{Column, DataType};

        let schema = |a: &str, b: &str| {
            Schema::new(vec![
                Column::new(a, DataType::Str),
                Column::new(b, DataType::Int),
            ])
        };
        let left_rows: Vec<Tuple> = (0..40)
            .map(|i| {
                Tuple::new(vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("k{}", i % 9))
                    },
                    Value::Int(i),
                ])
            })
            .collect();
        let right_rows: Vec<Tuple> = (0..30)
            .map(|i| {
                Tuple::new(vec![
                    Value::Str(format!("k{}", i % 12)),
                    Value::Int(100 + i),
                ])
            })
            .collect();
        let make = |columnar: bool| {
            let left = ValuesOp::new(schema("a", "b"), left_rows.clone());
            let right = ValuesOp::new(schema("c", "d"), right_rows.clone());
            let mut op = HashJoin::new(
                Box::new(left),
                Box::new(right),
                KeySpec::new(vec![0]),
                KeySpec::new(vec![0]),
                JoinKind::Inner,
            );
            op.set_columnar(columnar);
            Box::new(op)
        };
        let reference = collect_batched(make(false)).unwrap();
        assert!(!reference.is_empty());
        assert_eq!(reference, collect_batched(make(true)).unwrap());
    }

    /// Int build keys never match Double/Str probe cells (`Value` equality
    /// is typed), and the vectorized probe must agree.
    #[test]
    fn columnar_probe_type_mismatch_never_matches() {
        use crate::op::collect_batched;

        let left = ValuesOp::new(Schema::ints(&["a", "b"]), rows(&[(1, 10), (2, 20)]));
        let right_rows = vec![
            Tuple::new(vec![Value::Double(1.0), Value::Int(0)]),
            Tuple::new(vec![Value::Int(2), Value::Int(1)]),
            Tuple::new(vec![Value::Null, Value::Int(2)]),
        ];
        let right = ValuesOp::new(Schema::ints(&["c", "d"]), right_rows);
        let mut op = HashJoin::new(
            Box::new(left),
            Box::new(right),
            KeySpec::new(vec![0]),
            KeySpec::new(vec![0]),
            JoinKind::Inner,
        );
        op.set_columnar(true);
        let out = collect_batched(Box::new(op)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Value::Int(2));
    }
}
