//! Exchange operators for shared-nothing intra-query parallelism.
//!
//! Three shapes, all built on `std::thread` + bounded `std::sync::mpsc`
//! channels (zero external deps):
//!
//! * [`Gather`] — runs N worker [`Fragment`]s to completion and streams
//!   their output batches in arrival order. Used when no consumer above the
//!   exchange is sequence-sensitive, so any interleaving is acceptable
//!   (rows are a multiset-faithful reproduction of serial execution).
//! * [`GatherMerge`] — runs N workers whose individual streams are sorted
//!   on a declared key and k-way-merges them, breaking ties toward the
//!   lowest worker index. With workers over *contiguous* input ranges this
//!   reproduces the serial row sequence exactly, which is what lets
//!   order-sensitive consumers (merge joins, partial sorts, group
//!   aggregates) run unchanged above a parallel scan.
//! * [`repartition`] — hash-partitions N producer fragments' rows across M
//!   consumer [`PartitionSource`]s (the build/probe feeds of a partitioned
//!   hash join), using a deterministic FNV-1a key hash so both sides of a
//!   join route equal keys to the same partition in every run.
//!
//! **Metrics rule.** Worker fragments never touch the pipeline's shared
//! [`ExecMetrics`]: each fragment charges its own block, and the exchange
//! that owns the workers folds those blocks into the pipeline metrics — in
//! worker-index order — when the last fragment finishes. The exchange's own
//! bookkeeping (merge comparisons, partition hashing) is parallelization
//! infrastructure, not the paper's order-enforcement work, and is charged
//! nowhere. Together with the compiler's rule that parallel fragments
//! contain only counter-free operators (scans, filters, projections, hash
//! joins), this keeps all four counters bit-identical to `workers = 1`.

use crate::metrics::{ExecMetrics, MetricsRef};
use crate::op::{BoxOp, Operator};
use pyro_common::{KeySpec, Result, Schema, Tuple};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Batches (or an error) in flight between a worker and its consumer.
type Msg = Result<Vec<Tuple>>;

/// The row-path shim every exchange operator shares: drain the operator's
/// `pending` buffer, refilling it one `next_batch` at a time. A macro
/// rather than a helper because the refill needs `&mut self` while the
/// buffer is a field of the same `self`.
macro_rules! row_path_via_pending {
    () => {
        fn next(&mut self) -> Result<Option<Tuple>> {
            loop {
                if let Some(t) = self.pending.next() {
                    return Ok(Some(t));
                }
                match self.next_batch()? {
                    Some(batch) => self.pending = batch.into_iter(),
                    None => return Ok(None),
                }
            }
        }
    };
}

/// A compiled operator tree destined for one worker thread, paired with the
/// private counter block everything in the tree charges.
pub struct Fragment {
    /// The worker's operator tree.
    pub op: BoxOp,
    /// The worker's private metrics, merged into the pipeline block by the
    /// owning exchange at teardown.
    pub metrics: MetricsRef,
}

impl Fragment {
    /// Pairs an operator tree with a fresh private counter block.
    pub fn new(op: BoxOp) -> Fragment {
        Fragment {
            op,
            metrics: ExecMetrics::new(),
        }
    }
}

/// Deterministic 64-bit FNV-1a hash of the key columns of a tuple, over the
/// same tag + payload-bits encoding `Value`'s `Hash` impl uses — so rows
/// that are equal as hash-join keys land in the same partition, in every
/// process and every run.
pub fn hash_key(t: &Tuple, cols: &[usize]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for &c in cols {
        match t.get(c) {
            pyro_common::Value::Null => eat(&[0]),
            pyro_common::Value::Int(i) => {
                eat(&[1]);
                eat(&i.to_le_bytes());
            }
            pyro_common::Value::Double(d) => {
                eat(&[2]);
                eat(&d.to_bits().to_le_bytes());
            }
            pyro_common::Value::Str(s) => {
                eat(&[3]);
                eat(s.as_bytes());
                eat(&[0xff]);
            }
        }
    }
    h
}

/// Drives one worker fragment to completion, pushing batches downstream.
/// A failed send means the consumer is gone (completion or abort): exit.
fn drive(mut op: BoxOp, tx: SyncSender<Msg>) {
    loop {
        match op.next_batch() {
            Ok(Some(batch)) => {
                if tx.send(Ok(batch)).is_err() {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

/// Joins finished worker threads and folds their private metrics into the
/// pipeline block, in worker-index order (the deterministic merge rule).
/// A worker panic re-raises on the consumer — results must never be
/// silently truncated — except while already unwinding (exchange teardown
/// runs from `Drop`), where a second panic would abort the process.
fn join_and_merge(handles: Vec<JoinHandle<()>>, metrics: &[MetricsRef], parent: &MetricsRef) {
    let mut worker_panic = None;
    for h in handles {
        if let Err(payload) = h.join() {
            worker_panic = Some(payload);
        }
    }
    for m in metrics {
        parent.merge_from(m);
    }
    if let Some(payload) = worker_panic {
        if !std::thread::panicking() {
            std::panic::resume_unwind(payload);
        }
    }
}

enum GatherState {
    Idle(Vec<Fragment>),
    Running {
        rx: Receiver<Msg>,
        handles: Vec<JoinHandle<()>>,
        metrics: Vec<MetricsRef>,
    },
    Done,
}

/// Unordered exchange: N worker fragments feed one output stream in
/// arrival order. Workers spawn lazily on the first pull and are joined —
/// and their metrics merged — when the stream ends (or on error/drop, so a
/// abandoned pipeline never leaks a thread).
pub struct Gather {
    schema: Schema,
    parent: MetricsRef,
    state: GatherState,
    /// Row-path leftovers (the exchange is batch-native).
    pending: std::vec::IntoIter<Tuple>,
    batch: usize,
}

impl Gather {
    /// An unordered exchange over `fragments`, merging worker metrics into
    /// `parent` at teardown.
    pub fn new(schema: Schema, fragments: Vec<Fragment>, parent: MetricsRef) -> Gather {
        Gather {
            schema,
            parent,
            state: GatherState::Idle(fragments),
            pending: Vec::new().into_iter(),
            batch: crate::op::DEFAULT_BATCH_SIZE,
        }
    }

    fn start(&mut self) {
        let GatherState::Idle(fragments) = std::mem::replace(&mut self.state, GatherState::Done)
        else {
            return;
        };
        let (tx, rx) = sync_channel::<Msg>(fragments.len().max(1) * 2);
        let mut handles = Vec::with_capacity(fragments.len());
        let mut metrics = Vec::with_capacity(fragments.len());
        for frag in fragments {
            metrics.push(frag.metrics.clone());
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || drive(frag.op, tx)));
        }
        self.state = GatherState::Running {
            rx,
            handles,
            metrics,
        };
    }

    /// Tears the exchange down: drops the receiver (unblocking any worker
    /// mid-send), joins all workers, merges their metrics.
    fn finish(&mut self) {
        if let GatherState::Running {
            rx,
            handles,
            metrics,
        } = std::mem::replace(&mut self.state, GatherState::Done)
        {
            drop(rx);
            join_and_merge(handles, &metrics, &self.parent);
        }
    }
}

impl Operator for Gather {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    row_path_via_pending!();

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        loop {
            match &mut self.state {
                GatherState::Idle(_) => self.start(),
                GatherState::Running { rx, .. } => match rx.recv() {
                    Ok(Ok(batch)) => return Ok(Some(batch)),
                    Ok(Err(e)) => {
                        self.finish();
                        return Err(e);
                    }
                    Err(_) => self.finish(),
                },
                GatherState::Done => return Ok(None),
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
        if let GatherState::Idle(fragments) = &mut self.state {
            for f in fragments {
                f.op.set_batch_size(self.batch);
            }
        }
    }
}

impl Drop for Gather {
    fn drop(&mut self) {
        self.finish();
    }
}

struct MergeInput {
    rx: Receiver<Msg>,
    buf: std::vec::IntoIter<Tuple>,
    head: Option<Tuple>,
    open: bool,
}

impl MergeInput {
    /// Ensures `head` holds this worker's next row unless its stream ended.
    fn refill(&mut self) -> Result<()> {
        while self.head.is_none() {
            if let Some(t) = self.buf.next() {
                self.head = Some(t);
                return Ok(());
            }
            if !self.open {
                return Ok(());
            }
            match self.rx.recv() {
                Ok(Ok(batch)) => self.buf = batch.into_iter(),
                Ok(Err(e)) => {
                    self.open = false;
                    return Err(e);
                }
                Err(_) => self.open = false,
            }
        }
        Ok(())
    }
}

enum MergeState {
    Idle(Vec<Fragment>),
    Running {
        inputs: Vec<MergeInput>,
        handles: Vec<JoinHandle<()>>,
        metrics: Vec<MetricsRef>,
    },
    Done,
}

/// Order-preserving exchange: each worker's stream is sorted on `key`; the
/// operator k-way-merges them, breaking key ties toward the lowest worker
/// index. Given workers over contiguous input ranges, the output sequence
/// is exactly the serial one. Merge comparisons are exchange overhead and
/// are deliberately **not** charged to `ExecMetrics` (see the module doc).
pub struct GatherMerge {
    schema: Schema,
    key: KeySpec,
    parent: MetricsRef,
    state: MergeState,
    pending: std::vec::IntoIter<Tuple>,
    batch: usize,
}

impl GatherMerge {
    /// An ordered exchange over `fragments`, each of which must produce
    /// rows sorted on `key`.
    pub fn new(
        schema: Schema,
        fragments: Vec<Fragment>,
        key: KeySpec,
        parent: MetricsRef,
    ) -> GatherMerge {
        GatherMerge {
            schema,
            key,
            parent,
            state: MergeState::Idle(fragments),
            pending: Vec::new().into_iter(),
            batch: crate::op::DEFAULT_BATCH_SIZE,
        }
    }

    fn start(&mut self) {
        let MergeState::Idle(fragments) = std::mem::replace(&mut self.state, MergeState::Done)
        else {
            return;
        };
        let mut inputs = Vec::with_capacity(fragments.len());
        let mut handles = Vec::with_capacity(fragments.len());
        let mut metrics = Vec::with_capacity(fragments.len());
        for frag in fragments {
            // One private channel per worker: the merge needs to know which
            // worker each batch came from.
            let (tx, rx) = sync_channel::<Msg>(2);
            metrics.push(frag.metrics.clone());
            handles.push(std::thread::spawn(move || drive(frag.op, tx)));
            inputs.push(MergeInput {
                rx,
                buf: Vec::new().into_iter(),
                head: None,
                open: true,
            });
        }
        self.state = MergeState::Running {
            inputs,
            handles,
            metrics,
        };
    }

    fn finish(&mut self) {
        if let MergeState::Running {
            inputs,
            handles,
            metrics,
        } = std::mem::replace(&mut self.state, MergeState::Done)
        {
            drop(inputs);
            join_and_merge(handles, &metrics, &self.parent);
        }
    }

    /// Pops the globally smallest head row (ties → lowest worker index), or
    /// `None` when every worker stream is exhausted.
    fn pop_min(&mut self) -> Result<Option<Tuple>> {
        let refilled = {
            let MergeState::Running { inputs, .. } = &mut self.state else {
                return Ok(None);
            };
            inputs.iter_mut().try_for_each(MergeInput::refill)
        };
        if let Err(e) = refilled {
            self.finish();
            return Err(e);
        }
        let MergeState::Running { inputs, .. } = &mut self.state else {
            return Ok(None);
        };
        let mut best: Option<usize> = None;
        for i in 0..inputs.len() {
            let Some(candidate) = &inputs[i].head else {
                continue;
            };
            best = Some(match best {
                None => i,
                Some(b) => {
                    let current = inputs[b].head.as_ref().expect("best has a head");
                    // Strictly-less keeps the earliest worker on ties.
                    if self.key.compare(candidate, current) == std::cmp::Ordering::Less {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        match best {
            Some(i) => Ok(inputs[i].head.take()),
            None => Ok(None),
        }
    }
}

impl Operator for GatherMerge {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    row_path_via_pending!();

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if let MergeState::Idle(_) = self.state {
            self.start();
        }
        if let MergeState::Done = self.state {
            return Ok(None);
        }
        let mut out = Vec::with_capacity(self.batch);
        while out.len() < self.batch {
            match self.pop_min()? {
                Some(t) => out.push(t),
                None => {
                    self.finish();
                    break;
                }
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
        if let MergeState::Idle(fragments) = &mut self.state {
            for f in fragments {
                f.op.set_batch_size(self.batch);
            }
        }
    }
}

impl Drop for GatherMerge {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Everything needed to launch the producer side of a repartition, parked
/// until the first consumer pulls.
struct RepartLaunch {
    producers: Vec<Fragment>,
    senders: Vec<SyncSender<Msg>>,
    key_cols: Arc<[usize]>,
    batch: usize,
}

/// State shared by the [`PartitionSource`]s of one repartition exchange.
/// The last source to drop joins the producer threads and merges their
/// metrics (all receivers are gone by then, so blocked producers unwind via
/// failed sends).
struct RepartCore {
    launch: Mutex<Option<RepartLaunch>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Vec<MetricsRef>,
    parent: MetricsRef,
}

impl RepartCore {
    /// Spawns the producer threads exactly once, on first demand.
    fn ensure_started(&self) {
        let mut launch = self.launch.lock().expect("repartition launch poisoned");
        let Some(l) = launch.take() else { return };
        let mut handles = self.handles.lock().expect("repartition handles poisoned");
        for frag in l.producers {
            let senders = l.senders.clone();
            let key_cols = l.key_cols.clone();
            let batch = l.batch;
            handles.push(std::thread::spawn(move || {
                route(frag.op, senders, &key_cols, batch)
            }));
        }
        // `l.senders` drops here: once every producer finishes, consumers
        // see their channels disconnect.
    }
}

impl Drop for RepartCore {
    fn drop(&mut self) {
        let mut producer_panic = None;
        for h in self
            .handles
            .get_mut()
            .expect("repartition handles poisoned")
            .drain(..)
        {
            if let Err(payload) = h.join() {
                producer_panic = Some(payload);
            }
        }
        for m in &self.metrics {
            self.parent.merge_from(m);
        }
        // A panicked producer closed its channels early, which consumers
        // read as a clean end of stream — re-raise so a truncated partition
        // can never pass as a complete result. This drop runs on whichever
        // thread released the last `PartitionSource` (typically a join
        // worker, whose panic the owning gather re-raises on the consumer);
        // skip only if that thread is already unwinding.
        if let Some(payload) = producer_panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// One producer thread: pulls its fragment's batches and routes each row to
/// the consumer owning `hash_key % partitions`, re-batching per consumer so
/// channel traffic stays amortized.
fn route(mut op: BoxOp, senders: Vec<SyncSender<Msg>>, key_cols: &[usize], batch: usize) {
    let n = senders.len();
    let mut outs: Vec<Vec<Tuple>> = (0..n).map(|_| Vec::with_capacity(batch)).collect();
    let mut alive = vec![true; n];
    loop {
        match op.next_batch() {
            Ok(Some(rows)) => {
                for t in rows {
                    let p = (hash_key(&t, key_cols) % n as u64) as usize;
                    if !alive[p] {
                        continue;
                    }
                    outs[p].push(t);
                    if outs[p].len() >= batch {
                        let full = std::mem::replace(&mut outs[p], Vec::with_capacity(batch));
                        if senders[p].send(Ok(full)).is_err() {
                            alive[p] = false;
                        }
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                for (p, s) in senders.iter().enumerate() {
                    if alive[p] {
                        let _ = s.send(Err(e.clone()));
                    }
                }
                return;
            }
        }
    }
    for (p, s) in senders.iter().enumerate() {
        if alive[p] && !outs[p].is_empty() {
            let _ = s.send(Ok(std::mem::take(&mut outs[p])));
        }
    }
}

/// One partition's stream out of a [`repartition`] exchange: an operator
/// yielding exactly the producer rows whose key hashes to this partition.
pub struct PartitionSource {
    // Field order matters: `rx` must drop before `core` so the last
    // source's receiver is gone when `RepartCore::drop` joins producers.
    rx: Receiver<Msg>,
    core: Arc<RepartCore>,
    schema: Schema,
    pending: std::vec::IntoIter<Tuple>,
    batch: usize,
    done: bool,
}

impl Operator for PartitionSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    row_path_via_pending!();

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.done {
            return Ok(None);
        }
        self.core.ensure_started();
        match self.rx.recv() {
            Ok(Ok(batch)) => Ok(Some(batch)),
            Ok(Err(e)) => {
                self.done = true;
                Err(e)
            }
            Err(_) => {
                self.done = true;
                Ok(None)
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

/// Splits the output of `producers` into `partitions` streams by a
/// deterministic hash of `key_cols`. Producer threads spawn lazily when any
/// partition is first pulled; their metrics merge into `parent` when the
/// last [`PartitionSource`] is dropped.
pub fn repartition(
    producers: Vec<Fragment>,
    key_cols: Vec<usize>,
    partitions: usize,
    batch: usize,
    schema: Schema,
    parent: MetricsRef,
) -> Vec<PartitionSource> {
    let partitions = partitions.max(1);
    let batch = batch.max(1);
    let metrics: Vec<MetricsRef> = producers.iter().map(|f| f.metrics.clone()).collect();
    let mut senders = Vec::with_capacity(partitions);
    let mut receivers = Vec::with_capacity(partitions);
    for _ in 0..partitions {
        let (tx, rx) = sync_channel::<Msg>(producers.len().max(1) * 2);
        senders.push(tx);
        receivers.push(rx);
    }
    let core = Arc::new(RepartCore {
        launch: Mutex::new(Some(RepartLaunch {
            producers,
            senders,
            key_cols: key_cols.into(),
            batch,
        })),
        handles: Mutex::new(Vec::new()),
        metrics,
        parent,
    });
    receivers
        .into_iter()
        .map(|rx| PartitionSource {
            rx,
            core: core.clone(),
            schema: schema.clone(),
            pending: Vec::new().into_iter(),
            batch,
            done: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, collect_batched, ValuesOp};
    use pyro_common::Value;

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i % 13), Value::Int(i)]))
            .collect()
    }

    fn fragments_over(chunks: Vec<Vec<Tuple>>) -> Vec<Fragment> {
        chunks
            .into_iter()
            .map(|c| Fragment::new(Box::new(ValuesOp::new(Schema::ints(&["k", "v"]), c))))
            .collect()
    }

    #[test]
    fn gather_yields_union_of_fragments() {
        let all = rows(100);
        let frags = fragments_over(vec![
            all[..40].to_vec(),
            all[40..41].to_vec(),
            Vec::new(),
            all[41..].to_vec(),
        ]);
        let parent = ExecMetrics::new();
        // Charge one fragment's private metrics to watch the merge happen.
        frags[1].metrics.add_comparisons(7);
        let g = Gather::new(Schema::ints(&["k", "v"]), frags, parent.clone());
        let mut out = collect_batched(Box::new(g)).unwrap();
        out.sort();
        let mut expect = all;
        expect.sort();
        assert_eq!(out, expect);
        assert_eq!(parent.comparisons(), 7, "worker metrics merged at finish");
    }

    #[test]
    fn gather_row_path_works() {
        let all = rows(10);
        let g = Gather::new(
            Schema::ints(&["k", "v"]),
            fragments_over(vec![all[..5].to_vec(), all[5..].to_vec()]),
            ExecMetrics::new(),
        );
        let mut out = collect(Box::new(g)).unwrap();
        out.sort();
        let mut expect = all;
        expect.sort();
        assert_eq!(out, expect);
    }

    #[test]
    fn gather_drop_mid_stream_joins_workers() {
        // Far more rows than channel capacity: workers will block on send.
        let all = rows(20_000);
        let mut g = Gather::new(
            Schema::ints(&["k", "v"]),
            fragments_over(vec![all[..10_000].to_vec(), all[10_000..].to_vec()]),
            ExecMetrics::new(),
        );
        let first = g.next_batch().unwrap();
        assert!(first.is_some());
        drop(g); // must not deadlock or leak threads
    }

    #[test]
    fn gather_merge_reproduces_serial_sequence() {
        // Globally sorted input split into contiguous ranges with duplicate
        // keys straddling the boundary: the merge must reproduce the exact
        // original sequence (ties to the earlier worker).
        let mut all: Vec<Tuple> = (0..300)
            .map(|i| Tuple::new(vec![Value::Int(i / 3), Value::Int(i)]))
            .collect();
        all.sort();
        let frags = fragments_over(vec![
            all[..100].to_vec(),
            all[100..200].to_vec(),
            all[200..].to_vec(),
        ]);
        let parent = ExecMetrics::new();
        let g = GatherMerge::new(
            Schema::ints(&["k", "v"]),
            frags,
            KeySpec::new(vec![0]),
            parent.clone(),
        );
        let out = collect_batched(Box::new(g)).unwrap();
        assert_eq!(out, all, "exact serial sequence, ties by worker index");
        assert_eq!(
            parent.comparisons(),
            0,
            "merge comparisons are infrastructure, never charged"
        );
    }

    #[test]
    fn repartition_routes_every_row_exactly_once_and_aligns_keys() {
        let all = rows(500);
        let sources = repartition(
            fragments_over(vec![all[..250].to_vec(), all[250..].to_vec()]),
            vec![0],
            4,
            64,
            Schema::ints(&["k", "v"]),
            ExecMetrics::new(),
        );
        let mut seen = Vec::new();
        for (p, src) in sources.into_iter().enumerate() {
            let part = collect_batched(Box::new(src)).unwrap();
            for t in &part {
                assert_eq!(
                    (hash_key(t, &[0]) % 4) as usize,
                    p,
                    "row in wrong partition"
                );
            }
            seen.extend(part);
        }
        seen.sort();
        let mut expect = all;
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn hash_key_is_deterministic_and_type_tagged() {
        let a = Tuple::new(vec![Value::Int(1), Value::Str("x".into())]);
        let b = Tuple::new(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(hash_key(&a, &[0, 1]), hash_key(&b, &[0, 1]));
        let c = Tuple::new(vec![Value::Double(1.0), Value::Str("x".into())]);
        assert_ne!(
            hash_key(&a, &[0]),
            hash_key(&c, &[0]),
            "Int(1) and Double(1.0) are distinct join keys"
        );
        assert_ne!(hash_key(&a, &[0]), hash_key(&a, &[1]));
    }
}
