//! Selection.

use crate::expr::Expr;
use crate::op::{BoxOp, Operator};
use crate::vector::VecPredicate;
use pyro_common::{ColumnarBatch, Result, Schema, Tuple};

/// Emits child tuples satisfying a predicate. Order-preserving.
pub struct Filter {
    child: BoxOp,
    predicate: Expr,
    /// Vectorized form of the predicate (`None` for shapes only the row
    /// interpreter handles — those fall back per batch on the columnar
    /// path).
    vec_pred: Option<VecPredicate>,
    /// When set (by the plan compiler, for fully columnar subtrees) the
    /// batch pull runs the columnar kernel and materializes rows at this
    /// seam; the row pull (`next`) is unaffected.
    columnar: bool,
}

impl Filter {
    /// Wraps `child` with `predicate`.
    pub fn new(child: BoxOp, predicate: Expr) -> Self {
        let vec_pred = VecPredicate::compile(&predicate);
        Filter {
            child,
            predicate,
            vec_pred,
            columnar: false,
        }
    }

    /// Routes this operator's batch pull through the columnar kernel. Set
    /// only when the whole subtree below supports native columnar pulls.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.child.next()? {
            if self.predicate.eval_bool(&t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.columnar {
            return Ok(self.next_columnar()?.map(|b| b.to_rows()));
        }
        loop {
            let Some(mut batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            // Compiles the predicate to a closure once per *batch* (cheap
            // relative to the ~1k rows it then filters without a tree walk).
            self.predicate.retain_passing(&mut batch)?;
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }

    /// Native columnar filter: refines the batch's selection vector with
    /// per-column loops; no row is materialized. Predicates outside the
    /// vectorizable shape run the row interpreter on a materialized copy of
    /// the batch (correct, just not vectorized).
    fn next_columnar(&mut self) -> Result<Option<ColumnarBatch>> {
        loop {
            let Some(mut batch) = self.child.next_columnar()? else {
                return Ok(None);
            };
            match &self.vec_pred {
                Some(pred) => {
                    let mut sel = batch.sel_vec();
                    pred.refine(&batch, &mut sel);
                    if !sel.is_empty() {
                        batch.set_sel(sel);
                        return Ok(Some(batch));
                    }
                }
                None => {
                    let mut rows = batch.to_rows();
                    self.predicate.retain_passing(&mut rows)?;
                    if !rows.is_empty() {
                        return Ok(Some(ColumnarBatch::from_rows(&rows)));
                    }
                }
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.child.batch_size()
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.child.set_batch_size(rows);
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // A filter can drop everything but never adds rows.
        (0, self.child.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::op::{collect, collect_batched, ValuesOp};
    use pyro_common::Value;

    #[test]
    fn filters_rows() {
        let rows: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let f = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(7i64)),
        );
        let out = collect(Box::new(f)).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get(0), &Value::Int(7));
    }

    #[test]
    fn null_predicate_rows_dropped() {
        let rows = vec![
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Int(1)]),
        ];
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let f = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(1i64)),
        );
        assert_eq!(collect(Box::new(f)).unwrap().len(), 1);
    }

    /// The columnar batch pull must emit exactly what the row batch pull
    /// emits, for both vectorizable and fallback predicate shapes.
    #[test]
    fn columnar_pull_matches_row_pull() {
        let rows: Vec<Tuple> = (0..100)
            .map(|i| {
                Tuple::new(vec![
                    if i % 9 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Int(i % 13),
                ])
            })
            .collect();
        let preds = [
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(30i64)),
            // Arithmetic inside the comparison: not vectorizable, takes the
            // row fallback inside the columnar path.
            Expr::cmp(
                CmpOp::Lt,
                Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1))),
                Expr::lit(50i64),
            ),
        ];
        for pred in preds {
            let reference = collect_batched(Box::new(Filter::new(
                Box::new(ValuesOp::new(Schema::ints(&["a", "b"]), rows.clone())),
                pred.clone(),
            )))
            .unwrap();
            let mut columnar = Filter::new(
                Box::new(ValuesOp::new(Schema::ints(&["a", "b"]), rows.clone())),
                pred.clone(),
            );
            columnar.set_columnar(true);
            let out = collect_batched(Box::new(columnar)).unwrap();
            assert_eq!(reference, out, "predicate {pred:?}");
        }
    }
}
