//! Selection.

use crate::expr::Expr;
use crate::op::{BoxOp, Operator};
use pyro_common::{Result, Schema, Tuple};

/// Emits child tuples satisfying a predicate. Order-preserving.
pub struct Filter {
    child: BoxOp,
    predicate: Expr,
}

impl Filter {
    /// Wraps `child` with `predicate`.
    pub fn new(child: BoxOp, predicate: Expr) -> Self {
        Filter { child, predicate }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.child.next()? {
            if self.predicate.eval_bool(&t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        loop {
            let Some(mut batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            // Compiles the predicate to a closure once per *batch* (cheap
            // relative to the ~1k rows it then filters without a tree walk).
            self.predicate.retain_passing(&mut batch)?;
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.child.batch_size()
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.child.set_batch_size(rows);
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // A filter can drop everything but never adds rows.
        (0, self.child.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;

    #[test]
    fn filters_rows() {
        let rows: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let f = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(7i64)),
        );
        let out = collect(Box::new(f)).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get(0), &Value::Int(7));
    }

    #[test]
    fn null_predicate_rows_dropped() {
        let rows = vec![
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Int(1)]),
        ];
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let f = Filter::new(
            Box::new(src),
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(1i64)),
        );
        assert_eq!(collect(Box::new(f)).unwrap().len(), 1);
    }
}
