//! External sorting: standard replacement selection (SRS) and the paper's
//! modified replacement selection (MRS, [`PartialSort`]).
//!
//! Both operators share the spill-run machinery in the `runs` module: runs are
//! [`pyro_storage::TupleFile`]s whose page writes/reads are charged to the
//! pipeline's [`crate::ExecMetrics`] as *run I/O* — the quantity the paper's
//! Experiments A1–A4 measure.

mod heap;
mod mrs;
mod runs;
mod srs;

pub use mrs::PartialSort;
pub use runs::{InMemorySortStream, MergeStream};
pub use srs::StandardReplacementSort;

use crate::metrics::MetricsRef;
use pyro_common::{KeySpec, Tuple};

/// Memory budget for a sort, expressed like the paper: `M` blocks.
#[derive(Debug, Clone, Copy)]
pub struct SortBudget {
    /// Number of memory blocks available.
    pub blocks: u64,
    /// Block size in bytes.
    pub block_size: usize,
}

impl SortBudget {
    /// Budget of `blocks` blocks of `block_size` bytes.
    pub fn new(blocks: u64, block_size: usize) -> Self {
        SortBudget {
            blocks: blocks.max(3),
            block_size,
        }
    }

    /// Total bytes available for buffered tuples.
    pub fn bytes(&self) -> usize {
        (self.blocks as usize).saturating_mul(self.block_size)
    }

    /// Merge fan-in (`M − 1` input buffers, one output buffer).
    pub fn fan_in(&self) -> usize {
        (self.blocks as usize - 1).max(2)
    }
}

/// Sorts a buffer by `key`. Scalar comparisons accumulate in a local
/// counter and are charged to the metrics **once per call** — the counter
/// total is identical to per-comparison charging, without a shared-`Cell`
/// bump inside the sort's inner loop.
pub(crate) fn sort_buffer(buf: &mut [Tuple], key: &KeySpec, metrics: &MetricsRef) {
    let mut acc: u64 = 0;
    buf.sort_by(|a, b| {
        let (ord, n) = key.compare_counting(a, b);
        acc += n;
        ord
    });
    metrics.add_comparisons(acc);
}
