//! Modified replacement selection (MRS) — the paper's §3.1 contribution.
//!
//! The input is known to be sorted on a *prefix* `(a1..ak)` of the requested
//! key `(a1..an)`. Tuples sharing a prefix value form a **partial sort
//! segment**; segments arrive in prefix order, so sorting each segment
//! independently on the suffix `(ak+1..an)` yields the full order. The three
//! benefits the paper lists all fall out of the structure:
//!
//! 1. a segment that fits in memory is sorted and emitted with **zero run
//!    I/O** — fully pipelined;
//! 2. tuples are produced **early** (as soon as a segment closes, not after
//!    the whole input);
//! 3. comparisons drop from `O(n log n)` to `O(n log(n/k))` *and* compare
//!    only suffix columns.
//!
//! Oversized segments degrade gracefully: the segment alone spills to runs
//! that are merged when it closes — at the extreme (one segment = whole
//! input, `k` columns sharing one value) MRS behaves like a plain external
//! sort, the convergence Fig. 9's right edge shows.

use super::runs::{InMemorySortStream, MergeStream};
use super::{sort_buffer, SortBudget};
use crate::metrics::MetricsRef;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple};
use pyro_storage::{IntoStore, StoreRef, TupleFile};

enum Output {
    Buffered(InMemorySortStream),
    Merging(MergeStream),
}

/// The MRS operator: enforces the full key given a sorted prefix.
pub struct PartialSort {
    child: BoxOp,
    schema: Schema,
    /// Columns of the already-sorted prefix.
    prefix: KeySpec,
    /// Remaining key columns each segment is sorted on.
    suffix: KeySpec,
    store: StoreRef,
    budget: SortBudget,
    metrics: MetricsRef,
    /// Buffered tuples of the currently accumulating segment.
    buffer: Vec<Tuple>,
    buffer_bytes: usize,
    /// Prefix values identifying the current segment (set on its first
    /// tuple, cleared when it closes). Survives buffer spills.
    segment_key: Option<Vec<pyro_common::Value>>,
    /// Spill runs of the current segment (only when it outgrew memory).
    segment_runs: Vec<TupleFile>,
    /// First tuple of the *next* segment, read but not yet accumulated.
    pending: Option<Tuple>,
    /// Segment currently being drained to the parent.
    output: Option<Output>,
    input_done: bool,
    segments_seen: u64,
    stash: Stash,
    batch: usize,
}

impl PartialSort {
    /// Sorts `child` by `key`, exploiting that the input is already sorted
    /// on the first `prefix_len` columns of `key`.
    ///
    /// `prefix_len = 0` is allowed (degenerates to a chunk-sort external
    /// sort); `prefix_len = key.len()` makes the operator a pass-through
    /// verifier.
    pub fn new(
        child: BoxOp,
        key: KeySpec,
        prefix_len: usize,
        store: impl IntoStore,
        budget: SortBudget,
        metrics: MetricsRef,
    ) -> Self {
        let schema = child.schema().clone();
        let (prefix, suffix) = key.split_at(prefix_len);
        PartialSort {
            child,
            schema,
            prefix,
            suffix,
            store: store.into_store(),
            budget,
            metrics,
            buffer: Vec::new(),
            buffer_bytes: 0,
            segment_key: None,
            segment_runs: Vec::new(),
            pending: None,
            output: None,
            input_done: false,
            segments_seen: 0,
            stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Number of partial-sort segments that have been closed so far.
    pub fn segments_seen(&self) -> u64 {
        self.segments_seen
    }

    /// Extracts the prefix values of `t`.
    fn prefix_key_of(&self, t: &Tuple) -> Vec<pyro_common::Value> {
        t.key(self.prefix.cols())
    }

    /// True iff `t` belongs to the current segment; charges the prefix
    /// comparisons performed.
    fn matches_segment(&self, key: &[pyro_common::Value], t: &Tuple) -> bool {
        let mut n = 0u64;
        let mut eq = true;
        for (k, &c) in key.iter().zip(self.prefix.cols()) {
            n += 1;
            if k != t.get(c) {
                eq = false;
                break;
            }
        }
        self.metrics.add_comparisons(n);
        eq
    }

    /// Spills the current buffer as one sorted run of the current segment.
    fn spill_buffer(&mut self) -> Result<()> {
        sort_buffer(&mut self.buffer, &self.suffix, &self.metrics);
        let run =
            super::runs::write_run(&self.store, std::mem::take(&mut self.buffer), &self.metrics)?;
        self.segment_runs.push(run);
        self.buffer_bytes = 0;
        Ok(())
    }

    /// Closes the current segment and installs its output stream.
    fn close_segment(&mut self) -> Result<()> {
        self.segments_seen += 1;
        self.segment_key = None;
        if self.segment_runs.is_empty() {
            // The common case: segment fit in memory → zero run I/O.
            let mut buf = std::mem::take(&mut self.buffer);
            self.buffer_bytes = 0;
            sort_buffer(&mut buf, &self.suffix, &self.metrics);
            self.output = Some(Output::Buffered(InMemorySortStream::new(buf)));
        } else {
            // Oversized segment: spill the tail and merge this segment's
            // runs only.
            if !self.buffer.is_empty() {
                self.spill_buffer()?;
            }
            let runs = std::mem::take(&mut self.segment_runs);
            let merge = MergeStream::new(
                &self.store,
                runs,
                self.suffix.clone(),
                self.budget,
                self.metrics.clone(),
            )?;
            self.output = Some(Output::Merging(merge));
        }
        Ok(())
    }

    /// Admits one tuple into the current segment's buffer, spilling first
    /// when the byte budget would overflow. Shared by both ingest paths so
    /// spill boundaries (and the charged comparisons behind them) are
    /// identical row-wise and batch-wise.
    fn admit(&mut self, t: Tuple) -> Result<()> {
        if self.buffer_bytes + t.byte_size() > self.budget.bytes() && !self.buffer.is_empty() {
            self.spill_buffer()?;
        }
        self.buffer_bytes += t.byte_size();
        self.buffer.push(t);
        Ok(())
    }

    /// Accumulates input until the current segment ends (or input does).
    /// Returns `true` if a segment was closed.
    fn fill_segment(&mut self, batched: bool) -> Result<bool> {
        if batched {
            self.fill_segment_batched()
        } else {
            self.fill_segment_rows()
        }
    }

    fn fill_segment_rows(&mut self) -> Result<bool> {
        loop {
            let t = match self.pending.take() {
                Some(t) => Some(t),
                None => pull_row(&mut self.child, &mut self.stash, false)?,
            };
            let Some(t) = t else {
                self.input_done = true;
                if !self.buffer.is_empty() || !self.segment_runs.is_empty() {
                    self.close_segment()?;
                    return Ok(true);
                }
                return Ok(false);
            };
            match &self.segment_key {
                None => self.segment_key = Some(self.prefix_key_of(&t)),
                Some(key) if !self.prefix.is_empty() => {
                    // Borrow dance: clone the small key out for the check.
                    let key = key.clone();
                    if !self.matches_segment(&key, &t) {
                        self.pending = Some(t);
                        self.close_segment()?;
                        return Ok(true);
                    }
                }
                Some(_) => {} // empty prefix: one segment spans the input
            }
            self.admit(t)?;
        }
    }

    /// Batch-granularity ingest: walks whole child batches instead of
    /// issuing a per-row pull. At a segment boundary the unconsumed tail of
    /// the batch is stashed for the next segment. Boundary checks, charged
    /// comparisons and spill points are per-row exactly as in
    /// [`Self::fill_segment_rows`].
    fn fill_segment_batched(&mut self) -> Result<bool> {
        // The row deferred at the previous boundary opens this segment; it
        // can never itself be a boundary (the key was just cleared).
        if let Some(t) = self.pending.take() {
            debug_assert!(self.segment_key.is_none(), "pending row mid-segment");
            self.segment_key = Some(self.prefix_key_of(&t));
            self.admit(t)?;
        }
        loop {
            let Some(chunk) = self.stash.next_chunk(&mut self.child)? else {
                self.input_done = true;
                if !self.buffer.is_empty() || !self.segment_runs.is_empty() {
                    self.close_segment()?;
                    return Ok(true);
                }
                return Ok(false);
            };
            let mut it = chunk.into_iter();
            while let Some(t) = it.next() {
                match &self.segment_key {
                    None => self.segment_key = Some(self.prefix_key_of(&t)),
                    Some(key) if !self.prefix.is_empty() => {
                        let key = key.clone();
                        if !self.matches_segment(&key, &t) {
                            self.pending = Some(t);
                            self.stash.preload(it.collect());
                            self.close_segment()?;
                            return Ok(true);
                        }
                    }
                    Some(_) => {} // empty prefix: one segment spans the input
                }
                self.admit(t)?;
            }
        }
    }
}

impl Operator for PartialSort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(out) = &mut self.output {
                let t = match out {
                    Output::Buffered(s) => s.next_tuple(),
                    Output::Merging(m) => m.next_tuple()?,
                };
                if t.is_some() {
                    return Ok(t);
                }
                self.output = None;
            }
            if self.input_done && self.buffer.is_empty() && self.segment_runs.is_empty() {
                return Ok(None);
            }
            if !self.fill_segment(false)? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        // One chunk of the current segment per call — a whole segment when
        // it fits the batch (handed over zero-copy by the sort stream).
        // Short batches are fine under the batch contract, and demand-
        // driven behaviour (Top-K closing only the segments it needs) is
        // preserved: no segment beyond the emitted chunk is filled or
        // sorted (input read-ahead is bounded by one child batch).
        loop {
            if let Some(o) = &mut self.output {
                let chunk = match o {
                    Output::Buffered(s) => s.next_chunk(self.batch),
                    Output::Merging(m) => m.next_chunk(self.batch)?,
                };
                match chunk {
                    Some(c) => return Ok(Some(c)),
                    None => self.output = None,
                }
            }
            if self.input_done && self.buffer.is_empty() && self.segment_runs.is_empty() {
                return Ok(None);
            }
            if !self.fill_segment(true)? {
                return Ok(None);
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;
    use pyro_storage::SimDevice;

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b)])
    }

    /// Input sorted on col 0, random col 1.
    fn segmented_input(segments: i64, per_segment: i64) -> Vec<Tuple> {
        let mut rows = Vec::new();
        let mut state = 99u64;
        for s in 0..segments {
            for _ in 0..per_segment {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rows.push(t2(s, (state >> 40) as i64));
            }
        }
        rows
    }

    fn run_mrs(
        rows: Vec<Tuple>,
        prefix_len: usize,
        budget_blocks: u64,
        block_size: usize,
    ) -> (Vec<Tuple>, MetricsRef) {
        let dev = SimDevice::with_block_size(block_size);
        let m = ExecMetrics::new();
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), rows);
        let op = PartialSort::new(
            Box::new(src),
            KeySpec::new(vec![0, 1]),
            prefix_len,
            dev,
            SortBudget::new(budget_blocks, block_size),
            m.clone(),
        );
        (collect(Box::new(op)).unwrap(), m)
    }

    fn assert_sorted(rows: &[Tuple]) {
        let key = KeySpec::new(vec![0, 1]);
        assert!(
            rows.windows(2)
                .all(|w| key.compare(&w[0], &w[1]) != std::cmp::Ordering::Greater),
            "output not sorted"
        );
    }

    #[test]
    fn zero_run_io_when_segments_fit() {
        // This is the paper's headline §3.1 claim, as an exact assertion.
        let rows = segmented_input(50, 20);
        let (out, m) = run_mrs(rows.clone(), 1, 100, 4096);
        assert_eq!(out.len(), rows.len());
        assert_sorted(&out);
        assert_eq!(m.run_io(), 0, "MRS must not touch disk when segments fit");
    }

    #[test]
    fn fewer_comparisons_than_full_sort() {
        let rows = segmented_input(100, 10);
        let (_, m_mrs) = run_mrs(rows.clone(), 1, 100, 4096);

        // Same data through SRS for comparison.
        let dev = SimDevice::new();
        let m_srs = ExecMetrics::new();
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), rows);
        let op = super::super::srs::StandardReplacementSort::new(
            Box::new(src),
            KeySpec::new(vec![0, 1]),
            dev,
            SortBudget::new(100, 4096),
            m_srs.clone(),
        );
        collect(Box::new(op)).unwrap();
        assert!(
            m_mrs.comparisons() < m_srs.comparisons(),
            "MRS {} should compare less than SRS {}",
            m_mrs.comparisons(),
            m_srs.comparisons()
        );
    }

    #[test]
    fn oversized_segment_spills_and_merges() {
        // One giant segment (all same prefix) much larger than 3×128B.
        let rows = segmented_input(1, 500);
        let (out, m) = run_mrs(rows, 1, 3, 128);
        assert_eq!(out.len(), 500);
        assert_sorted(&out);
        assert!(m.run_io() > 0, "oversized segment must spill");
    }

    #[test]
    fn mixed_small_and_large_segments() {
        let mut rows = segmented_input(1, 300); // big segment 0
        rows.extend(
            segmented_input(5, 4)
                .into_iter()
                .map(|t| t2(t.get(0).as_int().unwrap() + 1, t.get(1).as_int().unwrap())),
        );
        let (out, _) = run_mrs(rows, 1, 3, 128);
        assert_eq!(out.len(), 320);
        assert_sorted(&out);
    }

    #[test]
    fn early_output_before_input_consumed() {
        // MRS must yield the first segment's tuples before reading the whole
        // input; we detect this by pulling one tuple, then checking the
        // source's remaining count.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct CountingSource {
            schema: Schema,
            rows: Vec<Tuple>,
            idx: usize,
            reads: Arc<AtomicUsize>,
        }
        impl Operator for CountingSource {
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn next(&mut self) -> Result<Option<Tuple>> {
                if self.idx < self.rows.len() {
                    self.idx += 1;
                    self.reads.fetch_add(1, Ordering::Relaxed);
                    Ok(Some(self.rows[self.idx - 1].clone()))
                } else {
                    Ok(None)
                }
            }
        }

        let reads = Arc::new(AtomicUsize::new(0));
        let rows = segmented_input(100, 10);
        let n = rows.len();
        let src = CountingSource {
            schema: Schema::ints(&["a", "b"]),
            rows,
            idx: 0,
            reads: reads.clone(),
        };
        let dev = SimDevice::new();
        let m = ExecMetrics::new();
        let mut op = PartialSort::new(
            Box::new(src),
            KeySpec::new(vec![0, 1]),
            1,
            dev,
            SortBudget::new(100, 4096),
            m,
        );
        let first = op.next().unwrap();
        assert!(first.is_some());
        assert!(
            reads.load(Ordering::Relaxed) <= 11,
            "MRS read {} tuples before first output; expected ≈ one segment (SRS would read all {n})",
            reads.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn prefix_len_zero_degenerates_to_full_sort() {
        let rows = vec![t2(3, 1), t2(1, 2), t2(2, 0)];
        let (out, _) = run_mrs(rows, 0, 100, 4096);
        assert_eq!(out, vec![t2(1, 2), t2(2, 0), t2(3, 1)]);
    }

    #[test]
    fn full_prefix_is_passthrough() {
        // With prefix_len = |key| the operator's contract says the input is
        // already fully sorted; it must stream through unchanged with zero
        // run I/O.
        let key = KeySpec::new(vec![0, 1]);
        let mut rows = segmented_input(5, 3);
        rows.sort_by(|x, y| key.compare(x, y));
        let (out, m) = run_mrs(rows.clone(), 2, 100, 4096);
        assert_eq!(out, rows);
        assert_eq!(m.run_io(), 0);
    }

    #[test]
    fn empty_input() {
        let (out, m) = run_mrs(vec![], 1, 10, 4096);
        assert!(out.is_empty());
        assert_eq!(m.run_io(), 0);
    }

    #[test]
    fn segments_counted() {
        let dev = SimDevice::new();
        let m = ExecMetrics::new();
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), segmented_input(7, 3));
        let mut op = PartialSort::new(
            Box::new(src),
            KeySpec::new(vec![0, 1]),
            1,
            dev,
            SortBudget::new(100, 4096),
            m,
        );
        while op.next().unwrap().is_some() {}
        assert_eq!(op.segments_seen(), 7);
    }
}
