//! The replacement-selection heap.
//!
//! A manual binary min-heap over `(run_number, tuple)` ordered first by run
//! number, then by sort key — so the entries of the *current* run always
//! surface before entries demoted to the next run, which is exactly what
//! replacement selection needs. A manual implementation (rather than
//! `BinaryHeap`) lets every key comparison be counted. Comparisons
//! accumulate in a local counter per `push`/`pop` and the caller charges
//! the pipeline metrics in batches, keeping the shared `Cell` out of the
//! sift loops.

use crate::metrics::MetricsRef;
use pyro_common::{KeySpec, Tuple};
use std::cmp::Ordering;

/// Min-heap of `(run, tuple)` used by SRS.
pub(crate) struct RsHeap {
    data: Vec<(u32, Tuple)>,
    key: KeySpec,
    metrics: MetricsRef,
    /// Total `byte_size` of buffered tuples.
    bytes: usize,
    /// Comparisons performed but not yet charged to `metrics`.
    uncharged: u64,
}

impl RsHeap {
    pub(crate) fn new(key: KeySpec, metrics: MetricsRef) -> Self {
        RsHeap {
            data: Vec::new(),
            key,
            metrics,
            bytes: 0,
            uncharged: 0,
        }
    }

    /// Flushes locally accumulated comparison counts to the shared metrics.
    pub(crate) fn flush_comparisons(&mut self) {
        self.metrics.add_comparisons(self.uncharged);
        self.uncharged = 0;
    }

    /// Test/diagnostic accessors — replacement selection itself only needs
    /// push/pop/peek_run (the heap's population stays constant during the
    /// emit-refill cycle).
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.data.len()
    }

    #[allow(dead_code)]
    pub(crate) fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[allow(dead_code)]
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    fn less(&mut self, i: usize, j: usize) -> bool {
        let (a, b) = (&self.data[i], &self.data[j]);
        match a.0.cmp(&b.0) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => {
                let (ord, n) = self.key.compare_counting(&a.1, &b.1);
                self.uncharged += n;
                ord == Ordering::Less
            }
        }
    }

    pub(crate) fn push(&mut self, run: u32, tuple: Tuple) {
        self.bytes += tuple.byte_size();
        self.data.push((run, tuple));
        let mut i = self.data.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent) {
                self.data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    /// The run number of the minimum entry.
    pub(crate) fn peek_run(&self) -> Option<u32> {
        self.data.first().map(|(r, _)| *r)
    }

    pub(crate) fn pop(&mut self) -> Option<(u32, Tuple)> {
        if self.data.is_empty() {
            return None;
        }
        let last = self.data.len() - 1;
        self.data.swap(0, last);
        let out = self.data.pop().expect("non-empty");
        self.bytes -= out.1.byte_size();
        // sift down
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.data.len() && self.less(l, smallest) {
                smallest = l;
            }
            if r < self.data.len() && self.less(r, smallest) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.data.swap(i, smallest);
            i = smallest;
        }
        Some(out)
    }
}

impl Drop for RsHeap {
    fn drop(&mut self) {
        // Never lose counted comparisons, even on early teardown.
        self.flush_comparisons();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use pyro_common::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn pops_in_run_then_key_order() {
        let m = ExecMetrics::new();
        let mut h = RsHeap::new(KeySpec::new(vec![0]), m.clone());
        h.push(1, t(1)); // next run, smallest key
        h.push(0, t(9)); // current run, larger key
        h.push(0, t(5));
        assert_eq!(h.peek_run(), Some(0));
        assert_eq!(h.pop().unwrap(), (0, t(5)));
        assert_eq!(h.pop().unwrap(), (0, t(9)));
        assert_eq!(h.pop().unwrap(), (1, t(1)));
        assert!(h.pop().is_none());
        h.flush_comparisons();
        assert!(m.comparisons() > 0);
    }

    #[test]
    fn drop_flushes_uncharged_comparisons() {
        let m = ExecMetrics::new();
        {
            let mut h = RsHeap::new(KeySpec::new(vec![0]), m.clone());
            for v in [5i64, 3, 8, 1] {
                h.push(0, t(v));
            }
            assert_eq!(m.comparisons(), 0, "charged only on flush/drop");
        }
        assert!(m.comparisons() > 0, "drop flushed the local counter");
    }

    #[test]
    fn byte_tracking() {
        let m = ExecMetrics::new();
        let mut h = RsHeap::new(KeySpec::new(vec![0]), m);
        assert_eq!(h.bytes(), 0);
        h.push(0, t(1));
        let b1 = h.bytes();
        assert!(b1 > 0);
        h.push(0, t(2));
        assert!(h.bytes() > b1);
        h.pop();
        h.pop();
        assert_eq!(h.bytes(), 0);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn random_order_drains_sorted() {
        let m = ExecMetrics::new();
        let mut h = RsHeap::new(KeySpec::new(vec![0]), m);
        for v in [5i64, 3, 8, 1, 9, 2, 7] {
            h.push(0, t(v));
        }
        let mut out = Vec::new();
        while let Some((_, tu)) = h.pop() {
            out.push(tu.get(0).as_int().unwrap());
        }
        assert_eq!(out, vec![1, 2, 3, 5, 7, 8, 9]);
    }
}
