//! Spill-run plumbing shared by SRS and MRS: writing runs, k-way merging
//! with bounded fan-in, and the streaming output adapters.

use super::SortBudget;
use crate::metrics::MetricsRef;
use pyro_common::{KeySpec, Result, Tuple};
use pyro_storage::{StoreRef, TupleFile, TupleFileScan, TupleFileWriter};
use std::cmp::Ordering;

/// Writes `tuples` (already sorted) as one spill run, charging run I/O.
/// Run pages go through `store`, so a pooled store keeps hot runs cached
/// (the logical `run_pages_written` charge is unchanged either way).
pub(crate) fn write_run(
    store: &StoreRef,
    tuples: impl IntoIterator<Item = Tuple>,
    metrics: &MetricsRef,
) -> Result<TupleFile> {
    let mut w = TupleFileWriter::new(store);
    for t in tuples {
        w.append(&t)?;
    }
    let file = w.finish()?;
    metrics.add_run_pages_written(file.block_count());
    metrics.add_run();
    Ok(file)
}

/// An open run being merged.
struct OpenRun {
    scan: TupleFileScan,
    file: Option<TupleFile>,
    head: Option<Tuple>,
}

/// Streaming k-way merge over sorted runs. Run pages are charged as *run
/// reads* when each run is opened (runs are always fully consumed); files
/// are freed as they are exhausted so device memory stays bounded.
pub struct MergeStream {
    runs: Vec<OpenRun>,
    key: KeySpec,
    metrics: MetricsRef,
}

impl MergeStream {
    /// Opens the given sorted runs for merging. If there are more runs than
    /// `budget.fan_in()`, intermediate merge passes are performed first
    /// (reading and re-writing runs, exactly the
    /// `B(e)·(2·passes + 1)`-style cost the paper's model charges).
    pub fn new(
        store: &StoreRef,
        mut files: Vec<TupleFile>,
        key: KeySpec,
        budget: SortBudget,
        metrics: MetricsRef,
    ) -> Result<MergeStream> {
        let fan_in = budget.fan_in();
        // Intermediate passes until a single merge can finish the job.
        while files.len() > fan_in {
            let batch: Vec<TupleFile> = files.drain(..fan_in).collect();
            let mut merged = MergeStream::open(batch, key.clone(), metrics.clone())?;
            let mut w = TupleFileWriter::new(store);
            while let Some(t) = merged.next_tuple()? {
                w.append(&t)?;
            }
            let out = w.finish()?;
            metrics.add_run_pages_written(out.block_count());
            files.push(out);
        }
        MergeStream::open(files, key, metrics)
    }

    fn open(files: Vec<TupleFile>, key: KeySpec, metrics: MetricsRef) -> Result<MergeStream> {
        let mut runs = Vec::with_capacity(files.len());
        for file in files {
            metrics.add_run_pages_read(file.block_count());
            let mut scan = file.scan();
            let head = scan.next_tuple()?;
            runs.push(OpenRun {
                scan,
                file: Some(file),
                head,
            });
        }
        Ok(MergeStream { runs, key, metrics })
    }

    /// Pops the globally smallest head tuple, charging comparisons once per
    /// call.
    pub fn next_tuple(&mut self) -> Result<Option<Tuple>> {
        let mut acc = 0;
        let out = self.pop_smallest(&mut acc);
        self.metrics.add_comparisons(acc);
        out
    }

    /// Pops up to `max_rows` tuples in merge order; comparisons accumulate
    /// locally and hit the shared metrics once per chunk. `Ok(None)` only
    /// at end of the merged stream.
    pub fn next_chunk(&mut self, max_rows: usize) -> Result<Option<Vec<Tuple>>> {
        let mut acc = 0;
        let mut out = Vec::new();
        while out.len() < max_rows.max(1) {
            match self.pop_smallest(&mut acc) {
                Ok(Some(t)) => out.push(t),
                Ok(None) => break,
                Err(e) => {
                    self.metrics.add_comparisons(acc);
                    return Err(e);
                }
            }
        }
        self.metrics.add_comparisons(acc);
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn pop_smallest(&mut self, acc: &mut u64) -> Result<Option<Tuple>> {
        // Linear scan over ≤ fan-in heads: simple and cache-friendly for the
        // small fan-ins used here.
        let mut best: Option<usize> = None;
        for i in 0..self.runs.len() {
            if self.runs[i].head.is_none() {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let (ta, tb) = (
                        self.runs[i].head.as_ref().expect("head is some"),
                        self.runs[b].head.as_ref().expect("head is some"),
                    );
                    let (ord, n) = self.key.compare_counting(ta, tb);
                    *acc += n;
                    if ord == Ordering::Less {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        let Some(i) = best else { return Ok(None) };
        let out = self.runs[i].head.take().expect("winner has a head");
        self.runs[i].head = self.runs[i].scan.next_tuple()?;
        if self.runs[i].head.is_none() {
            // Run exhausted: free its pages.
            if let Some(f) = self.runs[i].file.take() {
                f.delete();
            }
        }
        Ok(Some(out))
    }
}

/// Output adapter for a fully in-memory sorted buffer.
pub struct InMemorySortStream {
    buf: Vec<Tuple>,
    pos: usize,
}

impl InMemorySortStream {
    /// Wraps an already-sorted buffer.
    pub fn new(sorted: Vec<Tuple>) -> Self {
        InMemorySortStream {
            buf: sorted,
            pos: 0,
        }
    }

    /// Next tuple of the sorted buffer (O(1) move-out, no clone).
    pub fn next_tuple(&mut self) -> Option<Tuple> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let t = std::mem::take(&mut self.buf[self.pos]);
        self.pos += 1;
        Some(t)
    }

    /// Next chunk of up to `max_rows` tuples; `None` at end of buffer. An
    /// untouched buffer that fits the chunk is handed over whole — zero
    /// copies, zero allocation — which is the common case for a
    /// partial-sort segment smaller than the batch size.
    pub fn next_chunk(&mut self, max_rows: usize) -> Option<Vec<Tuple>> {
        let remaining = self.buf.len() - self.pos;
        if remaining == 0 {
            return None;
        }
        let n = remaining.min(max_rows.max(1));
        if self.pos == 0 && n == self.buf.len() {
            return Some(std::mem::take(&mut self.buf));
        }
        let mut out = Vec::with_capacity(n);
        for slot in &mut self.buf[self.pos..self.pos + n] {
            out.push(std::mem::take(slot));
        }
        self.pos += n;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use pyro_common::Value;
    use pyro_storage::{IntoStore, SimDevice};

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    fn run_of(store: &StoreRef, vals: &[i64], m: &MetricsRef) -> TupleFile {
        write_run(store, vals.iter().map(|&v| t(v)), m).unwrap()
    }

    #[test]
    fn merge_two_runs() {
        let dev = SimDevice::with_block_size(128).into_store();
        let m = ExecMetrics::new();
        let r1 = run_of(&dev, &[1, 3, 5], &m);
        let r2 = run_of(&dev, &[2, 4, 6], &m);
        let mut ms = MergeStream::new(
            &dev,
            vec![r1, r2],
            KeySpec::new(vec![0]),
            SortBudget::new(10, 128),
            m.clone(),
        )
        .unwrap();
        let mut out = Vec::new();
        while let Some(x) = ms.next_tuple().unwrap() {
            out.push(x.get(0).as_int().unwrap());
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.runs_created(), 2);
        assert!(m.run_pages_read() >= 2);
    }

    #[test]
    fn multipass_merge_with_tiny_fanin() {
        let dev = SimDevice::with_block_size(128).into_store();
        let m = ExecMetrics::new();
        // 7 runs but fan-in only 2 → intermediate passes required.
        let files: Vec<TupleFile> = (0..7)
            .map(|i| run_of(&dev, &[i, i + 10, i + 20], &m))
            .collect();
        let written_before = m.run_pages_written();
        let mut ms = MergeStream::new(
            &dev,
            files,
            KeySpec::new(vec![0]),
            SortBudget::new(3, 128), // fan_in = 2
            m.clone(),
        )
        .unwrap();
        let mut out = Vec::new();
        while let Some(x) = ms.next_tuple().unwrap() {
            out.push(x.get(0).as_int().unwrap());
        }
        assert_eq!(out.len(), 21);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            m.run_pages_written() > written_before,
            "intermediate passes must write new runs"
        );
    }

    #[test]
    fn exhausted_runs_free_pages() {
        let dev = SimDevice::with_block_size(128).into_store();
        let m = ExecMetrics::new();
        let r1 = run_of(&dev, &[1, 2], &m);
        let live_before = dev.live_pages();
        assert!(live_before > 0);
        let mut ms = MergeStream::new(
            &dev,
            vec![r1],
            KeySpec::new(vec![0]),
            SortBudget::new(10, 128),
            m,
        )
        .unwrap();
        while ms.next_tuple().unwrap().is_some() {}
        assert_eq!(dev.live_pages(), 0);
    }

    #[test]
    fn empty_merge() {
        let dev = SimDevice::new().into_store();
        let m = ExecMetrics::new();
        let mut ms = MergeStream::new(
            &dev,
            vec![],
            KeySpec::new(vec![0]),
            SortBudget::new(10, 4096),
            m,
        )
        .unwrap();
        assert!(ms.next_tuple().unwrap().is_none());
    }

    #[test]
    fn in_memory_stream() {
        let mut s = InMemorySortStream::new(vec![t(1), t(2)]);
        assert_eq!(s.next_tuple(), Some(t(1)));
        assert_eq!(s.next_tuple(), Some(t(2)));
        assert_eq!(s.next_tuple(), None);
    }
}
