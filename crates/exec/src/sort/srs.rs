//! Standard replacement selection (SRS) — the baseline external sort.
//!
//! Classical behaviour (matching PostgreSQL's sort, which the paper
//! modified):
//!
//! * If the whole input fits in the memory budget, sort in memory — no disk
//!   I/O at all.
//! * Otherwise run replacement selection: a memory-filling heap emits the
//!   smallest current-run tuple, replacing it with the next input tuple
//!   (demoted to the next run if it sorts below the last emitted key). Runs
//!   average twice the memory size; *presorted input yields a single giant
//!   run* — which is still written to disk and read back, breaking the
//!   pipeline. That wasted round-trip on partially-sorted input is exactly
//!   the deficiency [`super::PartialSort`] removes.
//! * Merge the runs with bounded fan-in (multi-pass if needed).

use super::heap::RsHeap;
use super::runs::{InMemorySortStream, MergeStream};
use super::{sort_buffer, SortBudget};
use crate::metrics::MetricsRef;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple};
use pyro_storage::{IntoStore, StoreRef, TupleFile, TupleFileWriter};
use std::cmp::Ordering;

enum State {
    /// Input not yet consumed.
    Pending,
    /// Whole input fit in memory.
    InMemory(InMemorySortStream),
    /// Merging spill runs.
    Merging(MergeStream),
    Done,
}

/// The SRS sort operator.
pub struct StandardReplacementSort {
    child: Option<BoxOp>,
    schema: Schema,
    key: KeySpec,
    store: StoreRef,
    budget: SortBudget,
    metrics: MetricsRef,
    state: State,
    stash: Stash,
    batch: usize,
}

impl StandardReplacementSort {
    /// Sorts `child` by `key` using at most `budget` memory; spill runs
    /// live on `store` (a [`StoreRef`], or a bare device for uncached
    /// spills).
    pub fn new(
        child: BoxOp,
        key: KeySpec,
        store: impl IntoStore,
        budget: SortBudget,
        metrics: MetricsRef,
    ) -> Self {
        let schema = child.schema().clone();
        StandardReplacementSort {
            child: Some(child),
            schema,
            key,
            store: store.into_store(),
            budget,
            metrics,
            state: State::Pending,
            stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Consumes the input: in-memory sort or replacement selection into
    /// runs. Run-formation comparisons (heap sifts and admission checks)
    /// accumulate locally and are charged in bulk, not per row.
    fn build(&mut self, batched: bool) -> Result<State> {
        let mut child = self.child.take().expect("build called once");
        let budget_bytes = self.budget.bytes();

        // Buffer until the budget overflows or input ends. The batched path
        // ingests whole child batches (one Vec move per batch instead of a
        // per-row pull); byte accounting and the overflow boundary are
        // per-row in both paths, so the buffered prefix — and therefore
        // every downstream comparison and run counter — is identical.
        let mut buffer: Vec<Tuple> = Vec::new();
        let mut bytes = 0usize;
        let mut overflow: Option<Tuple> = None;
        if batched {
            'ingest: while let Some(chunk) = self.stash.next_chunk(&mut child)? {
                let mut it = chunk.into_iter();
                while let Some(t) = it.next() {
                    if bytes + t.byte_size() > budget_bytes && !buffer.is_empty() {
                        overflow = Some(t);
                        // Unconsumed rows feed the replacement-selection
                        // refill loop below.
                        self.stash.preload(it.collect());
                        break 'ingest;
                    }
                    bytes += t.byte_size();
                    buffer.push(t);
                }
            }
        } else {
            while let Some(t) = pull_row(&mut child, &mut self.stash, false)? {
                if bytes + t.byte_size() > budget_bytes && !buffer.is_empty() {
                    overflow = Some(t);
                    break;
                }
                bytes += t.byte_size();
                buffer.push(t);
            }
        }

        if overflow.is_none() {
            // Everything fits: pure CPU sort, zero disk I/O.
            sort_buffer(&mut buffer, &self.key, &self.metrics);
            return Ok(State::InMemory(InMemorySortStream::new(buffer)));
        }

        // Replacement selection: heapify the buffer as run 0, then cycle.
        let mut heap = RsHeap::new(self.key.clone(), self.metrics.clone());
        for t in buffer {
            heap.push(0, t);
        }
        let mut admission_cmps: u64 = 0;
        let mut next_input = overflow;
        let mut runs: Vec<TupleFile> = Vec::new();
        let mut current_run: u32 = 0;
        let mut writer = TupleFileWriter::new(&self.store);

        loop {
            match heap.peek_run() {
                None => break,
                Some(r) if r != current_run => {
                    // Current run exhausted: seal its file, open the next.
                    let file = writer.finish()?;
                    self.metrics.add_run_pages_written(file.block_count());
                    self.metrics.add_run();
                    runs.push(file);
                    writer = TupleFileWriter::new(&self.store);
                    current_run = r;
                }
                Some(_) => {}
            }
            let (_, tuple) = heap.pop().expect("peek_run returned Some");
            writer.append(&tuple)?;

            // Refill from input while there is input left. The just-emitted
            // tuple is the floor for current-run admission: anything smaller
            // must wait for the next run or the run would become unsorted.
            if let Some(incoming) = next_input.take() {
                let (ord, n) = self.key.compare_counting(&incoming, &tuple);
                admission_cmps += n;
                let run = if ord == Ordering::Less {
                    current_run + 1
                } else {
                    current_run
                };
                heap.push(run, incoming);
                next_input = pull_row(&mut child, &mut self.stash, batched)?;
            }
        }
        heap.flush_comparisons();
        self.metrics.add_comparisons(admission_cmps);
        // Seal the final run.
        let file = writer.finish()?;
        self.metrics.add_run_pages_written(file.block_count());
        self.metrics.add_run();
        runs.push(file);

        let merge = MergeStream::new(
            &self.store,
            runs,
            self.key.clone(),
            self.budget,
            self.metrics.clone(),
        )?;
        Ok(State::Merging(merge))
    }
}

impl Operator for StandardReplacementSort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            match &mut self.state {
                State::Pending => {
                    self.state = self.build(false)?;
                }
                State::InMemory(s) => {
                    let t = s.next_tuple();
                    if t.is_none() {
                        self.state = State::Done;
                    }
                    return Ok(t);
                }
                State::Merging(m) => {
                    let t = m.next_tuple()?;
                    if t.is_none() {
                        self.state = State::Done;
                    }
                    return Ok(t);
                }
                State::Done => return Ok(None),
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        loop {
            match &mut self.state {
                State::Pending => {
                    self.state = self.build(true)?;
                }
                State::InMemory(s) => {
                    let c = s.next_chunk(self.batch);
                    if c.is_none() {
                        self.state = State::Done;
                    }
                    return Ok(c);
                }
                State::Merging(m) => {
                    let c = m.next_chunk(self.batch)?;
                    if c.is_none() {
                        self.state = State::Done;
                    }
                    return Ok(c);
                }
                State::Done => return Ok(None),
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;
    use pyro_storage::SimDevice;

    fn rows(vals: &[i64]) -> Vec<Tuple> {
        vals.iter()
            .map(|&v| Tuple::new(vec![Value::Int(v)]))
            .collect()
    }

    fn ints(out: Vec<Tuple>) -> Vec<i64> {
        out.iter().map(|t| t.get(0).as_int().unwrap()).collect()
    }

    fn sort_op(vals: &[i64], budget_blocks: u64, block_size: usize) -> (Vec<i64>, MetricsRef) {
        let dev = SimDevice::with_block_size(block_size);
        let m = ExecMetrics::new();
        let src = ValuesOp::new(Schema::ints(&["a"]), rows(vals));
        let op = StandardReplacementSort::new(
            Box::new(src),
            KeySpec::new(vec![0]),
            dev,
            SortBudget::new(budget_blocks, block_size),
            m.clone(),
        );
        (ints(collect(Box::new(op)).unwrap()), m)
    }

    #[test]
    fn in_memory_when_fits() {
        let (out, m) = sort_op(&[5, 2, 9, 1, 7], 100, 4096);
        assert_eq!(out, vec![1, 2, 5, 7, 9]);
        assert_eq!(m.run_io(), 0, "in-memory sort must not spill");
        assert!(m.comparisons() > 0);
    }

    #[test]
    fn external_sort_correct() {
        // ~25 bytes/tuple, budget 3 blocks × 128B = 384B ≈ 15 tuples; 200
        // tuples forces spilling.
        let vals: Vec<i64> = (0..200).rev().collect();
        let (out, m) = sort_op(&vals, 3, 128);
        let mut expect = vals.clone();
        expect.sort_unstable();
        assert_eq!(out, expect);
        assert!(m.run_io() > 0, "external sort must spill");
        assert!(
            m.runs_created() >= 2,
            "reverse input defeats RS run extension"
        );
    }

    #[test]
    fn presorted_input_yields_single_run_but_still_spills() {
        // The paper's point: SRS on sorted input writes ONE big run to disk
        // and reads it back — I/O that MRS avoids.
        let vals: Vec<i64> = (0..200).collect();
        let (out, m) = sort_op(&vals, 3, 128);
        assert_eq!(out, vals);
        assert_eq!(
            m.runs_created(),
            1,
            "replacement selection extends the run forever"
        );
        assert!(m.run_pages_written() > 0);
        assert_eq!(m.run_pages_read(), m.run_pages_written());
    }

    #[test]
    fn random_input_runs_average_twice_memory() {
        // Classic RS property: with random input, expected run length ≈ 2×
        // memory. We only sanity-check runs are fewer than naive chunking.
        let mut vals: Vec<i64> = (0..2000).collect();
        // Pseudo-shuffle deterministically.
        let mut state = 12345u64;
        for i in (1..vals.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            vals.swap(i, j);
        }
        let (out, m) = sort_op(&vals, 4, 256);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        // naive chunking would need ~ bytes/total ≈ 2000*25/1024 ≈ 48 runs;
        // RS should do substantially better.
        assert!(
            m.runs_created() < 40,
            "expected < 40 runs, got {}",
            m.runs_created()
        );
    }

    #[test]
    fn empty_and_single_input() {
        let (out, m) = sort_op(&[], 10, 4096);
        assert!(out.is_empty());
        assert_eq!(m.run_io(), 0);
        let (out, _) = sort_op(&[42], 10, 4096);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn duplicates_preserved() {
        let (out, _) = sort_op(&[3, 1, 3, 1, 3], 100, 4096);
        assert_eq!(out, vec![1, 1, 3, 3, 3]);
    }

    #[test]
    fn multi_column_key() {
        let dev = SimDevice::new();
        let m = ExecMetrics::new();
        let data = vec![
            Tuple::new(vec![Value::Int(2), Value::Int(1)]),
            Tuple::new(vec![Value::Int(1), Value::Int(9)]),
            Tuple::new(vec![Value::Int(1), Value::Int(3)]),
            Tuple::new(vec![Value::Int(2), Value::Int(0)]),
        ];
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), data);
        let op = StandardReplacementSort::new(
            Box::new(src),
            KeySpec::new(vec![0, 1]),
            dev,
            SortBudget::new(100, 4096),
            m,
        );
        let out = collect(Box::new(op)).unwrap();
        let keys: Vec<(i64, i64)> = out
            .iter()
            .map(|t| (t.get(0).as_int().unwrap(), t.get(1).as_int().unwrap()))
            .collect();
        assert_eq!(keys, vec![(1, 3), (1, 9), (2, 0), (2, 1)]);
    }
}
