//! Aggregation: sort-based (streaming groups) and hash-based.
//!
//! The sort-based [`GroupAggregate`] requires its input ordered on (a
//! permutation of) the grouping columns — which is exactly why grouping
//! participates in the paper's interesting-order machinery. The
//! [`HashAggregate`] needs no order but materializes its table, the
//! trade-off the optimizer prices (Postgres's hash-aggregate pick for
//! Query 3 is the paper's example of getting this wrong).

use crate::expr::Expr;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{Column, DataType, KeySpec, Result, Schema, Tuple, Value};
use std::collections::HashMap;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(expr): non-null count.
    Count,
    /// SUM(expr).
    Sum,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
    /// AVG(expr).
    Avg,
}

/// One aggregate output: a function over an argument expression.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument evaluated per input row.
    pub arg: Expr,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Convenience constructor.
    pub fn new(func: AggFunc, arg: Expr, name: impl Into<String>) -> Self {
        AggExpr {
            func,
            arg,
            name: name.into(),
        }
    }

    fn output_type(&self) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Double,
            // SUM/MIN/MAX inherit the argument type; Int is the common case
            // and Double values still flow through (schema types are
            // advisory in this engine).
            _ => DataType::Int,
        }
    }
}

/// Running accumulator for one (group, aggregate) pair.
#[derive(Debug, Clone)]
enum AccState {
    Count(i64),
    Sum(Value),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64, any: bool },
}

impl AccState {
    fn new(func: AggFunc) -> AccState {
        match func {
            AggFunc::Count => AccState::Count(0),
            AggFunc::Sum => AccState::Sum(Value::Null),
            AggFunc::Min => AccState::Min(None),
            AggFunc::Max => AccState::Max(None),
            AggFunc::Avg => AccState::Avg {
                sum: 0.0,
                n: 0,
                any: false,
            },
        }
    }

    fn update(&mut self, v: Value) {
        if v.is_null() {
            return; // SQL aggregates ignore NULLs
        }
        match self {
            AccState::Count(c) => *c += 1,
            AccState::Sum(acc) => {
                *acc = if acc.is_null() { v } else { acc.add(&v) };
            }
            AccState::Min(m) => {
                if m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            AccState::Max(m) => {
                if m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
            AccState::Avg { sum, n, any } => {
                if let Some(x) = v.as_double() {
                    *sum += x;
                    *n += 1;
                    *any = true;
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AccState::Count(c) => Value::Int(c),
            AccState::Sum(v) => v,
            AccState::Min(m) => m.unwrap_or(Value::Null),
            AccState::Max(m) => m.unwrap_or(Value::Null),
            AccState::Avg { sum, n, any } => {
                if any {
                    Value::Double(sum / n as f64)
                } else {
                    Value::Null
                }
            }
        }
    }
}

fn output_schema(child: &Schema, group_cols: &[usize], aggs: &[AggExpr]) -> Schema {
    let mut cols: Vec<Column> = group_cols
        .iter()
        .map(|&i| child.column(i).clone())
        .collect();
    for a in aggs {
        cols.push(Column::new(a.name.clone(), a.output_type()));
    }
    Schema::new(cols)
}

/// Streaming aggregate over an input sorted by the grouping columns.
pub struct GroupAggregate {
    child: BoxOp,
    group_key: KeySpec,
    aggs: Vec<AggExpr>,
    schema: Schema,
    current: Option<(Tuple, Vec<AccState>)>,
    done: bool,
    stash: Stash,
    batch: usize,
}

impl GroupAggregate {
    /// Builds a sort-based aggregate; `group_cols` are positions in the
    /// child's schema, and the child **must** be sorted on them (any
    /// permutation works — only group adjacency matters).
    pub fn new(child: BoxOp, group_cols: Vec<usize>, aggs: Vec<AggExpr>) -> Self {
        let schema = output_schema(child.schema(), &group_cols, &aggs);
        GroupAggregate {
            child,
            group_key: KeySpec::new(group_cols),
            aggs,
            schema,
            current: None,
            done: false,
            stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    fn finish_group(&self, rep: Tuple, states: Vec<AccState>) -> Tuple {
        let mut values = rep.key(self.group_key.cols());
        values.extend(states.into_iter().map(AccState::finish));
        Tuple::new(values)
    }

    /// Consumes input until one group closes (or input ends).
    fn next_group(&mut self, batched: bool) -> Result<Option<Tuple>> {
        if self.done {
            return Ok(None);
        }
        loop {
            match pull_row(&mut self.child, &mut self.stash, batched)? {
                Some(t) => {
                    let same = match &self.current {
                        Some((rep, _)) => self.group_key.eq_on(rep, &t),
                        None => false,
                    };
                    if same {
                        let (_, states) = self.current.as_mut().expect("same group");
                        for (agg, st) in self.aggs.iter().zip(states.iter_mut()) {
                            st.update(agg.arg.eval(&t)?);
                        }
                    } else {
                        let finished = self.current.take();
                        let mut states: Vec<AccState> =
                            self.aggs.iter().map(|a| AccState::new(a.func)).collect();
                        for (agg, st) in self.aggs.iter().zip(states.iter_mut()) {
                            st.update(agg.arg.eval(&t)?);
                        }
                        self.current = Some((t, states));
                        if let Some((rep, sts)) = finished {
                            return Ok(Some(self.finish_group(rep, sts)));
                        }
                    }
                }
                None => {
                    self.done = true;
                    return Ok(self
                        .current
                        .take()
                        .map(|(rep, sts)| self.finish_group(rep, sts)));
                }
            }
        }
    }
}

impl Operator for GroupAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.next_group(false)
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        let mut out = Vec::new();
        while out.len() < self.batch {
            match self.next_group(true)? {
                Some(t) => out.push(t),
                None => break,
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

/// Hash aggregate: no input-order requirement; emits groups in an arbitrary
/// but deterministic (sorted-by-group-key) order once the input is drained.
pub struct HashAggregate {
    child: BoxOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggExpr>,
    schema: Schema,
    output: Option<std::vec::IntoIter<Tuple>>,
    stash: Stash,
    batch: usize,
}

impl HashAggregate {
    /// Builds a hash aggregate over `group_cols`.
    pub fn new(child: BoxOp, group_cols: Vec<usize>, aggs: Vec<AggExpr>) -> Self {
        let schema = output_schema(child.schema(), &group_cols, &aggs);
        HashAggregate {
            child,
            group_cols,
            aggs,
            schema,
            output: None,
            stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Drains the input and materializes the sorted group rows.
    fn build(&mut self, batched: bool) -> Result<()> {
        let mut table: HashMap<Vec<Value>, Vec<AccState>> = HashMap::new();
        while let Some(t) = pull_row(&mut self.child, &mut self.stash, batched)? {
            let key = t.key(&self.group_cols);
            let states = table
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|a| AccState::new(a.func)).collect());
            for (agg, st) in self.aggs.iter().zip(states.iter_mut()) {
                st.update(agg.arg.eval(&t)?);
            }
        }
        let mut rows: Vec<Tuple> = table
            .into_iter()
            .map(|(key, states)| {
                let mut values = key;
                values.extend(states.into_iter().map(AccState::finish));
                Tuple::new(values)
            })
            .collect();
        rows.sort();
        self.output = Some(rows.into_iter());
        Ok(())
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.output.is_none() {
            self.build(false)?;
        }
        Ok(self.output.as_mut().expect("materialized").next())
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.output.is_none() {
            self.build(true)?;
        }
        let it = self.output.as_mut().expect("materialized");
        let out: Vec<Tuple> = it.by_ref().take(self.batch).collect();
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(g, v)| Tuple::new(vec![Value::Int(g), Value::Int(v)]))
            .collect()
    }

    fn sorted_input() -> Vec<Tuple> {
        rows(&[(1, 10), (1, 20), (2, 5), (3, 1), (3, 2), (3, 3)])
    }

    fn aggs() -> Vec<AggExpr> {
        vec![
            AggExpr::new(AggFunc::Count, Expr::col(1), "cnt"),
            AggExpr::new(AggFunc::Sum, Expr::col(1), "total"),
            AggExpr::new(AggFunc::Min, Expr::col(1), "lo"),
            AggExpr::new(AggFunc::Max, Expr::col(1), "hi"),
            AggExpr::new(AggFunc::Avg, Expr::col(1), "mean"),
        ]
    }

    #[test]
    fn group_aggregate_streams_groups() {
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), sorted_input());
        let op = GroupAggregate::new(Box::new(src), vec![0], aggs());
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 3);
        // group 3: count 3, sum 6, min 1, max 3, avg 2.0
        assert_eq!(
            out[2],
            Tuple::new(vec![
                Value::Int(3),
                Value::Int(3),
                Value::Int(6),
                Value::Int(1),
                Value::Int(3),
                Value::Double(2.0)
            ])
        );
    }

    #[test]
    fn hash_aggregate_matches_group_aggregate() {
        let mut shuffled = sorted_input();
        shuffled.reverse();
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), shuffled);
        let op = HashAggregate::new(Box::new(src), vec![0], aggs());
        let hash_out = collect(Box::new(op)).unwrap();

        let src = ValuesOp::new(Schema::ints(&["g", "v"]), sorted_input());
        let op = GroupAggregate::new(Box::new(src), vec![0], aggs());
        let sort_out = collect(Box::new(op)).unwrap();
        assert_eq!(hash_out, sort_out);
    }

    #[test]
    fn nulls_ignored_by_aggregates() {
        let data = vec![
            Tuple::new(vec![Value::Int(1), Value::Null]),
            Tuple::new(vec![Value::Int(1), Value::Int(5)]),
        ];
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), data);
        let op = GroupAggregate::new(Box::new(src), vec![0], aggs());
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out[0].get(1), &Value::Int(1), "count skips null");
        assert_eq!(out[0].get(2), &Value::Int(5));
    }

    #[test]
    fn empty_input_no_groups() {
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), vec![]);
        let op = GroupAggregate::new(Box::new(src), vec![0], aggs());
        assert!(collect(Box::new(op)).unwrap().is_empty());
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), vec![]);
        let op = HashAggregate::new(Box::new(src), vec![0], aggs());
        assert!(collect(Box::new(op)).unwrap().is_empty());
    }

    #[test]
    fn no_group_columns_single_group() {
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), sorted_input());
        let op = GroupAggregate::new(
            Box::new(src),
            vec![],
            vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")],
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out, vec![Tuple::new(vec![Value::Int(41)])]);
    }

    #[test]
    fn output_schema_names() {
        let src = ValuesOp::new(Schema::ints(&["g", "v"]), vec![]);
        let op = GroupAggregate::new(
            Box::new(src),
            vec![0],
            vec![AggExpr::new(AggFunc::Avg, Expr::col(1), "mean")],
        );
        assert_eq!(op.schema().names(), vec!["g", "mean"]);
        assert_eq!(op.schema().column(1).ty, DataType::Double);
    }
}
