//! Projection (with computed columns).

use crate::expr::Expr;
use crate::op::{BoxOp, Operator};
use pyro_common::{Result, Schema, Tuple};

/// Evaluates one expression per output column.
pub struct Project {
    child: BoxOp,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl Project {
    /// Builds a projection with explicit output schema (names/types of the
    /// computed columns).
    pub fn new(child: BoxOp, exprs: Vec<Expr>, schema: Schema) -> Self {
        debug_assert_eq!(exprs.len(), schema.len());
        Project {
            child,
            exprs,
            schema,
        }
    }

    /// Convenience: keep the columns at `indices`, preserving names.
    pub fn keep(child: BoxOp, indices: &[usize]) -> Self {
        let schema = child.schema().project(indices);
        let exprs = indices.iter().map(|&i| Expr::Col(i)).collect();
        Project {
            child,
            exprs,
            schema,
        }
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.child.next()? {
            None => Ok(None),
            Some(t) => {
                let values = self
                    .exprs
                    .iter()
                    .map(|e| e.eval(&t))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Tuple::new(values)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};
    use pyro_common::{Column, DataType, Value};

    #[test]
    fn keep_projects_columns() {
        let rows = vec![Tuple::new(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
        ])];
        let src = ValuesOp::new(Schema::ints(&["a", "b", "c"]), rows);
        let p = Project::keep(Box::new(src), &[2, 0]);
        assert_eq!(p.schema().names(), vec!["c", "a"]);
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out[0], Tuple::new(vec![Value::Int(3), Value::Int(1)]));
    }

    #[test]
    fn computed_columns() {
        let rows = vec![Tuple::new(vec![Value::Int(3), Value::Int(4)])];
        let src = ValuesOp::new(Schema::ints(&["q", "p"]), rows);
        let p = Project::new(
            Box::new(src),
            vec![Expr::mul(Expr::col(0), Expr::col(1))],
            Schema::new(vec![Column::new("value", DataType::Int)]),
        );
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out[0], Tuple::new(vec![Value::Int(12)]));
    }
}
