//! Projection (with computed columns).

use crate::expr::Expr;
use crate::op::{BoxOp, Operator};
use crate::vector::eval_column;
use pyro_common::{ColumnarBatch, Result, Schema, Tuple, Value};

/// Evaluates one expression per output column.
pub struct Project {
    child: BoxOp,
    exprs: Vec<Expr>,
    schema: Schema,
    /// Set when every expression is a plain column reference (the
    /// `Project::keep` shape): the batch path then projects through one
    /// reused scratch buffer instead of interpreting expressions.
    cols: Option<Vec<usize>>,
    scratch: Vec<Value>,
    /// When set (by the plan compiler, for fully columnar subtrees) the
    /// batch pull runs the columnar kernel and materializes rows at this
    /// seam; the row pull (`next`) is unaffected.
    columnar: bool,
}

impl Project {
    /// Builds a projection with explicit output schema (names/types of the
    /// computed columns).
    pub fn new(child: BoxOp, exprs: Vec<Expr>, schema: Schema) -> Self {
        debug_assert_eq!(exprs.len(), schema.len());
        let cols = exprs
            .iter()
            .map(|e| match e {
                Expr::Col(i) => Some(*i),
                _ => None,
            })
            .collect::<Option<Vec<usize>>>();
        Project {
            child,
            exprs,
            schema,
            cols,
            scratch: Vec::new(),
            columnar: false,
        }
    }

    /// Convenience: keep the columns at `indices`, preserving names.
    pub fn keep(child: BoxOp, indices: &[usize]) -> Self {
        let schema = child.schema().project(indices);
        let exprs = indices.iter().map(|&i| Expr::Col(i)).collect();
        Project::new(child, exprs, schema)
    }

    /// Routes this operator's batch pull through the columnar kernel. Set
    /// only when the whole subtree below supports native columnar pulls.
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    fn project_row(&self, t: &Tuple) -> Result<Tuple> {
        let mut values = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            values.push(e.eval(t)?);
        }
        Ok(Tuple::new(values))
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.child.next()? {
            None => Ok(None),
            Some(t) => Ok(Some(self.project_row(&t)?)),
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.columnar {
            return Ok(self.next_columnar()?.map(|b| b.to_rows()));
        }
        let Some(mut batch) = self.child.next_batch()? else {
            return Ok(None);
        };
        if let Some(cols) = &self.cols {
            for t in batch.iter_mut() {
                *t = t.project_into(cols, &mut self.scratch);
            }
        } else {
            for t in batch.iter_mut() {
                let mut values = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    values.push(e.eval(t)?);
                }
                *t = Tuple::new(values);
            }
        }
        Ok(Some(batch))
    }

    /// Native columnar projection: plain column references are a refcount
    /// bump (column shuffling), arithmetic runs column-at-a-time, and the
    /// child's selection vector passes through untouched. Expressions the
    /// kernel can't vectorize project a materialized copy of the batch.
    fn next_columnar(&mut self) -> Result<Option<ColumnarBatch>> {
        let Some(batch) = self.child.next_columnar()? else {
            return Ok(None);
        };
        let mut columns = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            match eval_column(e, &batch) {
                Some(c) => columns.push(c),
                None => {
                    // Row fallback for this batch: evaluate with the
                    // interpreter, then convert back.
                    let rows = batch.to_rows();
                    let mut out = Vec::with_capacity(rows.len());
                    for t in &rows {
                        out.push(self.project_row(t)?);
                    }
                    return Ok(Some(ColumnarBatch::from_rows(&out)));
                }
            }
        }
        Ok(Some(batch.with_columns(columns)))
    }

    fn batch_size(&self) -> usize {
        self.child.batch_size()
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.child.set_batch_size(rows);
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Row-for-row: the child's cardinality is ours.
        self.child.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, collect_batched, ValuesOp};
    use pyro_common::{Column, DataType, Value};

    #[test]
    fn keep_projects_columns() {
        let rows = vec![Tuple::new(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
        ])];
        let src = ValuesOp::new(Schema::ints(&["a", "b", "c"]), rows);
        let p = Project::keep(Box::new(src), &[2, 0]);
        assert_eq!(p.schema().names(), vec!["c", "a"]);
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out[0], Tuple::new(vec![Value::Int(3), Value::Int(1)]));
    }

    #[test]
    fn computed_columns() {
        let rows = vec![Tuple::new(vec![Value::Int(3), Value::Int(4)])];
        let src = ValuesOp::new(Schema::ints(&["q", "p"]), rows);
        let p = Project::new(
            Box::new(src),
            vec![Expr::mul(Expr::col(0), Expr::col(1))],
            Schema::new(vec![Column::new("value", DataType::Int)]),
        );
        let out = collect(Box::new(p)).unwrap();
        assert_eq!(out[0], Tuple::new(vec![Value::Int(12)]));
    }

    /// The columnar batch pull must emit exactly what the row batch pull
    /// emits for column keeps, arithmetic, and literal columns.
    #[test]
    fn columnar_pull_matches_row_pull() {
        let rows: Vec<Tuple> = (0..50)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    if i % 4 == 0 {
                        Value::Null
                    } else {
                        Value::Double(i as f64 / 4.0)
                    },
                ])
            })
            .collect();
        let cases: Vec<(Vec<Expr>, Schema)> = vec![
            (vec![Expr::col(1), Expr::col(0)], Schema::ints(&["b", "a"])),
            (
                vec![Expr::mul(Expr::col(0), Expr::col(1)), Expr::lit(7i64)],
                Schema::ints(&["m", "k"]),
            ),
        ];
        for (exprs, schema) in cases {
            let reference = collect_batched(Box::new(Project::new(
                Box::new(ValuesOp::new(Schema::ints(&["a", "b"]), rows.clone())),
                exprs.clone(),
                schema.clone(),
            )))
            .unwrap();
            let mut columnar = Project::new(
                Box::new(ValuesOp::new(Schema::ints(&["a", "b"]), rows.clone())),
                exprs.clone(),
                schema,
            );
            columnar.set_columnar(true);
            let out = collect_batched(Box::new(columnar)).unwrap();
            assert_eq!(reference, out, "exprs {exprs:?}");
        }
    }
}
