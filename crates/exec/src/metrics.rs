//! Shared execution counters.

use std::cell::Cell;
use std::rc::Rc;

/// Counters every operator in a pipeline shares.
///
/// `comparisons` counts scalar key comparisons (the quantity the paper's
/// Experiment A arguments are about); `run_pages_written` / `run_pages_read`
/// count *sort-spill* I/O only — base-table I/O is tracked by the storage
/// device, so "MRS avoids run generation I/O completely" is the assertion
/// `run_pages_written == 0 && run_pages_read == 0`.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    comparisons: Cell<u64>,
    run_pages_written: Cell<u64>,
    run_pages_read: Cell<u64>,
    runs_created: Cell<u64>,
}

/// Shared handle to pipeline metrics.
pub type MetricsRef = Rc<ExecMetrics>;

impl ExecMetrics {
    /// Fresh, zeroed counters.
    pub fn new() -> MetricsRef {
        Rc::new(ExecMetrics::default())
    }

    /// Adds `n` scalar comparisons.
    pub fn add_comparisons(&self, n: u64) {
        self.comparisons.set(self.comparisons.get() + n);
    }

    /// Adds `n` spill pages written.
    pub fn add_run_pages_written(&self, n: u64) {
        self.run_pages_written.set(self.run_pages_written.get() + n);
    }

    /// Adds `n` spill pages read.
    pub fn add_run_pages_read(&self, n: u64) {
        self.run_pages_read.set(self.run_pages_read.get() + n);
    }

    /// Records creation of one spill run.
    pub fn add_run(&self) {
        self.runs_created.set(self.runs_created.get() + 1);
    }

    /// Total scalar comparisons so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons.get()
    }

    /// Spill pages written so far.
    pub fn run_pages_written(&self) -> u64 {
        self.run_pages_written.get()
    }

    /// Spill pages read so far.
    pub fn run_pages_read(&self) -> u64 {
        self.run_pages_read.get()
    }

    /// Spill runs created so far.
    pub fn runs_created(&self) -> u64 {
        self.runs_created.get()
    }

    /// Total spill I/O (pages read + written).
    pub fn run_io(&self) -> u64 {
        self.run_pages_written.get() + self.run_pages_read.get()
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.comparisons.set(0);
        self.run_pages_written.set(0);
        self.run_pages_read.set(0);
        self.runs_created.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = ExecMetrics::new();
        m.add_comparisons(5);
        m.add_comparisons(2);
        m.add_run_pages_written(3);
        m.add_run_pages_read(1);
        m.add_run();
        assert_eq!(m.comparisons(), 7);
        assert_eq!(m.run_io(), 4);
        assert_eq!(m.runs_created(), 1);
        m.reset();
        assert_eq!(m.comparisons(), 0);
        assert_eq!(m.run_io(), 0);
    }
}
