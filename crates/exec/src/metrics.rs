//! Shared execution counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters every operator in a pipeline shares.
///
/// `comparisons` counts scalar key comparisons (the quantity the paper's
/// Experiment A arguments are about); `run_pages_written` / `run_pages_read`
/// count *sort-spill* I/O only — base-table I/O is tracked by the storage
/// device, so "MRS avoids run generation I/O completely" is the assertion
/// `run_pages_written == 0 && run_pages_read == 0`. `cache_hits` /
/// `cache_misses` report the buffer pool's hot/cold split for one
/// execution (always 0 when the session bypasses the pool); unlike the
/// four paper counters they are *not* part of any parity contract —
/// warmth legitimately varies run to run.
///
/// The counters are relaxed atomics so a metrics block can cross thread
/// boundaries, but the parallel engine does **not** share one block between
/// workers: each worker fragment charges its own `ExecMetrics` and the
/// exchange operator that owns the workers merges them into the pipeline's
/// block — in worker-index order — when the last fragment finishes (see
/// [`ExecMetrics::merge_from`]). Addition commutes, so merged totals are
/// bit-identical to serial execution whenever the per-worker work is.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    comparisons: AtomicU64,
    run_pages_written: AtomicU64,
    run_pages_read: AtomicU64,
    runs_created: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

/// Shared handle to pipeline metrics.
pub type MetricsRef = Arc<ExecMetrics>;

impl ExecMetrics {
    /// Fresh, zeroed counters.
    pub fn new() -> MetricsRef {
        Arc::new(ExecMetrics::default())
    }

    /// Adds `n` scalar comparisons.
    pub fn add_comparisons(&self, n: u64) {
        self.comparisons.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` spill pages written.
    pub fn add_run_pages_written(&self, n: u64) {
        self.run_pages_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` spill pages read.
    pub fn add_run_pages_read(&self, n: u64) {
        self.run_pages_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records creation of one spill run.
    pub fn add_run(&self) {
        self.runs_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` buffer-pool page hits (page reads served from a resident
    /// frame). Charged by [`crate::Pipeline`] as the pool-counter delta of
    /// one execution; always 0 when the session bypasses the pool.
    pub fn add_cache_hits(&self, n: u64) {
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` buffer-pool page misses (page reads that went to the
    /// device cold).
    pub fn add_cache_misses(&self, n: u64) {
        self.cache_misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds another counter block into this one (the per-worker metrics
    /// merge performed at exchange teardown). The source is left untouched.
    pub fn merge_from(&self, other: &ExecMetrics) {
        self.add_comparisons(other.comparisons());
        self.add_run_pages_written(other.run_pages_written());
        self.add_run_pages_read(other.run_pages_read());
        self.runs_created
            .fetch_add(other.runs_created(), Ordering::Relaxed);
        self.add_cache_hits(other.cache_hits());
        self.add_cache_misses(other.cache_misses());
    }

    /// Total scalar comparisons so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons.load(Ordering::Relaxed)
    }

    /// Spill pages written so far.
    pub fn run_pages_written(&self) -> u64 {
        self.run_pages_written.load(Ordering::Relaxed)
    }

    /// Spill pages read so far.
    pub fn run_pages_read(&self) -> u64 {
        self.run_pages_read.load(Ordering::Relaxed)
    }

    /// Spill runs created so far.
    pub fn runs_created(&self) -> u64 {
        self.runs_created.load(Ordering::Relaxed)
    }

    /// Total spill I/O (pages read + written).
    pub fn run_io(&self) -> u64 {
        self.run_pages_written() + self.run_pages_read()
    }

    /// Buffer-pool hits charged to this pipeline so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool misses charged to this pipeline so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.comparisons.store(0, Ordering::Relaxed);
        self.run_pages_written.store(0, Ordering::Relaxed);
        self.run_pages_read.store(0, Ordering::Relaxed);
        self.runs_created.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = ExecMetrics::new();
        m.add_comparisons(5);
        m.add_comparisons(2);
        m.add_run_pages_written(3);
        m.add_run_pages_read(1);
        m.add_run();
        assert_eq!(m.comparisons(), 7);
        assert_eq!(m.run_io(), 4);
        assert_eq!(m.runs_created(), 1);
        m.reset();
        assert_eq!(m.comparisons(), 0);
        assert_eq!(m.run_io(), 0);
    }

    #[test]
    fn merge_folds_all_four_counters() {
        let a = ExecMetrics::new();
        a.add_comparisons(10);
        let b = ExecMetrics::new();
        b.add_comparisons(5);
        b.add_run_pages_written(2);
        b.add_run_pages_read(1);
        b.add_run();
        b.add_cache_hits(4);
        b.add_cache_misses(2);
        a.merge_from(&b);
        assert_eq!(a.comparisons(), 15);
        assert_eq!(a.run_pages_written(), 2);
        assert_eq!(a.run_pages_read(), 1);
        assert_eq!(a.runs_created(), 1);
        assert_eq!(a.cache_hits(), 4);
        assert_eq!(a.cache_misses(), 2);
        // merge is non-destructive
        assert_eq!(b.comparisons(), 5);
    }
}
