//! Vectorized expression kernels over [`ColumnarBatch`]es.
//!
//! Two entry points:
//!
//! * [`VecPredicate`] compiles the pushed-down filter shape (conjunctions of
//!   comparisons over columns and literals) into per-column loops that
//!   *refine a selection vector* — no row is materialized and no `Value` is
//!   cloned. Semantics are bit-identical to [`Expr::compile_predicate`] /
//!   `Expr::eval_bool`: a comparison with a NULL operand is not-true, and
//!   mixed-type comparisons follow [`Value`]'s total order (numerics compare
//!   numerically, any numeric sorts before any string, NULLs last).
//! * [`eval_column`] evaluates a projection expression column-at-a-time,
//!   returning a shared column (`Expr::Col` is a refcount bump) or a freshly
//!   computed one for arithmetic.
//!
//! Anything outside these shapes returns `None` and the calling operator
//! falls back to its row implementation for that batch — a correctness
//! escape hatch, not an error.

use crate::expr::{CmpOp, Expr};
use pyro_common::columnar::StrArena;
use pyro_common::{ColumnBuilder, ColumnData, ColumnVec, ColumnarBatch, NullBitmap, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// One conjunct of a compiled vectorized predicate.
enum Term {
    /// `col <op> lit` (or the mirrored `lit <op> col` with `swapped`).
    ColLit {
        col: usize,
        op: CmpOp,
        lit: Value,
        swapped: bool,
    },
    /// `col <op> col`.
    ColCol { a: usize, b: usize, op: CmpOp },
    /// A constant conjunct (`Lit` truthiness, NULL literals, lit-lit).
    Const(bool),
}

/// A filter predicate compiled to selection-vector refinement loops.
pub struct VecPredicate {
    terms: Vec<Term>,
}

impl VecPredicate {
    /// Compiles `expr` if it is a conjunction of comparisons over columns
    /// and literals (the shape every pushed-down filter in this engine
    /// has). Returns `None` when any conjunct needs the row interpreter.
    pub fn compile(expr: &Expr) -> Option<VecPredicate> {
        let mut terms = Vec::new();
        collect_terms(expr, &mut terms)?;
        Some(VecPredicate { terms })
    }

    /// Refines `sel` (ascending physical row indices into `batch`) to the
    /// rows every conjunct accepts, in place.
    pub fn refine(&self, batch: &ColumnarBatch, sel: &mut Vec<u32>) {
        for term in &self.terms {
            if sel.is_empty() {
                return;
            }
            match term {
                Term::Const(true) => {}
                Term::Const(false) => {
                    sel.clear();
                    return;
                }
                Term::ColLit {
                    col,
                    op,
                    lit,
                    swapped,
                } => refine_col_lit(batch.column(*col), *op, lit, *swapped, sel),
                Term::ColCol { a, b, op } => {
                    refine_col_col(batch.column(*a), batch.column(*b), *op, sel)
                }
            }
        }
    }
}

fn collect_terms(expr: &Expr, out: &mut Vec<Term>) -> Option<()> {
    match expr {
        Expr::And(a, b) => {
            collect_terms(a, out)?;
            collect_terms(b, out)
        }
        Expr::Cmp(op, a, b) => {
            let term = match (&**a, &**b) {
                (Expr::Col(i), Expr::Lit(v)) => {
                    if v.is_null() {
                        Term::Const(false)
                    } else {
                        Term::ColLit {
                            col: *i,
                            op: *op,
                            lit: v.clone(),
                            swapped: false,
                        }
                    }
                }
                (Expr::Lit(v), Expr::Col(i)) => {
                    if v.is_null() {
                        Term::Const(false)
                    } else {
                        Term::ColLit {
                            col: *i,
                            op: *op,
                            lit: v.clone(),
                            swapped: true,
                        }
                    }
                }
                (Expr::Col(i), Expr::Col(j)) => Term::ColCol {
                    a: *i,
                    b: *j,
                    op: *op,
                },
                (Expr::Lit(v), Expr::Lit(w)) => {
                    Term::Const(!v.is_null() && !w.is_null() && op.test(v.cmp(w)))
                }
                _ => return None,
            };
            out.push(term);
            Some(())
        }
        Expr::Lit(v) => {
            let truthy = match v {
                Value::Null => false,
                Value::Int(i) => *i != 0,
                Value::Double(d) => *d != 0.0,
                Value::Str(s) => !s.is_empty(),
            };
            out.push(Term::Const(truthy));
            Some(())
        }
        _ => None,
    }
}

/// Applies `op` to the cell-vs-literal ordering, honoring operand order.
#[inline]
fn test(op: CmpOp, cell_vs_lit: Ordering, swapped: bool) -> bool {
    // `lit.cmp(cell)` is the reverse of `cell.cmp(lit)` under a total order.
    op.test(if swapped {
        cell_vs_lit.reverse()
    } else {
        cell_vs_lit
    })
}

/// Keeps the selected rows where `col <op> lit` holds (NULL cells never
/// pass). One typed dispatch, then a tight loop.
fn refine_col_lit(col: &Arc<ColumnVec>, op: CmpOp, lit: &Value, swapped: bool, sel: &mut Vec<u32>) {
    let nulls = col.nulls();
    match (col.data(), lit) {
        (ColumnData::Int(v), Value::Int(k)) => {
            let k = *k;
            sel.retain(|&i| {
                let i = i as usize;
                !nulls.get(i) && test(op, v[i].cmp(&k), swapped)
            });
        }
        (ColumnData::Int(v), Value::Double(d)) => {
            let d = *d;
            sel.retain(|&i| {
                let i = i as usize;
                !nulls.get(i) && test(op, (v[i] as f64).total_cmp(&d), swapped)
            });
        }
        (ColumnData::Double(v), Value::Int(k)) => {
            let d = *k as f64;
            sel.retain(|&i| {
                let i = i as usize;
                !nulls.get(i) && test(op, v[i].total_cmp(&d), swapped)
            });
        }
        (ColumnData::Double(v), Value::Double(d)) => {
            let d = *d;
            sel.retain(|&i| {
                let i = i as usize;
                !nulls.get(i) && test(op, v[i].total_cmp(&d), swapped)
            });
        }
        (ColumnData::Str(a), Value::Str(s)) => {
            let s = s.as_bytes();
            sel.retain(|&i| {
                let i = i as usize;
                !nulls.get(i) && test(op, a.bytes_at(i).cmp(s), swapped)
            });
        }
        // Cross-type rank comparisons are constant per `Value`'s total
        // order: any numeric < any string.
        (ColumnData::Int(_) | ColumnData::Double(_), Value::Str(_)) => {
            retain_rank(nulls, op, Ordering::Less, swapped, sel);
        }
        (ColumnData::Str(_), Value::Int(_) | Value::Double(_)) => {
            retain_rank(nulls, op, Ordering::Greater, swapped, sel);
        }
        (ColumnData::Mixed(vals), lit) => {
            sel.retain(|&i| {
                let x = &vals[i as usize];
                !x.is_null() && test(op, x.cmp(lit), swapped)
            });
        }
        // A NULL literal was already folded to `Const(false)`.
        (_, Value::Null) => sel.clear(),
    }
}

/// Rank-based cross-type case: every non-NULL cell compares `rank` against
/// the literal, so the verdict only depends on the null bit.
fn retain_rank(nulls: &NullBitmap, op: CmpOp, rank: Ordering, swapped: bool, sel: &mut Vec<u32>) {
    if test(op, rank, swapped) {
        if nulls.any() {
            sel.retain(|&i| !nulls.get(i as usize));
        }
    } else {
        sel.clear();
    }
}

/// Keeps the selected rows where `a <op> b` holds (a NULL on either side
/// never passes).
fn refine_col_col(a: &Arc<ColumnVec>, b: &Arc<ColumnVec>, op: CmpOp, sel: &mut Vec<u32>) {
    let (an, bn) = (a.nulls(), b.nulls());
    match (a.data(), b.data()) {
        (ColumnData::Int(x), ColumnData::Int(y)) => {
            sel.retain(|&i| {
                let i = i as usize;
                !an.get(i) && !bn.get(i) && op.test(x[i].cmp(&y[i]))
            });
        }
        (ColumnData::Double(x), ColumnData::Double(y)) => {
            sel.retain(|&i| {
                let i = i as usize;
                !an.get(i) && !bn.get(i) && op.test(x[i].total_cmp(&y[i]))
            });
        }
        (ColumnData::Int(x), ColumnData::Double(y)) => {
            sel.retain(|&i| {
                let i = i as usize;
                !an.get(i) && !bn.get(i) && op.test((x[i] as f64).total_cmp(&y[i]))
            });
        }
        (ColumnData::Double(x), ColumnData::Int(y)) => {
            sel.retain(|&i| {
                let i = i as usize;
                !an.get(i) && !bn.get(i) && op.test(x[i].total_cmp(&(y[i] as f64)))
            });
        }
        (ColumnData::Str(x), ColumnData::Str(y)) => {
            sel.retain(|&i| {
                let i = i as usize;
                !an.get(i) && !bn.get(i) && op.test(x.bytes_at(i).cmp(y.bytes_at(i)))
            });
        }
        _ => {
            sel.retain(|&i| {
                let i = i as usize;
                !an.get(i) && !bn.get(i) && op.test(a.cell(i).order(b.cell(i)))
            });
        }
    }
}

/// Evaluates a projection expression over a batch, column-at-a-time.
///
/// `Col` shares the input column; `Lit` materializes a constant column;
/// `Add`/`Sub`/`Mul` compute over every *physical* row (values at
/// unselected indices are real decoded cells, so computing them is safe and
/// keeps the loops branch-free) with semantics identical to [`Value::add`]
/// and friends: NULL propagates, `Int × Int` wraps, mixed numerics widen to
/// `Double`, strings yield NULL. Returns `None` for shapes the Project
/// kernel doesn't vectorize (comparisons inside a SELECT list).
pub fn eval_column(expr: &Expr, batch: &ColumnarBatch) -> Option<Arc<ColumnVec>> {
    match expr {
        Expr::Col(i) => Some(Arc::clone(batch.column(*i))),
        Expr::Lit(v) => Some(Arc::new(const_column(v, batch.num_rows()))),
        Expr::Add(a, b) => numeric_kernel(a, b, batch, |x, y| x + y, i64::wrapping_add),
        Expr::Sub(a, b) => numeric_kernel(a, b, batch, |x, y| x - y, i64::wrapping_sub),
        Expr::Mul(a, b) => numeric_kernel(a, b, batch, |x, y| x * y, i64::wrapping_mul),
        Expr::Cmp(..) | Expr::And(..) => None,
    }
}

/// A column holding `v` at every row.
fn const_column(v: &Value, n: usize) -> ColumnVec {
    let mut nulls = NullBitmap::new();
    let data = match v {
        Value::Null => {
            return ColumnVec::new(ColumnData::Int(vec![0; n]), NullBitmap::all_null(n));
        }
        Value::Int(k) => ColumnData::Int(vec![*k; n]),
        Value::Double(d) => ColumnData::Double(vec![*d; n]),
        Value::Str(s) => {
            let mut a = StrArena::new();
            for _ in 0..n {
                a.push(s);
            }
            ColumnData::Str(a)
        }
    };
    for _ in 0..n {
        nulls.push(false);
    }
    ColumnVec::new(data, nulls)
}

/// `a <op> b` over two evaluated columns with `numeric_binop` semantics.
fn numeric_kernel(
    a: &Expr,
    b: &Expr,
    batch: &ColumnarBatch,
    f_f: impl Fn(f64, f64) -> f64,
    f_i: impl Fn(i64, i64) -> i64,
) -> Option<Arc<ColumnVec>> {
    let a = eval_column(a, batch)?;
    let b = eval_column(b, batch)?;
    let n = batch.num_rows();
    let (an, bn) = (a.nulls(), b.nulls());
    let col = match (a.data(), b.data()) {
        (ColumnData::Int(x), ColumnData::Int(y)) => {
            let mut nulls = NullBitmap::new();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                nulls.push(an.get(i) || bn.get(i));
                out.push(f_i(x[i], y[i]));
            }
            ColumnVec::new(ColumnData::Int(out), nulls)
        }
        (
            ColumnData::Int(_) | ColumnData::Double(_),
            ColumnData::Int(_) | ColumnData::Double(_),
        ) => {
            let (x, y) = (as_f64_view(a.data()), as_f64_view(b.data()));
            let mut nulls = NullBitmap::new();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                nulls.push(an.get(i) || bn.get(i));
                out.push(f_f(x.get(i), y.get(i)));
            }
            ColumnVec::new(ColumnData::Double(out), nulls)
        }
        // Strings or mixed columns: defer to `Value` arithmetic cell-wise,
        // so the result (including Str -> NULL) matches the row path bit
        // for bit.
        _ => {
            let mut builder = ColumnBuilder::new();
            for i in 0..n {
                let (va, vb) = (cell_value(&a, i), cell_value(&b, i));
                builder.push_value(&apply_value(&va, &vb, &f_f, &f_i));
            }
            builder.finish()
        }
    };
    Some(Arc::new(col))
}

/// Borrow-cheap f64 view over an Int or Double column (kernel-internal).
enum F64View<'a> {
    Int(&'a [i64]),
    Double(&'a [f64]),
}

impl F64View<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            F64View::Int(v) => v[i] as f64,
            F64View::Double(v) => v[i],
        }
    }
}

fn as_f64_view(data: &ColumnData) -> F64View<'_> {
    match data {
        ColumnData::Int(v) => F64View::Int(v),
        ColumnData::Double(v) => F64View::Double(v),
        _ => unreachable!("numeric view over non-numeric column"),
    }
}

fn cell_value(col: &ColumnVec, i: usize) -> Value {
    col.value_at(i)
}

fn apply_value(
    a: &Value,
    b: &Value,
    f_f: &impl Fn(f64, f64) -> f64,
    f_i: &impl Fn(i64, i64) -> i64,
) -> Value {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Int(x), Value::Int(y)) => Value::Int(f_i(*x, *y)),
        _ => match (a.as_double(), b.as_double()) {
            (Some(x), Some(y)) => Value::Double(f_f(x, y)),
            _ => Value::Null,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::Tuple;

    /// Rows mixing every type in column 0, Ints in column 1, a second Int
    /// column with NULL holes in column 2.
    fn test_batch() -> (Vec<Tuple>, ColumnarBatch) {
        let rows: Vec<Tuple> = (0..40)
            .map(|i| {
                let c0 = match i % 5 {
                    0 => Value::Int(i),
                    1 => Value::Double(i as f64 / 2.0),
                    2 => Value::Str(format!("s{i}")),
                    3 => Value::Null,
                    _ => Value::Int(-i),
                };
                let c2 = if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 11)
                };
                rows_row(c0, i, c2)
            })
            .collect();
        let batch = ColumnarBatch::from_rows(&rows);
        (rows, batch)
    }

    fn rows_row(c0: Value, i: i64, c2: Value) -> Tuple {
        Tuple::new(vec![c0, Value::Int(i), c2])
    }

    fn check_parity(expr: &Expr, rows: &[Tuple], batch: &ColumnarBatch) {
        let pred = VecPredicate::compile(expr).expect("compilable shape");
        let mut sel = batch.sel_vec();
        pred.refine(batch, &mut sel);
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, t)| expr.eval_bool(t).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel, expect, "selection diverged for {expr:?}");
    }

    #[test]
    fn predicate_matches_row_interpreter() {
        let (rows, batch) = test_batch();
        let exprs = [
            Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit(10i64)),
            Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::lit(7i64)),
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::lit(Value::Double(3.0))),
            Expr::cmp(CmpOp::Ne, Expr::col(0), Expr::lit(Value::Str("s2".into()))),
            Expr::cmp(CmpOp::Gt, Expr::lit(20i64), Expr::col(1)),
            Expr::cmp(CmpOp::Le, Expr::col(2), Expr::col(1)),
            Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::Lit(Value::Null)),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::lit(5i64))),
                Box::new(Expr::cmp(CmpOp::Ne, Expr::col(2), Expr::lit(3i64))),
            ),
            Expr::Lit(Value::Int(1)),
            Expr::Lit(Value::Int(0)),
            Expr::cmp(CmpOp::Lt, Expr::lit(1i64), Expr::lit(2i64)),
        ];
        for e in &exprs {
            check_parity(e, &rows, &batch);
        }
    }

    #[test]
    fn uncompilable_shapes_return_none() {
        let arith_inside = Expr::cmp(
            CmpOp::Lt,
            Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1))),
            Expr::lit(5i64),
        );
        assert!(VecPredicate::compile(&arith_inside).is_none());
    }

    #[test]
    fn eval_column_matches_row_eval() {
        let (rows, batch) = test_batch();
        let exprs = [
            Expr::col(1),
            Expr::lit(5i64),
            Expr::Lit(Value::Null),
            Expr::Lit(Value::Str("k".into())),
            Expr::Add(Box::new(Expr::col(1)), Box::new(Expr::col(2))),
            Expr::Sub(Box::new(Expr::col(1)), Box::new(Expr::lit(3i64))),
            Expr::mul(Expr::col(0), Expr::col(1)),
            Expr::mul(Expr::col(1), Expr::lit(Value::Double(0.5))),
        ];
        for e in &exprs {
            let col = eval_column(e, &batch).expect("vectorizable shape");
            for (i, t) in rows.iter().enumerate() {
                assert_eq!(col.value_at(i), e.eval(t).unwrap(), "row {i} of {e:?}");
            }
        }
        assert!(
            eval_column(&Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::lit(1i64)), &batch).is_none()
        );
    }
}
