//! Scalar expressions and predicates.
//!
//! Deliberately small: column references, literals, arithmetic (the paper's
//! Query 5 computes `Quantity * Price`), and comparisons with SQL NULL
//! semantics (any comparison involving NULL is not-true).

use pyro_common::{Result, Tuple, Value};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    pub(crate) fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A scalar expression over a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column at position.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// `a + b`
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`
    Mul(Box<Expr>, Box<Expr>),
    /// Comparison producing `Int(1)`, `Int(0)` or `Null`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND with SQL three-valued collapse to (1, 0, Null).
    And(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference helper.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Comparison helper.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Multiplication helper.
    #[allow(clippy::should_implement_trait)] // constructor, not arithmetic on Expr values
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Conjunction of many terms (`true` literal when empty).
    pub fn and_all(terms: Vec<Expr>) -> Expr {
        terms
            .into_iter()
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
            .unwrap_or(Expr::Lit(Value::Int(1)))
    }

    /// Evaluates against a tuple.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        Ok(match self {
            Expr::Col(i) => t.get(*i).clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Add(a, b) => a.eval(t)?.add(&b.eval(t)?),
            Expr::Sub(a, b) => a.eval(t)?.sub(&b.eval(t)?),
            Expr::Mul(a, b) => a.eval(t)?.mul(&b.eval(t)?),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(t)?, b.eval(t)?);
                if va.is_null() || vb.is_null() {
                    Value::Null
                } else {
                    Value::Int(op.test(va.cmp(&vb)) as i64)
                }
            }
            Expr::And(a, b) => {
                let va = a.eval(t)?;
                let vb = b.eval(t)?;
                match (truthiness(&va), truthiness(&vb)) {
                    (Some(false), _) | (_, Some(false)) => Value::Int(0),
                    (Some(true), Some(true)) => Value::Int(1),
                    _ => Value::Null,
                }
            }
        })
    }

    /// Evaluates as a predicate: true iff the result is a non-null non-zero.
    pub fn eval_bool(&self, t: &Tuple) -> Result<bool> {
        Ok(truthiness(&self.eval(t)?) == Some(true))
    }

    /// Batch predicate: keeps exactly the rows `eval_bool` accepts,
    /// compacting `batch` in place. Compilable predicates (see
    /// [`Expr::compile_predicate`]) run as a closure with no per-row tree
    /// walk; anything else falls back to row-wise `eval_bool`.
    pub fn retain_passing(&self, batch: &mut Vec<Tuple>) -> Result<()> {
        if let Some(pred) = self.compile_predicate() {
            batch.retain(|t| pred(t));
            return Ok(());
        }
        let mut keep = Vec::with_capacity(batch.len());
        for t in batch.iter() {
            keep.push(self.eval_bool(t)?);
        }
        let mut flags = keep.into_iter();
        batch.retain(|_| flags.next().expect("one flag per row"));
        Ok(())
    }

    /// Pre-compiles comparisons and conjunctions over columns and literals
    /// — the shape every pushed-down filter in this engine has — into a
    /// closure that borrows operand values instead of cloning them and
    /// cannot error. NULL semantics match `eval_bool` exactly: a comparison
    /// with a NULL operand is not-true, and `false AND NULL` is false.
    /// Returns `None` for predicates needing the full interpreter.
    pub fn compile_predicate(&self) -> Option<CompiledPredicate> {
        Some(match self {
            Expr::Cmp(op, a, b) => {
                let op = *op;
                match (&**a, &**b) {
                    (Expr::Col(i), Expr::Lit(v)) => {
                        if v.is_null() {
                            return Some(Box::new(|_| false));
                        }
                        let (i, v) = (*i, v.clone());
                        Box::new(move |t: &Tuple| {
                            let x = t.get(i);
                            !x.is_null() && op.test(x.cmp(&v))
                        })
                    }
                    (Expr::Lit(v), Expr::Col(i)) => {
                        if v.is_null() {
                            return Some(Box::new(|_| false));
                        }
                        let (i, v) = (*i, v.clone());
                        Box::new(move |t: &Tuple| {
                            let x = t.get(i);
                            !x.is_null() && op.test(v.cmp(x))
                        })
                    }
                    (Expr::Col(i), Expr::Col(j)) => {
                        let (i, j) = (*i, *j);
                        Box::new(move |t: &Tuple| {
                            let (x, y) = (t.get(i), t.get(j));
                            !x.is_null() && !y.is_null() && op.test(x.cmp(y))
                        })
                    }
                    (Expr::Lit(v), Expr::Lit(w)) => {
                        let k = !v.is_null() && !w.is_null() && op.test(v.cmp(w));
                        Box::new(move |_| k)
                    }
                    _ => return None,
                }
            }
            Expr::And(a, b) => {
                let (fa, fb) = (a.compile_predicate()?, b.compile_predicate()?);
                Box::new(move |t: &Tuple| fa(t) && fb(t))
            }
            Expr::Lit(v) => {
                let k = truthiness(v) == Some(true);
                Box::new(move |_| k)
            }
            _ => return None,
        })
    }
}

/// A predicate pre-compiled to a branch-lean closure; see
/// [`Expr::compile_predicate`].
pub type CompiledPredicate = Box<dyn Fn(&Tuple) -> bool>;

fn truthiness(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Double(d) => Some(*d != 0.0),
        Value::Str(s) => Some(!s.is_empty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Tuple {
        Tuple::new(vec![Value::Int(3), Value::Double(2.0), Value::Null])
    }

    #[test]
    fn arithmetic() {
        let e = Expr::mul(Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Double(6.0));
        let e = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::lit(1i64)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(4));
        let e = Expr::Sub(Box::new(Expr::col(0)), Box::new(Expr::lit(1i64)));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(2));
    }

    #[test]
    fn comparisons_with_null() {
        let e = Expr::cmp(CmpOp::Eq, Expr::col(2), Expr::lit(0i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        assert!(!e.eval_bool(&row()).unwrap());
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::lit(2i64));
        assert!(e.eval_bool(&row()).unwrap());
        let e = Expr::cmp(CmpOp::Le, Expr::col(0), Expr::lit(2i64));
        assert!(!e.eval_bool(&row()).unwrap());
    }

    #[test]
    fn all_cmp_ops() {
        let t = row();
        let one = |op| {
            Expr::cmp(op, Expr::col(0), Expr::lit(3i64))
                .eval_bool(&t)
                .unwrap()
        };
        assert!(one(CmpOp::Eq));
        assert!(!one(CmpOp::Ne));
        assert!(one(CmpOp::Le));
        assert!(one(CmpOp::Ge));
        assert!(!one(CmpOp::Lt));
        assert!(!one(CmpOp::Gt));
    }

    #[test]
    fn and_semantics() {
        let t = row();
        let tru = Expr::lit(1i64);
        let fls = Expr::lit(0i64);
        let nul = Expr::Lit(Value::Null);
        assert_eq!(
            Expr::And(Box::new(tru.clone()), Box::new(fls.clone()))
                .eval(&t)
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            Expr::And(Box::new(fls), Box::new(nul.clone()))
                .eval(&t)
                .unwrap(),
            Value::Int(0),
            "false AND null = false"
        );
        assert_eq!(
            Expr::And(Box::new(tru), Box::new(nul)).eval(&t).unwrap(),
            Value::Null,
            "true AND null = null"
        );
    }

    #[test]
    fn and_all_empty_is_true() {
        assert!(Expr::and_all(vec![]).eval_bool(&row()).unwrap());
    }

    #[test]
    fn retain_passing_matches_eval_bool() {
        let rows: Vec<Tuple> = (-3..4)
            .map(|i| {
                Tuple::new(vec![
                    if i == 0 { Value::Null } else { Value::Int(i) },
                    Value::Int(i * i),
                ])
            })
            .collect();
        // Borrowable shape (Cmp/And over Col/Lit) and a fallback shape
        // (arithmetic inside the comparison) must both agree with the
        // row-wise interpreter.
        let preds = [
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::lit(0i64)),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::lit(1i64))),
                Box::new(Expr::cmp(CmpOp::Ne, Expr::col(0), Expr::lit(2i64))),
            ),
            Expr::cmp(
                CmpOp::Lt,
                Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1))),
                Expr::lit(5i64),
            ),
        ];
        for p in preds {
            let expect: Vec<Tuple> = rows
                .iter()
                .filter(|t| p.eval_bool(t).unwrap())
                .cloned()
                .collect();
            let mut batch = rows.clone();
            p.retain_passing(&mut batch).unwrap();
            assert_eq!(batch, expect, "predicate {p:?}");
        }
    }
}
