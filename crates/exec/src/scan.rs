//! Access paths: table scan, clustered scan and covering-index scan —
//! serial ([`FileScan`]) and morsel-driven parallel ([`MorselScan`]).
//!
//! All of them read a [`TupleFile`] sequentially; what differs is the schema
//! they expose and the sort order they guarantee (knowledge the *optimizer*
//! holds — the operators themselves just stream pages, counting I/O via the
//! device).

use crate::op::{Operator, DEFAULT_BATCH_SIZE};
use pyro_common::{ColumnBuilder, ColumnarBatch, Result, Schema, Tuple, Value};
use pyro_storage::{TupleFile, TupleFileScan};
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pages claimed per morsel. At the default 4 KB block size this is ~128 KB
/// of encoded tuples per claim — large enough that the shared counter is
/// touched rarely, small enough that stragglers rebalance.
pub const MORSEL_PAGES: usize = 32;

/// Sequential scan over a tuple file (base heap or index entry file).
///
/// Whether this acts as the paper's "Table scan", "C.Idx Scan" (clustering
/// index scan — same file, known order) or "Cov. Idx Scan" (covering-index
/// entry file — narrower schema, key order) is decided by which file and
/// schema the planner binds.
pub struct FileScan {
    schema: Schema,
    scan: TupleFileScan,
    /// Decoded-but-unemitted rows of the current page (batch path only).
    pending: Vec<Tuple>,
    batch: usize,
    /// Tuples in the scanned range, for `size_hint`.
    total: usize,
    emitted: usize,
}

impl FileScan {
    /// Scans `file`, exposing `schema` (column count must match the stored
    /// tuples).
    pub fn new(schema: Schema, file: &TupleFile) -> Self {
        FileScan {
            schema,
            scan: file.scan(),
            pending: Vec::new(),
            batch: DEFAULT_BATCH_SIZE,
            total: file.tuple_count() as usize,
            emitted: 0,
        }
    }

    /// Scans only the half-open page range `[start, end)` of `file` — one
    /// worker's share of a range-partitioned parallel scan. The tuple count
    /// of a partial range is unknown up front, so `size_hint` stays
    /// unbounded.
    pub fn over_pages(schema: Schema, file: &TupleFile, start: usize, end: usize) -> Self {
        FileScan {
            schema,
            scan: file.scan_pages(start, end),
            pending: Vec::new(),
            batch: DEFAULT_BATCH_SIZE,
            total: usize::MAX,
            emitted: 0,
        }
    }
}

impl Operator for FileScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let t = self.scan.next_tuple()?;
        if t.is_some() {
            self.emitted += 1;
        }
        Ok(t)
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        // Decode pages straight into the pending buffer until the batch is
        // full (or the file ends), then hand the vector over whole.
        if self.pending.is_empty() && !self.scan.fill_chunk(&mut self.pending, self.batch)? {
            return Ok(None);
        }
        let out: Vec<Tuple> = if self.pending.len() <= self.batch {
            std::mem::take(&mut self.pending)
        } else {
            self.pending.drain(..self.batch).collect()
        };
        self.emitted += out.len();
        Ok(Some(out))
    }

    /// Native columnar scan: pages decode straight into typed column
    /// vectors — no `Tuple` is boxed. May overshoot the batch size by the
    /// tail of the last decoded page (allowed by the batch contract).
    fn next_columnar(&mut self) -> Result<Option<ColumnarBatch>> {
        debug_assert!(
            self.pending.is_empty(),
            "columnar and row batch pulls must not interleave on a scan"
        );
        let mut builders: Vec<ColumnBuilder> = (0..self.schema.len())
            .map(|_| ColumnBuilder::new())
            .collect();
        if !self.scan.fill_columns(&mut builders, self.batch)? {
            return Ok(None);
        }
        let batch = ColumnarBatch::from_builders(builders);
        self.emitted += batch.num_rows();
        Ok(Some(batch))
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.total == usize::MAX {
            return (self.pending.len(), None);
        }
        let rem = self.total.saturating_sub(self.emitted);
        (rem, Some(rem))
    }
}

/// Binary-searches the half-open page range of a sorted `file` that can
/// hold tuples whose `key_cols` prefix equals `key`, probing the first
/// tuple of O(log P) pages.
///
/// The returned range is a *superset* of the pages holding matches — the
/// first candidate page's opening tuple may still sort below the key — so
/// callers must keep their residual predicate; a conservatively wide range
/// costs extra I/O, never a wrong answer. Probes compare with the same
/// [`Value`] total order the executor's `=` uses, and each probe is a real
/// page read charged to the device like any other.
pub fn eq_key_page_range(
    file: &TupleFile,
    key_cols: &[usize],
    key: &[Value],
) -> Result<(usize, usize)> {
    let pages = file.block_count() as usize;
    if pages == 0 || key_cols.is_empty() || key_cols.len() != key.len() {
        return Ok((0, pages));
    }
    // Orders page p's first tuple against the key, prefix-lexicographically.
    // Writers never emit empty pages, so a `None` probe cannot occur on a
    // well-formed file; treating it as past-the-key keeps the search total.
    let probe = |p: usize| -> Result<CmpOrdering> {
        Ok(match file.scan_pages(p, p + 1).next_tuple()? {
            Some(t) => key_cols
                .iter()
                .zip(key)
                .map(|(&c, k)| t.get(c).cmp(k))
                .find(|o| *o != CmpOrdering::Equal)
                .unwrap_or(CmpOrdering::Equal),
            None => CmpOrdering::Greater,
        })
    };
    // First page whose opening tuple is >= key. Matches can start one page
    // earlier: that page opens below the key but may reach it further in.
    let (mut lo, mut hi) = (0usize, pages);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? == CmpOrdering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let first_ge = lo;
    // First page whose opening tuple is > key: the file is sorted on the
    // probed prefix, so no match can live there or beyond.
    let (mut lo, mut hi) = (first_ge, pages);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? == CmpOrdering::Greater {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok((first_ge.saturating_sub(1), lo))
}

/// The shared work queue of a morsel-driven parallel scan: worker scans
/// claim fixed-size page ranges of one file from an atomic cursor, so fast
/// workers naturally take more morsels (Leis et al.'s load-balancing
/// property) without any coordination beyond one `fetch_add`.
#[derive(Debug)]
pub struct MorselSource {
    file: TupleFile,
    next_page: AtomicUsize,
    pages_per_morsel: usize,
}

impl MorselSource {
    /// A shared morsel queue over `file` with [`MORSEL_PAGES`]-page morsels.
    pub fn new(file: &TupleFile) -> Arc<MorselSource> {
        MorselSource::with_morsel_pages(file, MORSEL_PAGES)
    }

    /// A shared morsel queue with an explicit morsel size in pages.
    pub fn with_morsel_pages(file: &TupleFile, pages: usize) -> Arc<MorselSource> {
        Arc::new(MorselSource {
            file: file.clone(),
            next_page: AtomicUsize::new(0),
            pages_per_morsel: pages.max(1),
        })
    }

    /// Claims the next unclaimed page range, or `None` when the file is
    /// fully claimed. Each page is claimed exactly once across all workers,
    /// so total device reads match a serial scan.
    pub fn claim(&self) -> Option<(usize, usize)> {
        let total = self.file.block_count() as usize;
        let start = self
            .next_page
            .fetch_add(self.pages_per_morsel, Ordering::Relaxed);
        if start >= total {
            return None;
        }
        Some((start, (start + self.pages_per_morsel).min(total)))
    }
}

/// One worker's scan operator over a shared [`MorselSource`]: streams the
/// morsels it claims, in claim order. Several `MorselScan`s over the same
/// source partition the file between them dynamically.
pub struct MorselScan {
    schema: Schema,
    source: Arc<MorselSource>,
    current: Option<TupleFileScan>,
    pending: Vec<Tuple>,
    batch: usize,
}

impl MorselScan {
    /// A worker scan pulling morsels from `source`, exposing `schema`.
    pub fn new(schema: Schema, source: Arc<MorselSource>) -> Self {
        MorselScan {
            schema,
            source,
            current: None,
            pending: Vec::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// Installs the next claimed morsel; `false` when the file is done.
    fn advance(&mut self) -> bool {
        match self.source.claim() {
            Some((start, end)) => {
                self.current = Some(self.source.file.scan_pages(start, end));
                true
            }
            None => false,
        }
    }
}

impl Operator for MorselScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(scan) = &mut self.current {
                if let Some(t) = scan.next_tuple()? {
                    return Ok(Some(t));
                }
                self.current = None;
            }
            if !self.advance() {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        while self.pending.len() < self.batch {
            if let Some(scan) = &mut self.current {
                if !scan.fill_chunk(&mut self.pending, self.batch)? {
                    self.current = None;
                }
            } else if !self.advance() {
                break;
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        if self.pending.len() <= self.batch {
            return Ok(Some(std::mem::take(&mut self.pending)));
        }
        Ok(Some(self.pending.drain(..self.batch).collect()))
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, collect_batched, BoxOp};
    use pyro_common::Value;
    use pyro_storage::{write_file, SimDevice};

    fn sample_file(n: i64, block_size: usize) -> (pyro_storage::DeviceRef, TupleFile, Vec<Tuple>) {
        let dev = SimDevice::with_block_size(block_size);
        let rows: Vec<Tuple> = (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]))
            .collect();
        let file = write_file(&dev, &rows).unwrap();
        (dev, file, rows)
    }

    #[test]
    fn scan_streams_file_counting_io() {
        let (dev, file, rows) = sample_file(40, 128);
        dev.reset_io();
        let scan = FileScan::new(Schema::ints(&["a", "b"]), &file);
        assert_eq!(scan.size_hint(), (40, Some(40)));
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out, rows);
        assert_eq!(dev.io().reads, file.block_count());
    }

    #[test]
    fn batched_scan_same_rows_and_io() {
        let (dev, file, rows) = sample_file(40, 128);
        for batch in [1usize, 3, 1024] {
            dev.reset_io();
            let mut scan: BoxOp = Box::new(FileScan::new(Schema::ints(&["a", "b"]), &file));
            scan.set_batch_size(batch);
            let out = collect_batched(scan).unwrap();
            assert_eq!(out, rows, "batch={batch}");
            assert_eq!(dev.io().reads, file.block_count(), "batch={batch}");
        }
    }

    #[test]
    fn size_hint_tracks_consumption() {
        let (_dev, file, _) = sample_file(40, 128);
        let mut scan = FileScan::new(Schema::ints(&["a", "b"]), &file);
        scan.next().unwrap();
        scan.next().unwrap();
        assert_eq!(scan.size_hint(), (38, Some(38)));
    }

    #[test]
    fn range_scans_cover_file_disjointly() {
        let (dev, file, rows) = sample_file(60, 128);
        let pages = file.block_count() as usize;
        let mid = pages / 2;
        dev.reset_io();
        let lo = collect(Box::new(FileScan::over_pages(
            Schema::ints(&["a", "b"]),
            &file,
            0,
            mid,
        )) as BoxOp)
        .unwrap();
        let hi = collect(Box::new(FileScan::over_pages(
            Schema::ints(&["a", "b"]),
            &file,
            mid,
            pages,
        )) as BoxOp)
        .unwrap();
        let mut all = lo;
        all.extend(hi);
        assert_eq!(all, rows, "range halves concatenate to the full file");
        assert_eq!(dev.io().reads, file.block_count(), "each page read once");
    }

    /// Every key present in the file must be fully covered by its probed
    /// range, absent keys must land on ranges without them, and the range
    /// must be a genuine restriction for selective keys.
    #[test]
    fn eq_key_page_range_covers_exactly() {
        // 4 rows per key, keys 0..100, tiny pages so keys straddle pages.
        let dev = SimDevice::with_block_size(128);
        let rows: Vec<Tuple> = (0..400i64)
            .map(|i| Tuple::new(vec![Value::Int(i / 4), Value::Int(i)]))
            .collect();
        let file = write_file(&dev, &rows).unwrap();
        let pages = file.block_count() as usize;
        assert!(pages > 10, "need a multi-page file, got {pages}");
        for key in [0i64, 1, 37, 50, 98, 99] {
            let (start, end) = eq_key_page_range(&file, &[0], &[Value::Int(key)]).unwrap();
            assert!(start < end, "key {key}: empty range {start}..{end}");
            assert!(end <= pages);
            let got: Vec<Tuple> = collect(Box::new(FileScan::over_pages(
                Schema::ints(&["k", "v"]),
                &file,
                start,
                end,
            )) as BoxOp)
            .unwrap()
            .into_iter()
            .filter(|t| t.get(0) == &Value::Int(key))
            .collect();
            let expect: Vec<Tuple> = rows
                .iter()
                .filter(|t| t.get(0) == &Value::Int(key))
                .cloned()
                .collect();
            assert_eq!(got, expect, "key {key} rows lost by the page bounds");
            assert!(
                end - start <= 2,
                "key {key}: 4 rows should sit on at most 2 pages, got {}",
                end - start
            );
        }
        // Absent keys: below, between (impossible here — keys are dense),
        // and above the domain. The range may be nonempty; it just must not
        // contain the key.
        for key in [-5i64, 100, 1000] {
            let (start, end) = eq_key_page_range(&file, &[0], &[Value::Int(key)]).unwrap();
            let hits = collect(Box::new(FileScan::over_pages(
                Schema::ints(&["k", "v"]),
                &file,
                start,
                end,
            )) as BoxOp)
            .unwrap()
            .into_iter()
            .filter(|t| t.get(0) == &Value::Int(key))
            .count();
            assert_eq!(hits, 0, "key {key} does not exist");
        }
    }

    /// Two-column keys narrow further than their one-column prefix, and an
    /// empty/oversized key degrades to the full file.
    #[test]
    fn eq_key_page_range_multi_column_and_degenerate() {
        let dev = SimDevice::with_block_size(128);
        let rows: Vec<Tuple> = (0..300i64)
            .map(|i| Tuple::new(vec![Value::Int(i / 30), Value::Int(i % 30), Value::Int(i)]))
            .collect();
        let file = write_file(&dev, &rows).unwrap();
        let pages = file.block_count() as usize;
        let (s1, e1) = eq_key_page_range(&file, &[0], &[Value::Int(5)]).unwrap();
        let (s2, e2) = eq_key_page_range(&file, &[0, 1], &[Value::Int(5), Value::Int(7)]).unwrap();
        assert!(e2 - s2 <= e1 - s1, "longer key must not widen the range");
        let got: Vec<Tuple> = collect(Box::new(FileScan::over_pages(
            Schema::ints(&["a", "b", "v"]),
            &file,
            s2,
            e2,
        )) as BoxOp)
        .unwrap()
        .into_iter()
        .filter(|t| t.get(0) == &Value::Int(5) && t.get(1) == &Value::Int(7))
        .collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(2), &Value::Int(5 * 30 + 7));
        // Degenerate inputs fall back to the whole file.
        assert_eq!(eq_key_page_range(&file, &[], &[]).unwrap(), (0, pages));
        assert_eq!(
            eq_key_page_range(&file, &[0], &[Value::Int(1), Value::Int(2)]).unwrap(),
            (0, pages)
        );
        let no_rows: Vec<Tuple> = Vec::new();
        let empty = write_file(&dev, &no_rows).unwrap();
        assert_eq!(
            eq_key_page_range(&empty, &[0], &[Value::Int(1)]).unwrap(),
            (0, 0)
        );
    }

    #[test]
    fn morsel_scans_partition_file_exactly_once() {
        let (dev, file, rows) = sample_file(200, 128);
        let source = MorselSource::with_morsel_pages(&file, 3);
        dev.reset_io();
        let mut out = Vec::new();
        // Two workers drain the shared queue serially here; page accounting
        // and multiset coverage are what we pin (threaded use is exercised
        // by the exchange tests).
        for _ in 0..2 {
            let scan = MorselScan::new(Schema::ints(&["a", "b"]), source.clone());
            out.extend(collect_batched(Box::new(scan)).unwrap());
        }
        assert_eq!(dev.io().reads, file.block_count(), "each page read once");
        out.sort();
        let mut expect = rows;
        expect.sort();
        assert_eq!(out, expect);
    }

    #[test]
    fn morsel_scan_row_and_batch_paths_agree() {
        let (_dev, file, rows) = sample_file(50, 128);
        let by_row = collect(Box::new(MorselScan::new(
            Schema::ints(&["a", "b"]),
            MorselSource::with_morsel_pages(&file, 2),
        )) as BoxOp)
        .unwrap();
        let by_batch = collect_batched(Box::new(MorselScan::new(
            Schema::ints(&["a", "b"]),
            MorselSource::with_morsel_pages(&file, 2),
        )) as BoxOp)
        .unwrap();
        assert_eq!(by_row, rows);
        assert_eq!(by_batch, rows);
    }
}
