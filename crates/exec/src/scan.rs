//! Access paths: table scan, clustered scan and covering-index scan.
//!
//! All three read a [`TupleFile`] sequentially; what differs is the schema
//! they expose and the sort order they guarantee (knowledge the *optimizer*
//! holds — the operators themselves just stream pages, counting I/O via the
//! device).

use crate::op::Operator;
use pyro_common::{Result, Schema, Tuple};
use pyro_storage::{TupleFile, TupleFileScan};

/// Sequential scan over a tuple file (base heap or index entry file).
///
/// Whether this acts as the paper's "Table scan", "C.Idx Scan" (clustering
/// index scan — same file, known order) or "Cov. Idx Scan" (covering-index
/// entry file — narrower schema, key order) is decided by which file and
/// schema the planner binds.
pub struct FileScan {
    schema: Schema,
    scan: TupleFileScan,
}

impl FileScan {
    /// Scans `file`, exposing `schema` (column count must match the stored
    /// tuples).
    pub fn new(schema: Schema, file: &TupleFile) -> Self {
        FileScan {
            schema,
            scan: file.scan(),
        }
    }
}

impl Operator for FileScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.scan.next_tuple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use pyro_common::Value;
    use pyro_storage::{write_file, SimDevice};

    #[test]
    fn scan_streams_file_counting_io() {
        let dev = SimDevice::with_block_size(128);
        let rows: Vec<Tuple> = (0..40)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]))
            .collect();
        let file = write_file(&dev, &rows).unwrap();
        dev.reset_io();
        let scan = FileScan::new(Schema::ints(&["a", "b"]), &file);
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out, rows);
        assert_eq!(dev.io().reads, file.block_count());
    }
}
