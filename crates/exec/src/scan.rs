//! Access paths: table scan, clustered scan and covering-index scan.
//!
//! All three read a [`TupleFile`] sequentially; what differs is the schema
//! they expose and the sort order they guarantee (knowledge the *optimizer*
//! holds — the operators themselves just stream pages, counting I/O via the
//! device).

use crate::op::{Operator, DEFAULT_BATCH_SIZE};
use pyro_common::{Result, Schema, Tuple};
use pyro_storage::{TupleFile, TupleFileScan};

/// Sequential scan over a tuple file (base heap or index entry file).
///
/// Whether this acts as the paper's "Table scan", "C.Idx Scan" (clustering
/// index scan — same file, known order) or "Cov. Idx Scan" (covering-index
/// entry file — narrower schema, key order) is decided by which file and
/// schema the planner binds.
pub struct FileScan {
    schema: Schema,
    scan: TupleFileScan,
    /// Decoded-but-unemitted rows of the current page (batch path only).
    pending: Vec<Tuple>,
    batch: usize,
}

impl FileScan {
    /// Scans `file`, exposing `schema` (column count must match the stored
    /// tuples).
    pub fn new(schema: Schema, file: &TupleFile) -> Self {
        FileScan {
            schema,
            scan: file.scan(),
            pending: Vec::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }
}

impl Operator for FileScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.scan.next_tuple()
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        // Decode pages straight into the pending buffer until the batch is
        // full (or the file ends), then hand the vector over whole.
        if self.pending.is_empty() && !self.scan.fill_chunk(&mut self.pending, self.batch)? {
            return Ok(None);
        }
        if self.pending.len() <= self.batch {
            return Ok(Some(std::mem::take(&mut self.pending)));
        }
        Ok(Some(self.pending.drain(..self.batch).collect()))
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::collect;
    use pyro_common::Value;
    use pyro_storage::{write_file, SimDevice};

    #[test]
    fn scan_streams_file_counting_io() {
        let dev = SimDevice::with_block_size(128);
        let rows: Vec<Tuple> = (0..40)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]))
            .collect();
        let file = write_file(&dev, &rows).unwrap();
        dev.reset_io();
        let scan = FileScan::new(Schema::ints(&["a", "b"]), &file);
        let out = collect(Box::new(scan)).unwrap();
        assert_eq!(out, rows);
        assert_eq!(dev.io().reads, file.block_count());
    }

    #[test]
    fn batched_scan_same_rows_and_io() {
        let dev = SimDevice::with_block_size(128);
        let rows: Vec<Tuple> = (0..40)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]))
            .collect();
        let file = write_file(&dev, &rows).unwrap();
        for batch in [1usize, 3, 1024] {
            dev.reset_io();
            let mut scan: crate::op::BoxOp =
                Box::new(FileScan::new(Schema::ints(&["a", "b"]), &file));
            scan.set_batch_size(batch);
            let out = crate::op::collect_batched(scan).unwrap();
            assert_eq!(out, rows, "batch={batch}");
            assert_eq!(dev.io().reads, file.block_count(), "batch={batch}");
        }
    }
}
