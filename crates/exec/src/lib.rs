//! # pyro-exec
//!
//! A Volcano-style (pull-based) execution engine that exchanges rows
//! **batch-at-a-time** — every operator implements both tuple-wise
//! [`Operator::next`] and the batch pull [`Operator::next_batch`] (see
//! `op.rs` for the batch contract; counter totals are identical on either
//! path) — built to make the paper's §3 claims observable:
//!
//! * [`sort::StandardReplacementSort`] (SRS) — classical replacement
//!   selection with run spilling and multi-pass merging; falls back to a
//!   pure in-memory sort when the input fits in the budget.
//! * [`sort::PartialSort`] (MRS) — the paper's modified replacement
//!   selection: given that the input is already sorted on a *prefix* of the
//!   requested key, it sorts each partial-sort segment independently,
//!   producing tuples early, comparing only suffix columns, and doing **zero
//!   run I/O** whenever a segment fits in memory.
//!
//! Joins ([`join`]), aggregation ([`agg`]), set operations ([`union`]) and
//! the relational plumbing ([`scan`], [`filter`], [`project`], [`limit`])
//! complete the operator set needed by every query in the paper's
//! evaluation. All operators share an [`ExecMetrics`] counter block so
//! experiments can report comparisons and run I/O exactly.

#![deny(missing_docs)]

pub mod agg;
pub mod dedup;
pub mod exchange;
pub mod expr;
pub mod filter;
pub mod join;
pub mod limit;
pub mod metrics;
pub mod op;
pub mod project;
pub mod scan;
pub mod sort;
pub mod union;
pub mod vector;

pub use exchange::{hash_key, repartition, Fragment, Gather, GatherMerge, PartitionSource};
pub use expr::{CmpOp, Expr};
pub use metrics::{ExecMetrics, MetricsRef};
pub use op::{
    collect, collect_batched, BoxOp, Operator, Pipeline, Rows, Stash, ValuesOp, DEFAULT_BATCH_SIZE,
};
pub use scan::{FileScan, MorselScan, MorselSource};
pub use vector::{eval_column, VecPredicate};
