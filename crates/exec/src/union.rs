//! Set operations: concatenating union-all and order-preserving merge union.
//!
//! [`MergeUnion`] is the operator behind the paper's observation (Experiment
//! B2) that a union of outer joins is only cheap when *both* inputs arrive
//! in the **same** sort order — another multi-input operator with a
//! factorial choice of interesting orders.

use crate::metrics::MetricsRef;
use crate::op::{BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple};
use std::cmp::Ordering;

/// Plain UNION ALL: concatenates inputs (no order guarantee).
pub struct UnionAll {
    inputs: Vec<BoxOp>,
    current: usize,
    schema: Schema,
}

impl UnionAll {
    /// Builds from compatible inputs (same column count).
    pub fn new(inputs: Vec<BoxOp>) -> Self {
        assert!(!inputs.is_empty());
        let schema = inputs[0].schema().clone();
        debug_assert!(inputs.iter().all(|i| i.schema().len() == schema.len()));
        UnionAll {
            inputs,
            current: 0,
            schema,
        }
    }
}

impl Operator for UnionAll {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while self.current < self.inputs.len() {
            if let Some(t) = self.inputs[self.current].next()? {
                return Ok(Some(t));
            }
            self.current += 1;
        }
        Ok(None)
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        while self.current < self.inputs.len() {
            if let Some(batch) = self.inputs[self.current].next_batch()? {
                return Ok(Some(batch));
            }
            self.current += 1;
        }
        Ok(None)
    }

    fn batch_size(&self) -> usize {
        self.inputs
            .first()
            .map_or(DEFAULT_BATCH_SIZE, |i| i.batch_size())
    }

    fn set_batch_size(&mut self, rows: usize) {
        for input in &mut self.inputs {
            input.set_batch_size(rows);
        }
    }
}

/// Merge union over inputs sorted on the same key: preserves the order and
/// optionally eliminates duplicates (`UNION` vs `UNION ALL` semantics; for
/// dedup, rows must be *entirely* equal, and the key must cover all
/// columns for complete SQL semantics).
pub struct MergeUnion {
    inputs: Vec<BoxOp>,
    stashes: Vec<Stash>,
    heads: Vec<Option<Tuple>>,
    key: KeySpec,
    distinct: bool,
    schema: Schema,
    metrics: MetricsRef,
    last_emitted: Option<Tuple>,
    started: bool,
    batch: usize,
}

impl MergeUnion {
    /// Builds a merge union; every input must be sorted on `key`.
    pub fn new(inputs: Vec<BoxOp>, key: KeySpec, distinct: bool, metrics: MetricsRef) -> Self {
        assert!(!inputs.is_empty());
        let schema = inputs[0].schema().clone();
        let heads = inputs.iter().map(|_| None).collect();
        let stashes = inputs.iter().map(|_| Stash::new()).collect();
        MergeUnion {
            inputs,
            stashes,
            heads,
            key,
            distinct,
            schema,
            metrics,
            last_emitted: None,
            started: false,
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    fn refill(&mut self, i: usize, batched: bool) -> Result<()> {
        self.heads[i] = if batched {
            self.stashes[i].next_row(&mut self.inputs[i])?
        } else {
            self.inputs[i].next()?
        };
        Ok(())
    }

    /// Produces the next merged row; key comparisons go into `acc` so the
    /// caller can charge metrics once per pull (or per batch).
    fn advance_one(&mut self, batched: bool, acc: &mut u64) -> Result<Option<Tuple>> {
        if !self.started {
            self.started = true;
            for i in 0..self.inputs.len() {
                self.refill(i, batched)?;
            }
        }
        loop {
            let mut best: Option<usize> = None;
            for i in 0..self.heads.len() {
                if self.heads[i].is_none() {
                    continue;
                }
                best = Some(match best {
                    None => i,
                    Some(b) => {
                        let (ta, tb) = (
                            self.heads[i].as_ref().expect("head"),
                            self.heads[b].as_ref().expect("head"),
                        );
                        let (ord, n) = self.key.compare_counting(ta, tb);
                        *acc += n;
                        if ord == Ordering::Less {
                            i
                        } else {
                            b
                        }
                    }
                });
            }
            let Some(i) = best else { return Ok(None) };
            let t = self.heads[i].take().expect("winner head");
            self.refill(i, batched)?;
            if self.distinct {
                if let Some(last) = &self.last_emitted {
                    if last == &t {
                        continue; // duplicate of the previous emission
                    }
                }
                self.last_emitted = Some(t.clone());
            }
            return Ok(Some(t));
        }
    }
}

impl Operator for MergeUnion {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let mut acc = 0;
        let out = self.advance_one(false, &mut acc);
        self.metrics.add_comparisons(acc);
        out
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        let mut acc = 0;
        let mut out = Vec::new();
        while out.len() < self.batch {
            match self.advance_one(true, &mut acc) {
                Ok(Some(t)) => out.push(t),
                Ok(None) => break,
                Err(e) => {
                    self.metrics.add_comparisons(acc);
                    return Err(e);
                }
            }
        }
        self.metrics.add_comparisons(acc);
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;

    fn rows(vals: &[i64]) -> Vec<Tuple> {
        vals.iter()
            .map(|&v| Tuple::new(vec![Value::Int(v)]))
            .collect()
    }

    fn src(vals: &[i64]) -> BoxOp {
        Box::new(ValuesOp::new(Schema::ints(&["a"]), rows(vals)))
    }

    #[test]
    fn union_all_concatenates() {
        let op = UnionAll::new(vec![src(&[1, 2]), src(&[3]), src(&[])]);
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn merge_union_preserves_order() {
        let m = ExecMetrics::new();
        let op = MergeUnion::new(
            vec![src(&[1, 3, 5]), src(&[2, 3, 6])],
            KeySpec::new(vec![0]),
            false,
            m,
        );
        let out: Vec<i64> = collect(Box::new(op))
            .unwrap()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(out, vec![1, 2, 3, 3, 5, 6]);
    }

    #[test]
    fn merge_union_distinct_dedups() {
        let m = ExecMetrics::new();
        let op = MergeUnion::new(
            vec![src(&[1, 3, 3]), src(&[3, 5])],
            KeySpec::new(vec![0]),
            true,
            m,
        );
        let out: Vec<i64> = collect(Box::new(op))
            .unwrap()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(out, vec![1, 3, 5]);
    }

    #[test]
    fn merge_union_three_inputs() {
        let m = ExecMetrics::new();
        let op = MergeUnion::new(
            vec![src(&[9]), src(&[1]), src(&[5])],
            KeySpec::new(vec![0]),
            false,
            m,
        );
        let out: Vec<i64> = collect(Box::new(op))
            .unwrap()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(out, vec![1, 5, 9]);
    }
}
