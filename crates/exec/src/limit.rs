//! LIMIT / Top-K.
//!
//! Over an order-producing child this is Top-K; the paper's §3.1 notes MRS's
//! early output has "immense benefits for Top-K queries" because the
//! pipeline stops after the first segments instead of sorting everything —
//! the `fig08` bench demonstrates exactly that.

use crate::op::{BoxOp, Operator};
use pyro_common::{Result, Schema, Tuple};

/// Emits at most `k` child tuples, then stops pulling.
pub struct Limit {
    child: BoxOp,
    remaining: u64,
}

impl Limit {
    /// Wraps `child`, keeping the first `k` rows.
    pub fn new(child: BoxOp, k: u64) -> Self {
        Limit {
            child,
            remaining: k,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(t) => {
                self.remaining -= 1;
                Ok(Some(t))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;

    #[test]
    fn truncates() {
        let rows: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let op = Limit::new(Box::new(src), 3);
        assert_eq!(collect(Box::new(op)).unwrap().len(), 3);
    }

    #[test]
    fn zero_limit() {
        let src = ValuesOp::new(Schema::ints(&["a"]), vec![Tuple::new(vec![Value::Int(1)])]);
        let op = Limit::new(Box::new(src), 0);
        assert!(collect(Box::new(op)).unwrap().is_empty());
    }

    #[test]
    fn limit_larger_than_input() {
        let src = ValuesOp::new(Schema::ints(&["a"]), vec![Tuple::new(vec![Value::Int(1)])]);
        let op = Limit::new(Box::new(src), 100);
        assert_eq!(collect(Box::new(op)).unwrap().len(), 1);
    }
}
