//! LIMIT / Top-K.
//!
//! Over an order-producing child this is Top-K; the paper's §3.1 notes MRS's
//! early output has "immense benefits for Top-K queries" because the
//! pipeline stops after the first segments instead of sorting everything —
//! the `fig08` bench demonstrates exactly that.

use crate::op::{BoxOp, Operator, DEFAULT_BATCH_SIZE};
use pyro_common::{Result, Schema, Tuple};

/// Emits at most `k` child tuples, then stops pulling.
pub struct Limit {
    child: BoxOp,
    remaining: u64,
    batch: usize,
}

impl Limit {
    /// Wraps `child`, keeping the first `k` rows.
    pub fn new(child: BoxOp, k: u64) -> Self {
        Limit {
            child,
            remaining: k,
            batch: DEFAULT_BATCH_SIZE,
        }
    }
}

impl Operator for Limit {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(t) => {
                self.remaining -= 1;
                Ok(Some(t))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // Narrow the child's batch to the rows still wanted, so Top-K over
        // a demand-driven producer (the partial sort) closes exactly the
        // segments — and charges exactly the same ExecMetrics — that
        // `remaining` tuple-at-a-time pulls would. (Base-table scans below
        // may still read ahead by up to one batch; see the op.rs contract.)
        let want = (self.batch as u64).min(self.remaining) as usize;
        self.child.set_batch_size(want);
        match self.child.next_batch()? {
            Some(mut batch) => {
                if batch.len() as u64 > self.remaining {
                    batch.truncate(self.remaining as usize);
                }
                self.remaining -= batch.len() as u64;
                Ok(Some(batch))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // `remaining` caps both bounds, making Limit-topped plans
        // exact-cardinality whenever the child's lower bound reaches k.
        let k = self.remaining as usize;
        let (lower, upper) = self.child.size_hint();
        (lower.min(k), Some(upper.unwrap_or(k).min(k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{collect, ValuesOp};
    use pyro_common::Value;

    #[test]
    fn truncates() {
        let rows: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let op = Limit::new(Box::new(src), 3);
        assert_eq!(collect(Box::new(op)).unwrap().len(), 3);
    }

    #[test]
    fn zero_limit() {
        let src = ValuesOp::new(Schema::ints(&["a"]), vec![Tuple::new(vec![Value::Int(1)])]);
        let op = Limit::new(Box::new(src), 0);
        assert!(collect(Box::new(op)).unwrap().is_empty());
    }

    #[test]
    fn limit_larger_than_input() {
        let src = ValuesOp::new(Schema::ints(&["a"]), vec![Tuple::new(vec![Value::Int(1)])]);
        let op = Limit::new(Box::new(src), 100);
        assert_eq!(collect(Box::new(op)).unwrap().len(), 1);
    }

    #[test]
    fn size_hint_is_exact_over_known_child() {
        let rows: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let src = ValuesOp::new(Schema::ints(&["a"]), rows);
        let mut op = Limit::new(Box::new(src), 3);
        assert_eq!(op.size_hint(), (3, Some(3)), "k caps a 10-row child");
        op.next().unwrap();
        assert_eq!(op.size_hint(), (2, Some(2)));
        // k beyond the child: the child's exact count wins.
        let src = ValuesOp::new(Schema::ints(&["a"]), vec![Tuple::new(vec![Value::Int(1)])]);
        let op = Limit::new(Box::new(src), 100);
        assert_eq!(op.size_hint(), (1, Some(1)));
    }
}
