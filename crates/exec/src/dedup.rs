//! Duplicate elimination — one of the paper's §1 motivating operators: a
//! sort-based DISTINCT accepts *any* permutation of the output columns as
//! its input order, giving it the same factorial interesting-order space as
//! merge joins.

use crate::metrics::MetricsRef;
use crate::op::{pull_row, BoxOp, Operator, Stash, DEFAULT_BATCH_SIZE};
use pyro_common::{KeySpec, Result, Schema, Tuple, Value};
use std::cmp::Ordering;
use std::collections::HashSet;

/// Streaming DISTINCT over an input sorted on (a permutation of) all its
/// columns: emits the first row of each equal run.
pub struct SortDistinct {
    child: BoxOp,
    key: KeySpec,
    metrics: MetricsRef,
    last: Option<Tuple>,
    stash: Stash,
    batch: usize,
}

impl SortDistinct {
    /// `key` must cover every column (in the input's sort order) for full
    /// DISTINCT semantics.
    pub fn new(child: BoxOp, key: KeySpec, metrics: MetricsRef) -> Self {
        SortDistinct {
            child,
            key,
            metrics,
            last: None,
            stash: Stash::new(),
            batch: DEFAULT_BATCH_SIZE,
        }
    }

    /// The next fresh (non-duplicate) row; comparisons accumulate in `acc`.
    fn next_fresh(&mut self, batched: bool, acc: &mut u64) -> Result<Option<Tuple>> {
        while let Some(t) = pull_row(&mut self.child, &mut self.stash, batched)? {
            let fresh = match &self.last {
                None => true,
                Some(prev) => {
                    let (ord, n) = self.key.compare_counting(prev, &t);
                    *acc += n;
                    ord != Ordering::Equal
                }
            };
            if fresh {
                self.last = Some(t.clone());
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

impl Operator for SortDistinct {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let mut acc = 0;
        let out = self.next_fresh(false, &mut acc);
        self.metrics.add_comparisons(acc);
        out
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        let mut acc = 0;
        let mut out = Vec::new();
        while out.len() < self.batch {
            match self.next_fresh(true, &mut acc) {
                Ok(Some(t)) => out.push(t),
                Ok(None) => break,
                Err(e) => {
                    self.metrics.add_comparisons(acc);
                    return Err(e);
                }
            }
        }
        self.metrics.add_comparisons(acc);
        Ok(if out.is_empty() { None } else { Some(out) })
    }

    fn batch_size(&self) -> usize {
        self.batch
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.batch = rows.max(1);
    }
}

/// Hash-based DISTINCT: no input-order requirement, materializes a set.
pub struct HashDistinct {
    child: BoxOp,
    seen: HashSet<Vec<Value>>,
}

impl HashDistinct {
    /// Builds a hash distinct over all columns.
    pub fn new(child: BoxOp) -> Self {
        HashDistinct {
            child,
            seen: HashSet::new(),
        }
    }
}

impl Operator for HashDistinct {
    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.child.next()? {
            if self.seen.insert(t.values().to_vec()) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>> {
        loop {
            let Some(mut batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            batch.retain(|t| {
                if self.seen.contains(t.values()) {
                    false
                } else {
                    self.seen.insert(t.values().to_vec())
                }
            });
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }

    fn batch_size(&self) -> usize {
        self.child.batch_size()
    }

    fn set_batch_size(&mut self, rows: usize) {
        self.child.set_batch_size(rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ExecMetrics;
    use crate::op::{collect, ValuesOp};

    fn rows(vals: &[(i64, i64)]) -> Vec<Tuple> {
        vals.iter()
            .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    #[test]
    fn sort_distinct_dedups_sorted_input() {
        let data = rows(&[(1, 1), (1, 1), (1, 2), (2, 1), (2, 1), (2, 1)]);
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), data);
        let op = SortDistinct::new(Box::new(src), KeySpec::new(vec![0, 1]), ExecMetrics::new());
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out, rows(&[(1, 1), (1, 2), (2, 1)]));
    }

    #[test]
    fn sort_distinct_works_under_any_column_permutation() {
        // sorted by (b, a) — still valid for DISTINCT over {a, b}
        let data = rows(&[(2, 1), (2, 1), (1, 2), (3, 2)]);
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), data);
        let op = SortDistinct::new(Box::new(src), KeySpec::new(vec![1, 0]), ExecMetrics::new());
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn hash_distinct_agrees_with_sort_distinct() {
        let mut data = rows(&[(3, 1), (1, 1), (3, 1), (2, 2), (1, 1)]);
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), data.clone());
        let mut hash_out = collect(Box::new(HashDistinct::new(Box::new(src)))).unwrap();
        data.sort();
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), data);
        let mut sort_out = collect(Box::new(SortDistinct::new(
            Box::new(src),
            KeySpec::new(vec![0, 1]),
            ExecMetrics::new(),
        )))
        .unwrap();
        hash_out.sort();
        sort_out.sort();
        assert_eq!(hash_out, sort_out);
    }

    #[test]
    fn empty_input() {
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), vec![]);
        let op = SortDistinct::new(Box::new(src), KeySpec::new(vec![0, 1]), ExecMetrics::new());
        assert!(collect(Box::new(op)).unwrap().is_empty());
        let src = ValuesOp::new(Schema::ints(&["a", "b"]), vec![]);
        assert!(collect(Box::new(HashDistinct::new(Box::new(src))))
            .unwrap()
            .is_empty());
    }
}
