//! Exact optimum for the tree sort-order problem, by dynamic programming
//! over permutations.
//!
//! The problem is NP-hard in general (Theorem 4.1 — hardness grows with the
//! attribute-set sizes, which drive the `k!` state space per node), but for
//! the small instances used in tests and ablations an exact answer is
//! tractable: for each node we enumerate all permutations of its attribute
//! set and solve bottom-up:
//!
//! `best(v, p) = Σ_{c ∈ children(v)} max_q [ best(c, q) + |p ∧ q| ]`
//!
//! Complexity `O(Σ_v |children| · k!² · k)` for max set size `k` — fine for
//! `k ≤ 5` on trees of any realistic size.

use crate::order::{all_permutations, SortOrder};
use crate::tree::JoinTree;

/// Result of [`exhaustive_tree_order`].
#[derive(Debug, Clone)]
pub struct ExactSolution {
    /// Optimal permutation per node id.
    pub orders: Vec<SortOrder>,
    /// The optimal benefit.
    pub benefit: u64,
}

/// Computes the exact optimum. Panics if any attribute set exceeds
/// `max_set_len` (default guard 8) to protect against factorial blow-up.
pub fn exhaustive_tree_order(tree: &JoinTree) -> ExactSolution {
    exhaustive_tree_order_guarded(tree, 8)
}

/// Like [`exhaustive_tree_order`] with an explicit safety bound on the
/// attribute-set size.
pub fn exhaustive_tree_order_guarded(tree: &JoinTree, max_set_len: usize) -> ExactSolution {
    let n = tree.len();
    if n == 0 {
        return ExactSolution {
            orders: vec![],
            benefit: 0,
        };
    }
    for v in 0..n {
        assert!(
            tree.attrs(v).len() <= max_set_len,
            "attribute set of node {v} has {} attrs; exhaustive search capped at {max_set_len}",
            tree.attrs(v).len()
        );
    }
    let root = tree.root().expect("non-empty tree must have a root");

    // Per node: candidate permutations and, per candidate, the best benefit
    // of its subtree when the node uses that candidate.
    let mut perms: Vec<Vec<SortOrder>> = (0..n)
        .map(|v| {
            let p = all_permutations(tree.attrs(v));
            if p.is_empty() {
                vec![SortOrder::empty()]
            } else {
                p
            }
        })
        .collect();
    let mut best: Vec<Vec<u64>> = perms.iter().map(|p| vec![0; p.len()]).collect();
    // For plan reconstruction: chosen child permutation index per (node,
    // perm, child-slot).
    let mut choice: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|v| vec![vec![0; tree.children(v).len()]; perms[v].len()])
        .collect();

    // Post-order traversal.
    let order = post_order(tree, root);
    for &v in &order {
        let children: Vec<usize> = tree.children(v).to_vec();
        for pi in 0..perms[v].len() {
            let mut total = 0;
            for (slot, &c) in children.iter().enumerate() {
                let mut best_c = 0;
                let mut best_qi = 0;
                for qi in 0..perms[c].len() {
                    let val = best[c][qi] + perms[v][pi].lcp(&perms[c][qi]).len() as u64;
                    if val > best_c {
                        best_c = val;
                        best_qi = qi;
                    }
                }
                total += best_c;
                choice[v][pi][slot] = best_qi;
            }
            best[v][pi] = total;
        }
    }

    // Pick the best root permutation and walk choices down.
    let (root_pi, &benefit) = best[root]
        .iter()
        .enumerate()
        .max_by_key(|(_, &b)| b)
        .expect("root has at least one candidate");
    let mut orders = vec![SortOrder::empty(); n];
    let mut stack = vec![(root, root_pi)];
    while let Some((v, pi)) = stack.pop() {
        orders[v] = perms[v][pi].clone();
        for (slot, &c) in tree.children(v).iter().enumerate() {
            stack.push((c, choice[v][pi][slot]));
        }
    }
    // Free the big tables before returning (not strictly needed; explicit).
    perms.clear();
    best.clear();
    choice.clear();
    ExactSolution { orders, benefit }
}

fn post_order(tree: &JoinTree, root: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(tree.len());
    let mut stack = vec![(root, false)];
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            out.push(v);
        } else {
            stack.push((v, true));
            for &c in tree.children(v) {
                stack.push((c, false));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::AttrSet;
    use crate::tree::{benefit_of, two_approx_tree_order};

    fn s(attrs: &[&str]) -> AttrSet {
        AttrSet::from_iter(attrs.iter().copied())
    }

    fn figure3_tree() -> JoinTree {
        let mut t = JoinTree::new();
        let root = t.add_root(s(&["a", "b", "c", "d", "e"]));
        let l = t.add_child(root, s(&["a", "b", "c", "k"]));
        let r = t.add_child(root, s(&["c", "d", "h", "n"]));
        t.add_child(l, s(&["c", "e", "i", "j"]));
        t.add_child(l, s(&["c", "k", "l", "m"]));
        t.add_child(r, s(&["c", "d"]));
        t.add_child(r, s(&["f", "g", "p", "q"]));
        t
    }

    #[test]
    fn figure3_optimum_is_eight() {
        // The paper's Figure 3 caption: "Total benefit of the optimal
        // solution = 8".
        let t = figure3_tree();
        let sol = exhaustive_tree_order(&t);
        assert_eq!(sol.benefit, 8);
        assert_eq!(benefit_of(&t, &sol.orders), 8);
    }

    #[test]
    fn optimum_on_identical_path() {
        let mut t = JoinTree::new();
        let mut cur = t.add_root(s(&["a", "b"]));
        for _ in 0..3 {
            cur = t.add_child(cur, s(&["a", "b"]));
        }
        let sol = exhaustive_tree_order(&t);
        assert_eq!(sol.benefit, 6); // 3 edges × 2 shared attrs
    }

    #[test]
    fn two_approx_bound_holds_on_figure3() {
        let t = figure3_tree();
        let exact = exhaustive_tree_order(&t);
        let approx = two_approx_tree_order(&t);
        assert!(
            2 * approx.benefit >= exact.benefit,
            "2·{} < {}",
            approx.benefit,
            exact.benefit
        );
    }

    #[test]
    fn guard_panics_on_large_sets() {
        let mut t = JoinTree::new();
        t.add_root(AttrSet::from_iter((0..9).map(|i| format!("a{i}"))));
        let r = std::panic::catch_unwind(|| exhaustive_tree_order(&t));
        assert!(r.is_err());
    }

    #[test]
    fn empty_attr_set_nodes_are_fine() {
        let mut t = JoinTree::new();
        let root = t.add_root(AttrSet::new());
        t.add_child(root, s(&["a"]));
        let sol = exhaustive_tree_order(&t);
        assert_eq!(sol.benefit, 0);
    }
}
