//! # pyro-ordering
//!
//! The sort-order algebra and combinatorial algorithms of
//! *"Reducing Order Enforcement Cost in Complex Query Plans"* (§4).
//!
//! * [`order::SortOrder`] — sequences of attributes with the paper's
//!   operators: longest common prefix (`o1 ∧ o2`), concatenation (`o1 + o2`),
//!   difference (`o1 − o2`), subsumption (`o1 ≤ o2`) and the set-restricted
//!   prefix (`o ∧ s`).
//! * [`path::path_order`] — the exact dynamic program (`PathOrder`,
//!   paper Fig. 4) choosing permutations along a path of join nodes that
//!   maximize the total adjacent longest-common-prefix benefit.
//! * [`tree::two_approx_tree_order`] — the 2-approximation for binary trees
//!   (odd/even edge-level split, paper Fig. 5).
//! * [`exhaustive::exhaustive_tree_order`] — brute-force optimum used to
//!   validate the approximation bound on small instances.
//! * [`sumcut`] — the SUM-CUT reduction construction from the NP-hardness
//!   proof (Theorem 4.1), usable to generate hard instances.

pub mod exhaustive;
pub mod order;
pub mod path;
pub mod sumcut;
pub mod tree;

pub use order::{all_permutations, AttrSet, SortOrder};
pub use path::{path_order, PathSolution};
pub use tree::{benefit_of, two_approx_tree_order, JoinTree, TreeSolution};
