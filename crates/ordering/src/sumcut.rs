//! The SUM-CUT reduction of Theorem 4.1.
//!
//! The paper proves NP-hardness of the tree sort-order problem (Problem 1)
//! by reduction from SUM-CUT. This module implements the *construction* of
//! that reduction: given a graph `G` with `m` vertices it produces the
//! caterpillar join tree of the proof — `m` internal nodes forming a path,
//! each carrying `V(G) ∪ L` (with `L` an arbitrarily large padding set
//! disjoint from `V(G)`), plus one leaf per internal node `i` carrying the
//! neighborhood of graph vertex `u_i`.
//!
//! Useful for generating adversarial instances: solving the resulting tree
//! optimally also solves SUM-CUT on `G`. Tests use it to cross-validate the
//! exhaustive solver against a direct SUM-CUT brute force on tiny graphs.

use crate::order::AttrSet;
use crate::tree::JoinTree;

/// An undirected graph given by vertex count and edge list.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices, labeled `0..m`.
    pub m: usize,
    /// Undirected edges `(u, v)` with `u, v < m`.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Adjacency sets.
    pub fn neighbors(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.m];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }
}

/// Name of the attribute representing graph vertex `v`.
fn vertex_attr(v: usize) -> String {
    format!("v{v:03}")
}

/// Name of the `i`-th padding attribute of the large disjoint set `L`.
fn pad_attr(i: usize) -> String {
    format!("z_pad{i:03}")
}

/// Builds the reduction instance: a caterpillar [`JoinTree`] whose optimal
/// permutations encode an optimal vertex numbering for Problem 3 (the
/// complement form of SUM-CUT) on `g`.
///
/// `l_size` is `|L|`; the proof needs it "arbitrarily large", in practice a
/// few times `m` suffices to dominate leaf contributions.
pub fn sum_cut_instance(g: &Graph, l_size: usize) -> JoinTree {
    let internal_set: AttrSet = (0..g.m)
        .map(vertex_attr)
        .chain((0..l_size).map(pad_attr))
        .collect();
    let adj = g.neighbors();

    let mut tree = JoinTree::new();
    // Internal path v1..vm (v1 as root, each next chained as a child).
    let mut internals = Vec::with_capacity(g.m);
    let root = tree.add_root(internal_set.clone());
    internals.push(root);
    for _ in 1..g.m {
        let prev = *internals.last().expect("nonempty");
        internals.push(tree.add_child(prev, internal_set.clone()));
    }
    // Leaves: leaf i carries the neighborhood of graph vertex i.
    for (i, &node) in internals.iter().enumerate() {
        let leaf_set: AttrSet = adj[i].iter().map(|&w| vertex_attr(w)).collect();
        tree.add_child(node, leaf_set);
    }
    tree
}

/// Direct brute-force for Problem 3 on a tiny graph: maximize
/// `Σ_{1≤i≤m} q_i` over vertex numberings, where `q_i` counts vertices
/// adjacent to **all** of the first `i` numbered vertices.
pub fn problem3_brute_force(g: &Graph) -> u64 {
    let adj = g.neighbors();
    let adj_sets: Vec<std::collections::BTreeSet<usize>> =
        adj.iter().map(|ns| ns.iter().copied().collect()).collect();
    let mut best = 0u64;
    let mut perm: Vec<usize> = (0..g.m).collect();
    permute_all(&mut perm, 0, &mut |p| {
        let mut total = 0u64;
        for i in 1..=p.len() {
            let prefix = &p[..i];
            let q = (0..g.m)
                .filter(|&w| prefix.iter().all(|&u| adj_sets[u].contains(&w)))
                .count();
            total += q as u64;
        }
        if total > best {
            best = total;
        }
    });
    best
}

fn permute_all(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_all(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_tree_order_guarded;
    use crate::tree::two_approx_tree_order;

    #[test]
    fn construction_shape() {
        let g = Graph {
            m: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
        };
        let t = sum_cut_instance(&g, 8);
        // m internal + m leaves
        assert_eq!(t.len(), 8);
        assert_eq!(t.edges().len(), 7);
        // Internal sets have m + l_size attributes.
        assert_eq!(t.attrs(0).len(), 4 + 8);
        // Leaf of vertex 1 (attached to internal node 1) holds {v0, v2}.
        let leaf_sets: Vec<usize> = (0..t.len())
            .filter(|&v| t.children(v).is_empty())
            .map(|v| t.attrs(v).len())
            .collect();
        assert_eq!(leaf_sets.iter().sum::<usize>(), 2 * g.edges.len());
    }

    #[test]
    fn two_approx_runs_on_reduction_instances() {
        let g = Graph {
            m: 3,
            edges: vec![(0, 1), (0, 2), (1, 2)],
        };
        let t = sum_cut_instance(&g, 4);
        let sol = two_approx_tree_order(&t);
        // Triangle: internal path shares all m + l attrs.
        assert!(sol.benefit > 0);
    }

    #[test]
    fn problem3_triangle() {
        // Complete graph K3: first vertex sees 2 common neighbors, the first
        // two share 1, all three share 0 → 3.
        let g = Graph {
            m: 3,
            edges: vec![(0, 1), (0, 2), (1, 2)],
        };
        assert_eq!(problem3_brute_force(&g), 3);
    }

    #[test]
    fn problem3_star() {
        // Star with center 0: numbering 0 first gives q1 = 3 (all leaves
        // adjacent to 0); then leaves share nothing further → 3.
        let g = Graph {
            m: 4,
            edges: vec![(0, 1), (0, 2), (0, 3)],
        };
        assert_eq!(problem3_brute_force(&g), 3);
    }

    #[test]
    fn exact_solver_handles_small_reduction() {
        // Keep sets tiny: m=2, l=2 → internal sets of size 4.
        let g = Graph {
            m: 2,
            edges: vec![(0, 1)],
        };
        let t = sum_cut_instance(&g, 2);
        let sol = exhaustive_tree_order_guarded(&t, 4);
        // Internal edge aligns all 4 shared attrs; each leaf ({v_other})
        // can align 1 by putting the neighbor attr first... but internal
        // nodes can't start with both v0 and v1. Benefit: 4 (internal) +
        // 1 (one leaf aligned) + 1 (other leaf aligns its attr at the other
        // internal node? both internals share the same permutation, so only
        // the first attribute of that permutation can match a leaf's single
        // vertex attr — unless leaves attach at different positions).
        // We just assert the solver's benefit matches a re-evaluation and
        // is at least the internal-path alignment.
        assert!(sol.benefit > 4, "got {}", sol.benefit);
        assert_eq!(crate::tree::benefit_of(&t, &sol.orders), sol.benefit);
    }
}
