//! `PathOrder` — the exact dynamic program for paths (paper §4.2, Fig. 4).
//!
//! Given a path of join nodes `v1..vn`, node `vi` carrying attribute set
//! `si`, choose a permutation `pi` of each `si` maximizing
//! `F = Σ |pi ∧ pi+1|` over adjacent pairs. Left-deep and right-deep join
//! plans produce exactly such paths.
//!
//! The recurrence: `OPT(i,j) = max_{i ≤ k < j} OPT(i,k) + OPT(k+1,j) + c(i,j)`
//! where `c(i,j)` is the number of attributes common to *every* node of the
//! segment. The common attributes of a segment become a shared permutation
//! prefix for all its nodes and are "paid for" once per internal segment of
//! the split tree — i.e. once per edge they span.

use crate::order::{AttrSet, SortOrder};

/// Result of [`path_order`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSolution {
    /// Chosen permutation for each node, in path order.
    pub orders: Vec<SortOrder>,
    /// The DP's optimal benefit `F = Σ |pi ∧ pi+1|`.
    pub benefit: u64,
}

/// Runs the `PathOrder` dynamic program over the attribute sets of a path.
///
/// Returns the chosen permutations and the optimal benefit. `O(n³)` time
/// with `O(n²)` set intersections, matching the paper's Fig. 4 pseudocode.
///
/// ```
/// use pyro_ordering::{path_order, AttrSet};
/// let sets = vec![
///     AttrSet::from_iter(["a", "b"]),
///     AttrSet::from_iter(["a", "b", "c"]),
///     AttrSet::from_iter(["c", "d"]),
/// ];
/// let sol = path_order(&sets);
/// // The middle node can lead with (a, b) for its left edge or with (c)
/// // for its right edge, not both: optimum is 2.
/// assert_eq!(sol.benefit, 2);
/// ```
pub fn path_order(sets: &[AttrSet]) -> PathSolution {
    let n = sets.len();
    if n == 0 {
        return PathSolution {
            orders: vec![],
            benefit: 0,
        };
    }
    if n == 1 {
        return PathSolution {
            orders: vec![sets[0].arbitrary_order()],
            benefit: 0,
        };
    }

    // benefit[i][j], commons[i][j], split[i][j] over inclusive segments.
    let mut benefit = vec![vec![0u64; n]; n];
    let mut commons: Vec<Vec<AttrSet>> = vec![vec![AttrSet::new(); n]; n];
    let mut split = vec![vec![usize::MAX; n]; n];

    for i in 0..n {
        commons[i][i] = sets[i].clone();
    }

    for j in 1..n {
        // segment length j+1
        for i in 0..n - j {
            let end = i + j;
            let mut best_k = i;
            let mut best_val = 0u64;
            for k in i..end {
                let val = benefit[i][k] + benefit[k + 1][end];
                if val > best_val || k == i {
                    best_val = val;
                    best_k = k;
                }
            }
            let common = commons[i][best_k].intersect(&commons[best_k + 1][end]);
            benefit[i][end] = best_val + common.len() as u64;
            commons[i][end] = common;
            split[i][end] = best_k;
        }
    }

    let total = benefit[0][n - 1];
    let mut orders = vec![SortOrder::empty(); n];
    make_permutation(0, n - 1, &mut commons, &split, &mut orders);
    PathSolution {
        orders,
        benefit: total,
    }
}

/// `MakePermutation(i, j)` from Fig. 4: prepend the segment's common
/// attributes (one canonical permutation shared by every node in the
/// segment), remove them from the `commons` entries of *nested* segments,
/// then recurse on the two halves of the optimal split.
///
/// Deviation from the paper's pseudocode, which subtracts from *all*
/// `(i', j') ≠ (i, j)`: literal subtraction corrupts sibling segments. If an
/// attribute `x` is common to nodes 1–2 and, independently, to nodes 4–5
/// (but not to the whole path), the DP counts `x` in both `OPT(1,2)` and
/// `OPT(4,5)`; globally subtracting it after placing it in segment (1,2)
/// would silently drop it from (4,5)'s permutations and the realized benefit
/// would fall short of the DP value. Attributes are per-node resources —
/// the only purpose of the subtraction is to avoid appending the same
/// attribute twice to the same node — so restricting it to descendants is
/// both necessary and sufficient (entries outside `[i..j]` are never read by
/// this recursion branch).
fn make_permutation(
    i: usize,
    j: usize,
    commons: &mut [Vec<AttrSet>],
    split: &[Vec<usize>],
    orders: &mut [SortOrder],
) {
    let seg_common = commons[i][j].clone();
    let appended = seg_common.arbitrary_order();
    if i == j {
        orders[i] = orders[i].concat(&appended);
        return;
    }
    for order in orders.iter_mut().take(j + 1).skip(i) {
        *order = order.concat(&appended);
    }
    // Remove the just-placed attributes from nested segments so descendants
    // do not place them again.
    for (a, row) in commons.iter_mut().enumerate().take(j + 1).skip(i) {
        for (b, entry) in row.iter_mut().enumerate().take(j + 1).skip(a) {
            if !(a == i && b == j) {
                *entry = entry.difference(&seg_common);
            }
        }
    }
    let m = split[i][j];
    make_permutation(i, m, commons, split, orders);
    make_permutation(m + 1, j, commons, split, orders);
}

/// Evaluates the path benefit `Σ |pi ∧ pi+1|` of explicit permutations.
pub fn path_benefit(orders: &[SortOrder]) -> u64 {
    orders
        .windows(2)
        .map(|w| w[0].lcp(&w[1]).len() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(attrs: &[&str]) -> AttrSet {
        AttrSet::from_iter(attrs.iter().copied())
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(path_order(&[]).benefit, 0);
        let sol = path_order(&[s(&["b", "a"])]);
        assert_eq!(sol.benefit, 0);
        assert_eq!(sol.orders[0].len(), 2);
    }

    #[test]
    fn identical_sets_align_fully() {
        let sets = vec![s(&["a", "b", "c"]); 4];
        let sol = path_order(&sets);
        // each of 3 edges shares all 3 attributes
        assert_eq!(sol.benefit, 9);
        assert_eq!(path_benefit(&sol.orders), 9);
        for o in &sol.orders {
            assert_eq!(o.len(), 3);
        }
        // all permutations identical
        assert!(sol.orders.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn disjoint_sets_have_zero_benefit() {
        let sets = vec![s(&["a"]), s(&["b"]), s(&["c"])];
        let sol = path_order(&sets);
        assert_eq!(sol.benefit, 0);
        assert_eq!(path_benefit(&sol.orders), 0);
    }

    #[test]
    fn nested_commonality() {
        // {a,b} - {a,b,c} - {c,d}: the middle node leads with (a,b) for the
        // left edge (benefit 2) — it cannot also lead with (c) for the
        // right edge, so the optimum is 2.
        let sets = vec![s(&["a", "b"]), s(&["a", "b", "c"]), s(&["c", "d"])];
        let sol = path_order(&sets);
        assert_eq!(sol.benefit, 2);
        assert_eq!(path_benefit(&sol.orders), 2);
    }

    #[test]
    fn chain_with_global_common_attr() {
        // 'x' is common to all four nodes and contributes on all 3 edges.
        // Beyond x, each interior node can favour only one side: the best
        // assignment adds p on edge 1 and r on edge 3 (q on edge 2 would
        // conflict with both) → 3 + 2 = 5.
        let sets = vec![
            s(&["x", "p"]),
            s(&["x", "p", "q"]),
            s(&["x", "q", "r"]),
            s(&["x", "r"]),
        ];
        let sol = path_order(&sets);
        assert_eq!(sol.benefit, 5);
        assert_eq!(path_benefit(&sol.orders), sol.benefit);
    }

    #[test]
    fn permutations_cover_whole_sets() {
        let sets = vec![s(&["a", "b", "z"]), s(&["b", "c"]), s(&["c", "d"])];
        let sol = path_order(&sets);
        for (set, order) in sets.iter().zip(&sol.orders) {
            assert_eq!(
                &order.attr_set(),
                set,
                "order must be a permutation of its set"
            );
        }
    }

    #[test]
    fn reported_benefit_matches_realized_benefit() {
        // Regression guard: DP benefit must equal the benefit of the
        // permutations it constructs.
        let cases: Vec<Vec<AttrSet>> = vec![
            vec![
                s(&["a", "b"]),
                s(&["b", "c"]),
                s(&["a", "c"]),
                s(&["a", "b", "c"]),
            ],
            vec![s(&["m", "y"]), s(&["m", "y", "co", "c"]), s(&["m", "y"])],
            vec![
                s(&["a"]),
                s(&["a", "b"]),
                s(&["b"]),
                s(&["b", "c"]),
                s(&["c"]),
            ],
            // Sibling-corruption regression: x is common to nodes 1-2 and to
            // nodes 4-5 but not to the whole path. Literal Fig. 4 subtraction
            // would realize 3 instead of the DP's 4 here.
            vec![
                s(&["x", "a"]),
                s(&["x", "a"]),
                s(&["p"]),
                s(&["x", "b"]),
                s(&["x", "b"]),
            ],
        ];
        for sets in cases {
            let sol = path_order(&sets);
            assert_eq!(path_benefit(&sol.orders), sol.benefit, "sets = {sets:?}");
        }
    }
}
