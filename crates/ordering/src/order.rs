//! Sort orders and attribute sets — the paper's §3 notation, executable.
//!
//! A sort order `o` is a sequence of attribute names `(a1, a2, ..., an)`.
//! Sort direction is ignored throughout, exactly as in the paper ("our
//! techniques are applicable independent of the sort direction").

use std::collections::BTreeSet;
use std::fmt;

/// A set of attributes with deterministic (sorted) iteration order.
///
/// Determinism matters: the paper's algorithms call `apermute(s)` — "an
/// arbitrary permutation of attribute set s" — and both `PathOrder` and the
/// afm computation rely on *the same* arbitrary permutation being chosen for
/// the same set on adjacent nodes, otherwise the common prefix they engineer
/// is silently destroyed. Backing the set with a `BTreeSet` makes
/// [`AttrSet::arbitrary_order`] canonical.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct AttrSet {
    attrs: BTreeSet<String>,
}

impl AttrSet {
    /// Empty set.
    pub fn new() -> Self {
        AttrSet::default()
    }

    /// Builds from any iterator of names.
    #[allow(clippy::should_implement_trait)] // FromIterator is also implemented
    pub fn from_iter<I, S>(iter: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        AttrSet {
            attrs: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, a: &str) -> bool {
        self.attrs.contains(a)
    }

    /// Inserts an attribute.
    pub fn insert(&mut self, a: impl Into<String>) {
        self.attrs.insert(a.into());
    }

    /// Removes an attribute, returning whether it was present.
    pub fn remove(&mut self, a: &str) -> bool {
        self.attrs.remove(a)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &AttrSet) -> AttrSet {
        AttrSet {
            attrs: self.attrs.intersection(&other.attrs).cloned().collect(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        AttrSet {
            attrs: self.attrs.union(&other.attrs).cloned().collect(),
        }
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet {
            attrs: self.attrs.difference(&other.attrs).cloned().collect(),
        }
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.attrs.is_subset(&other.attrs)
    }

    /// Deterministic iteration in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(String::as_str)
    }

    /// `apermute(s)`: the canonical "arbitrary" permutation of this set —
    /// its attributes in lexicographic order.
    pub fn arbitrary_order(&self) -> SortOrder {
        SortOrder::new(self.attrs.iter().cloned().collect::<Vec<_>>())
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<String>> FromIterator<S> for AttrSet {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

/// A sort order: a duplicate-free sequence of attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SortOrder {
    attrs: Vec<String>,
}

impl SortOrder {
    /// The empty order `ε`.
    pub fn empty() -> Self {
        SortOrder::default()
    }

    /// Builds an order from a sequence of names. Debug builds assert
    /// duplicate-freedom.
    pub fn new<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        debug_assert!(
            {
                let mut s: Vec<&str> = attrs.iter().map(String::as_str).collect();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate attribute in sort order {attrs:?}"
        );
        SortOrder { attrs }
    }

    /// `|o|`: number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute sequence.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// `attrs(o)`: the set of attributes in the order.
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::from_iter(self.attrs.iter().cloned())
    }

    /// `o1 ≤ o2` with `self` as `o1`: true iff `self` is a prefix of `other`
    /// (so `other` *subsumes* `self`).
    pub fn is_prefix_of(&self, other: &SortOrder) -> bool {
        self.len() <= other.len() && self.attrs[..] == other.attrs[..self.len()]
    }

    /// `o1 < o2`: strict prefix.
    pub fn is_strict_prefix_of(&self, other: &SortOrder) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// `o1 ∧ o2`: longest common prefix.
    pub fn lcp(&self, other: &SortOrder) -> SortOrder {
        let n = self
            .attrs
            .iter()
            .zip(&other.attrs)
            .take_while(|(a, b)| a == b)
            .count();
        SortOrder {
            attrs: self.attrs[..n].to_vec(),
        }
    }

    /// `o1 + o2`: concatenation. Attributes of `other` already present in
    /// `self` are skipped (they are functionally redundant as minor keys —
    /// the run is already unique on them within the prefix).
    pub fn concat(&self, other: &SortOrder) -> SortOrder {
        let mut attrs = self.attrs.clone();
        for a in &other.attrs {
            if !attrs.contains(a) {
                attrs.push(a.clone());
            }
        }
        SortOrder { attrs }
    }

    /// `o1 − o2`: the order `o'` with `o2 + o' = o1`. Defined only when
    /// `o2 ≤ o1`; returns `None` otherwise.
    pub fn minus(&self, prefix: &SortOrder) -> Option<SortOrder> {
        if prefix.is_prefix_of(self) {
            Some(SortOrder {
                attrs: self.attrs[prefix.len()..].to_vec(),
            })
        } else {
            None
        }
    }

    /// `o ∧ s`: longest *prefix* of `o` whose attributes all belong to `s`.
    pub fn lcp_with_set(&self, s: &AttrSet) -> SortOrder {
        let n = self.attrs.iter().take_while(|a| s.contains(a)).count();
        SortOrder {
            attrs: self.attrs[..n].to_vec(),
        }
    }

    /// Extends this order with an arbitrary (canonical) permutation of the
    /// attributes in `s` not already present: `o + ⟨s − attrs(o)⟩`.
    pub fn extend_with_set(&self, s: &AttrSet) -> SortOrder {
        self.concat(&s.difference(&self.attr_set()).arbitrary_order())
    }

    /// Truncates to the first `n` attributes.
    pub fn prefix(&self, n: usize) -> SortOrder {
        SortOrder {
            attrs: self.attrs[..n.min(self.attrs.len())].to_vec(),
        }
    }

    /// Applies a renaming function to every attribute (used to map orders
    /// through column equivalences at joins).
    pub fn rename(&self, f: impl Fn(&str) -> String) -> SortOrder {
        SortOrder {
            attrs: self.attrs.iter().map(|a| f(a)).collect(),
        }
    }
}

impl fmt::Display for SortOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl<S: Into<String>> FromIterator<S> for SortOrder {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        SortOrder::new(iter.into_iter().map(Into::into).collect::<Vec<_>>())
    }
}

/// All `n!` permutations of an attribute set, in a deterministic order —
/// `P(s)` from the paper. Used by the exhaustive strategy (PYRO-E) and by
/// tests; callers must keep `s` small.
pub fn all_permutations(s: &AttrSet) -> Vec<SortOrder> {
    let items: Vec<String> = s.iter().map(str::to_string).collect();
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(items.len());
    let mut used = vec![false; items.len()];
    permute_rec(&items, &mut used, &mut current, &mut out);
    out
}

fn permute_rec(
    items: &[String],
    used: &mut [bool],
    current: &mut Vec<String>,
    out: &mut Vec<SortOrder>,
) {
    if current.len() == items.len() {
        out.push(SortOrder::new(current.clone()));
        return;
    }
    for i in 0..items.len() {
        if !used[i] {
            used[i] = true;
            current.push(items[i].clone());
            permute_rec(items, used, current, out);
            current.pop();
            used[i] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(attrs: &[&str]) -> SortOrder {
        SortOrder::new(attrs.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn lcp_basic() {
        assert_eq!(
            o(&["y", "m", "c"]).lcp(&o(&["y", "m", "k"])),
            o(&["y", "m"])
        );
        assert_eq!(o(&["a"]).lcp(&o(&["b"])), SortOrder::empty());
        assert_eq!(o(&["a", "b"]).lcp(&o(&["a", "b"])), o(&["a", "b"]));
    }

    #[test]
    fn prefix_relations() {
        assert!(o(&["a"]).is_prefix_of(&o(&["a", "b"])));
        assert!(o(&["a"]).is_strict_prefix_of(&o(&["a", "b"])));
        assert!(!o(&["a", "b"]).is_strict_prefix_of(&o(&["a", "b"])));
        assert!(SortOrder::empty().is_prefix_of(&o(&["a"])));
        assert!(!o(&["b"]).is_prefix_of(&o(&["a", "b"])));
    }

    #[test]
    fn concat_skips_duplicates() {
        assert_eq!(o(&["a", "b"]).concat(&o(&["b", "c"])), o(&["a", "b", "c"]));
    }

    #[test]
    fn minus_inverts_concat() {
        let o1 = o(&["a", "b"]);
        let o2 = o(&["c", "d"]);
        let whole = o1.concat(&o2);
        assert_eq!(whole.minus(&o1), Some(o2));
        assert_eq!(whole.minus(&o(&["x"])), None);
    }

    #[test]
    fn lcp_with_set_stops_at_foreign_attr() {
        let s = AttrSet::from_iter(["m", "y"]);
        assert_eq!(o(&["y", "m", "c"]).lcp_with_set(&s), o(&["y", "m"]));
        assert_eq!(o(&["c", "y"]).lcp_with_set(&s), SortOrder::empty());
    }

    #[test]
    fn extend_with_set_appends_missing() {
        let s = AttrSet::from_iter(["c", "a", "b"]);
        assert_eq!(o(&["b"]).extend_with_set(&s), o(&["b", "a", "c"]));
        // deterministic "arbitrary" permutation
        assert_eq!(SortOrder::empty().extend_with_set(&s), o(&["a", "b", "c"]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(o(&["a", "b"]).to_string(), "(a, b)");
        assert_eq!(SortOrder::empty().to_string(), "ε");
        assert_eq!(AttrSet::from_iter(["b", "a"]).to_string(), "{a, b}");
    }

    #[test]
    fn permutations_count() {
        let s = AttrSet::from_iter(["a", "b", "c"]);
        let perms = all_permutations(&s);
        assert_eq!(perms.len(), 6);
        // all distinct
        let mut seen = std::collections::HashSet::new();
        for p in &perms {
            assert!(seen.insert(p.clone()));
            assert_eq!(p.len(), 3);
        }
    }

    #[test]
    fn rename_maps_attrs() {
        let r = o(&["x", "y"]).rename(|a| format!("t.{a}"));
        assert_eq!(r, o(&["t.x", "t.y"]));
    }

    #[test]
    fn attr_set_ops() {
        let a = AttrSet::from_iter(["a", "b", "c"]);
        let b = AttrSet::from_iter(["b", "c", "d"]);
        assert_eq!(a.intersect(&b), AttrSet::from_iter(["b", "c"]));
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.difference(&b), AttrSet::from_iter(["a"]));
        assert!(AttrSet::from_iter(["b"]).is_subset(&a));
    }
}
