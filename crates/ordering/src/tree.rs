//! Binary join trees and the 2-approximation of §4.2 (paper Fig. 5).
//!
//! Edges of the tree are split by level parity into two sets `Eo` (odd
//! levels) and `Ee` (even levels). Each set induces vertex-disjoint *paths*,
//! solved exactly by [`crate::path::path_order`]; the better of the two path
//! solutions achieves at least half the optimal tree benefit, because the
//! optimum's benefit decomposes as `odd-ben + even-ben` and each path
//! solution dominates its half.

use crate::order::{AttrSet, SortOrder};
use crate::path::path_order;

/// A binary tree of join nodes, each carrying the attribute set over which a
/// permutation (sort order) must be chosen.
#[derive(Debug, Clone, Default)]
pub struct JoinTree {
    attrs: Vec<AttrSet>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    root: Option<usize>,
}

impl JoinTree {
    /// Empty tree.
    pub fn new() -> Self {
        JoinTree::default()
    }

    /// Adds the root node; panics if a root already exists.
    pub fn add_root(&mut self, attrs: AttrSet) -> usize {
        assert!(self.root.is_none(), "tree already has a root");
        let id = self.push(attrs, None);
        self.root = Some(id);
        id
    }

    /// Adds a child of `parent`; a node may have at most two children.
    pub fn add_child(&mut self, parent: usize, attrs: AttrSet) -> usize {
        assert!(
            self.children[parent].len() < 2,
            "binary tree: node {parent} already has 2 children"
        );
        let id = self.push(attrs, Some(parent));
        self.children[parent].push(id);
        id
    }

    fn push(&mut self, attrs: AttrSet, parent: Option<usize>) -> usize {
        let id = self.attrs.len();
        self.attrs.push(attrs);
        self.parent.push(parent);
        self.children.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The root id, if any.
    pub fn root(&self) -> Option<usize> {
        self.root
    }

    /// Attribute set of node `id`.
    pub fn attrs(&self, id: usize) -> &AttrSet {
        &self.attrs[id]
    }

    /// Parent of node `id`.
    pub fn parent(&self, id: usize) -> Option<usize> {
        self.parent[id]
    }

    /// Children of node `id`.
    pub fn children(&self, id: usize) -> &[usize] {
        &self.children[id]
    }

    /// All `(parent, child)` edges.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        (0..self.len())
            .filter_map(|c| self.parent[c].map(|p| (p, c)))
            .collect()
    }

    /// Depth of each node (root = 0). The *level* of edge `(p, c)` is
    /// `depth(c)`.
    pub fn depths(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.len()];
        let Some(root) = self.root else { return d };
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            for &c in &self.children[v] {
                d[c] = d[v] + 1;
                stack.push(c);
            }
        }
        d
    }
}

/// Result of [`two_approx_tree_order`].
#[derive(Debug, Clone)]
pub struct TreeSolution {
    /// Chosen permutation per node id.
    pub orders: Vec<SortOrder>,
    /// Realized benefit over *all* tree edges.
    pub benefit: u64,
    /// Which parity was kept: `"odd"` or `"even"`.
    pub chosen_parity: &'static str,
}

/// Total benefit `Σ_{(p,c) ∈ E} |orders[p] ∧ orders[c]|` of explicit
/// permutations on a tree.
pub fn benefit_of(tree: &JoinTree, orders: &[SortOrder]) -> u64 {
    tree.edges()
        .iter()
        .map(|&(p, c)| orders[p].lcp(&orders[c]).len() as u64)
        .sum()
}

/// The 2-approximation for binary trees (paper §4.2).
///
/// Splits edges by level parity, solves the induced paths exactly with the
/// `PathOrder` DP, and returns whichever parity's solution realizes the
/// higher benefit over the full tree. Nodes not covered by the winning
/// parity's paths receive the canonical arbitrary permutation of their set.
///
/// Guarantee: `benefit ≥ OPT/2` (the realized benefit can only exceed the
/// chosen parity's path benefit, and `max(ben_odd, ben_even) ≥ OPT/2`).
pub fn two_approx_tree_order(tree: &JoinTree) -> TreeSolution {
    if tree.is_empty() {
        return TreeSolution {
            orders: vec![],
            benefit: 0,
            chosen_parity: "odd",
        };
    }
    let odd = solve_parity(tree, 1);
    let even = solve_parity(tree, 0);
    let ben_odd = benefit_of(tree, &odd);
    let ben_even = benefit_of(tree, &even);
    if ben_odd >= ben_even {
        TreeSolution {
            orders: odd,
            benefit: ben_odd,
            chosen_parity: "odd",
        }
    } else {
        TreeSolution {
            orders: even,
            benefit: ben_even,
            chosen_parity: "even",
        }
    }
}

/// Solves one parity class: keeps edges whose level `depth(child) % 2 ==
/// parity`, decomposes the kept forest into maximal paths, and runs the
/// exact path DP on each.
fn solve_parity(tree: &JoinTree, parity: usize) -> Vec<SortOrder> {
    let n = tree.len();
    let depths = tree.depths();
    // Adjacency restricted to kept edges.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, c) in tree.edges() {
        if depths[c] % 2 == parity {
            adj[p].push(c);
            adj[c].push(p);
        }
    }
    // Every node has ≤ 2 incident kept edges (its parent edge and child
    // edges are at consecutive levels, so only one side survives; a node has
    // at most two children). Components are therefore simple paths.
    debug_assert!(adj.iter().all(|a| a.len() <= 2));

    let mut orders = vec![SortOrder::empty(); n];
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] || adj[start].len() > 1 {
            continue; // only start walks from path endpoints (degree ≤ 1)
        }
        // Walk the path from this endpoint.
        let mut path = vec![start];
        visited[start] = true;
        let mut prev = start;
        let mut cur = adj[start].first().copied();
        while let Some(v) = cur {
            path.push(v);
            visited[v] = true;
            cur = adj[v].iter().copied().find(|&w| w != prev);
            prev = v;
        }
        let sets: Vec<AttrSet> = path.iter().map(|&v| tree.attrs(v).clone()).collect();
        let sol = path_order(&sets);
        for (node, order) in path.iter().zip(sol.orders) {
            orders[*node] = order;
        }
    }
    debug_assert!(
        visited.iter().all(|&v| v),
        "path decomposition missed a node"
    );
    orders
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(attrs: &[&str]) -> AttrSet {
        AttrSet::from_iter(attrs.iter().copied())
    }

    /// Builds the Figure 3 tree from the paper:
    /// root {a,b,c,d,e} with children {a,b,c,k} and {c,d,h,n};
    /// {a,b,c,k} has children {c,e,i,j} and {c,k,l,m};
    /// {c,d,h,n} has children {c,d} and {f,g,p,q}.
    /// (Leaf relations R1..R8 carry no attribute sets of their own — only
    /// the seven join nodes choose permutations; we model the join nodes.)
    fn figure3_tree() -> JoinTree {
        let mut t = JoinTree::new();
        let root = t.add_root(s(&["a", "b", "c", "d", "e"]));
        let l = t.add_child(root, s(&["a", "b", "c", "k"]));
        let r = t.add_child(root, s(&["c", "d", "h", "n"]));
        t.add_child(l, s(&["c", "e", "i", "j"]));
        t.add_child(l, s(&["c", "k", "l", "m"]));
        t.add_child(r, s(&["c", "d"]));
        t.add_child(r, s(&["f", "g", "p", "q"]));
        t
    }

    #[test]
    fn tree_construction() {
        let t = figure3_tree();
        assert_eq!(t.len(), 7);
        assert_eq!(t.edges().len(), 6);
        let d = t.depths();
        assert_eq!(d[t.root().unwrap()], 0);
        assert_eq!(d.iter().filter(|&&x| x == 1).count(), 2);
        assert_eq!(d.iter().filter(|&&x| x == 2).count(), 4);
    }

    #[test]
    fn figure3_two_approx_reaches_at_least_half_of_paper_optimum() {
        // The paper states the optimal benefit for Figure 3 is 8.
        let t = figure3_tree();
        let sol = two_approx_tree_order(&t);
        assert!(
            sol.benefit >= 4,
            "2-approx must reach ≥ 8/2, got {}",
            sol.benefit
        );
        assert_eq!(benefit_of(&t, &sol.orders), sol.benefit);
        // Permutations must cover their sets exactly.
        for v in 0..t.len() {
            assert_eq!(&sol.orders[v].attr_set(), t.attrs(v));
        }
    }

    #[test]
    fn figure3_paper_solution_scores_eight() {
        // Sanity-check our benefit evaluator against the paper's hand-made
        // optimal solution: ⟨c,d,a,b,e⟩ ⟨c,k,a,b⟩ ⟨c,d,h,n⟩ ⟨c,e,i,j⟩
        // ⟨c,k,l,m⟩ ⟨c,d⟩ ⟨f,g,p,q⟩ with edge benefits 2,2,1,2,1,0 = 8.
        let t = figure3_tree();
        let orders = vec![
            SortOrder::new(["c", "d", "a", "b", "e"]),
            SortOrder::new(["c", "k", "a", "b"]),
            SortOrder::new(["c", "d", "h", "n"]),
            SortOrder::new(["c", "e", "i", "j"]),
            SortOrder::new(["c", "k", "l", "m"]),
            SortOrder::new(["c", "d"]),
            SortOrder::new(["f", "g", "p", "q"]),
        ];
        assert_eq!(benefit_of(&t, &orders), 8);
    }

    #[test]
    fn single_node_tree() {
        let mut t = JoinTree::new();
        t.add_root(s(&["a", "b"]));
        let sol = two_approx_tree_order(&t);
        assert_eq!(sol.benefit, 0);
        assert_eq!(sol.orders[0].len(), 2);
    }

    #[test]
    fn identical_sets_on_a_path_shaped_tree_solve_exactly() {
        // Left-deep tree = path; the approximation solves it exactly.
        let mut t = JoinTree::new();
        let mut cur = t.add_root(s(&["a", "b"]));
        for _ in 0..4 {
            cur = t.add_child(cur, s(&["a", "b"]));
        }
        let sol = two_approx_tree_order(&t);
        // Optimum: all 5 nodes share both attrs on all 4 edges = 8.
        // Parity split cuts the path into 2-node pieces; each parity
        // realizes at least half (and full-tree evaluation often more).
        assert!(sol.benefit >= 4, "got {}", sol.benefit);
    }

    #[test]
    fn empty_tree() {
        let sol = two_approx_tree_order(&JoinTree::new());
        assert_eq!(sol.benefit, 0);
        assert!(sol.orders.is_empty());
    }

    #[test]
    fn parity_paths_cover_all_nodes() {
        // A bushy 15-node tree; internal invariant (debug_assert) checks the
        // decomposition, we check output shape.
        let mut t = JoinTree::new();
        let root = t.add_root(s(&["r", "s"]));
        let mut frontier = vec![root];
        for level in 0..3 {
            let mut next = Vec::new();
            for &f in &frontier {
                for i in 0..2 {
                    let attrs = AttrSet::from_iter(["r".to_string(), format!("l{level}_{i}")]);
                    next.push(t.add_child(f, attrs));
                }
            }
            frontier = next;
        }
        let sol = two_approx_tree_order(&t);
        assert_eq!(sol.orders.len(), t.len());
        for v in 0..t.len() {
            assert_eq!(&sol.orders[v].attr_set(), t.attrs(v));
        }
        // 'r' is common everywhere: any parity realizes ≥ half of the 14
        // edges' worth of shared-prefix benefit.
        assert!(sol.benefit >= 7, "got {}", sol.benefit);
    }
}
