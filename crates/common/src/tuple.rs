//! Row representation and key extraction.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A row: a boxed slice of values positionally matching a
/// [`crate::Schema`].
///
/// `Default` is the empty (zero-arity) tuple; it allocates nothing, so
/// `std::mem::take` moves a tuple out of a buffer slot in O(1) — the trick
/// the batch-at-a-time sort streams use to emit without cloning.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into_boxed_slice(),
        }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at column `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Approximate in-memory size in bytes; drives sort-memory budgeting so
    /// the replacement-selection heap respects the paper's `M` blocks.
    pub fn byte_size(&self) -> usize {
        // Box<[Value]> header + per-value payloads.
        16 + self.values.iter().map(Value::byte_size).sum::<usize>()
    }

    /// Extracts the values at `cols` as an owned key.
    pub fn key(&self, cols: &[usize]) -> Vec<Value> {
        let mut out = Vec::with_capacity(cols.len());
        self.key_into(cols, &mut out);
        out
    }

    /// Fills `out` (cleared first) with the values at `cols`. Reusing one
    /// buffer across calls avoids a fresh key allocation per tuple — the
    /// hash-join probe loop's hot path.
    pub fn key_into(&self, cols: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(cols.iter().map(|&i| self.values[i].clone()));
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Projects to the columns at `indices` (cloning values).
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let mut v = Vec::with_capacity(indices.len());
        v.extend(indices.iter().map(|&i| self.values[i].clone()));
        Tuple::new(v)
    }

    /// Like [`Tuple::project`], but stages the values through a reusable
    /// `scratch` buffer before moving them into the output tuple's
    /// exact-capacity storage (the one allocation either variant makes).
    /// The staging step costs an extra O(arity) move, so this is about API
    /// symmetry with [`Tuple::key_into`] for callers that assemble values
    /// incrementally, not a speedup over `project`; the batched project
    /// operator uses it with one long-lived scratch.
    pub fn project_into(&self, indices: &[usize], scratch: &mut Vec<Value>) -> Tuple {
        scratch.clear();
        scratch.extend(indices.iter().map(|&i| self.values[i].clone()));
        // Move the staged values into exact-capacity storage, keeping the
        // scratch allocation alive for the next call.
        let mut out = Vec::with_capacity(scratch.len());
        out.append(scratch);
        Tuple::new(out)
    }

    /// An all-NULL tuple of the given arity (outer-join padding).
    pub fn nulls(arity: usize) -> Tuple {
        Tuple::new(vec![Value::Null; arity])
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// A lexicographic comparison key: an ordered list of column positions.
///
/// The paper ignores ASC/DESC ("our techniques are applicable independent of
/// the sort direction"), and so do we — `KeySpec` always compares ascending.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KeySpec {
    cols: Vec<usize>,
}

impl KeySpec {
    /// Builds a key over the given column positions.
    pub fn new(cols: Vec<usize>) -> Self {
        KeySpec { cols }
    }

    /// The column positions.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Number of key columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True iff the key is empty (every tuple compares equal).
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Lexicographic comparison of two tuples under this key.
    ///
    /// Returns the ordering *and* does exactly as many [`Value`] comparisons
    /// as needed; callers that track comparison counts should use
    /// [`KeySpec::compare_counting`].
    pub fn compare(&self, a: &Tuple, b: &Tuple) -> Ordering {
        for &c in &self.cols {
            match a.get(c).cmp(b.get(c)) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Like [`KeySpec::compare`] but also reports how many scalar
    /// comparisons were performed — the statistic Experiment A1/A3 plots.
    pub fn compare_counting(&self, a: &Tuple, b: &Tuple) -> (Ordering, u64) {
        let mut n = 0;
        for &c in &self.cols {
            n += 1;
            match a.get(c).cmp(b.get(c)) {
                Ordering::Equal => continue,
                non_eq => return (non_eq, n),
            }
        }
        (Ordering::Equal, n)
    }

    /// True iff `a` and `b` agree on every key column.
    pub fn eq_on(&self, a: &Tuple, b: &Tuple) -> bool {
        self.compare(a, b) == Ordering::Equal
    }

    /// Splits the key at `k`: `(prefix, suffix)` — used by the partial-sort
    /// operator which knows the first `k` columns are already sorted.
    pub fn split_at(&self, k: usize) -> (KeySpec, KeySpec) {
        let (p, s) = self.cols.split_at(k.min(self.cols.len()));
        (KeySpec::new(p.to_vec()), KeySpec::new(s.to_vec()))
    }

    /// True iff a run of tuples sorted by `self` is also sorted by `other`
    /// (i.e. `other` is a prefix of `self`).
    pub fn satisfies(&self, other: &KeySpec) -> bool {
        other.cols.len() <= self.cols.len() && self.cols[..other.cols.len()] == other.cols[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn key_compare_lexicographic() {
        let k = KeySpec::new(vec![0, 1]);
        assert_eq!(k.compare(&t(&[1, 2]), &t(&[1, 3])), Ordering::Less);
        assert_eq!(k.compare(&t(&[2, 0]), &t(&[1, 9])), Ordering::Greater);
        assert_eq!(k.compare(&t(&[1, 2]), &t(&[1, 2])), Ordering::Equal);
    }

    #[test]
    fn key_compare_respects_column_order() {
        let k = KeySpec::new(vec![1, 0]);
        // compares col1 first
        assert_eq!(k.compare(&t(&[9, 1]), &t(&[0, 2])), Ordering::Less);
    }

    #[test]
    fn counting_stops_early() {
        let k = KeySpec::new(vec![0, 1, 2]);
        let (_, n) = k.compare_counting(&t(&[1, 0, 0]), &t(&[2, 0, 0]));
        assert_eq!(n, 1);
        let (_, n) = k.compare_counting(&t(&[1, 1, 1]), &t(&[1, 1, 1]));
        assert_eq!(n, 3);
    }

    #[test]
    fn split_and_satisfies() {
        let k = KeySpec::new(vec![3, 1, 2]);
        let (p, s) = k.split_at(1);
        assert_eq!(p.cols(), &[3]);
        assert_eq!(s.cols(), &[1, 2]);
        assert!(k.satisfies(&p));
        assert!(!p.satisfies(&k));
        assert!(k.satisfies(&KeySpec::default()));
    }

    #[test]
    fn tuple_ops() {
        let a = t(&[1, 2]);
        let b = t(&[3]);
        assert_eq!(a.concat(&b), t(&[1, 2, 3]));
        assert_eq!(a.project(&[1]), t(&[2]));
        assert_eq!(a.key(&[1, 0]), vec![Value::Int(2), Value::Int(1)]);
        assert!(Tuple::nulls(2).get(0).is_null());
    }

    #[test]
    fn scratch_variants_match_allocating_ones() {
        let a = t(&[7, 8, 9]);
        let mut scratch = Vec::new();
        assert_eq!(a.project_into(&[2, 0], &mut scratch), a.project(&[2, 0]));
        assert!(scratch.is_empty(), "scratch drained but reusable");
        // Second call reuses the buffer.
        assert_eq!(a.project_into(&[1], &mut scratch), t(&[8]));
        let mut key = Vec::new();
        a.key_into(&[1, 0], &mut key);
        assert_eq!(key, a.key(&[1, 0]));
        a.key_into(&[2], &mut key);
        assert_eq!(key, a.key(&[2]), "key_into clears before filling");
    }

    #[test]
    fn byte_size_grows_with_content() {
        assert!(t(&[1, 2, 3]).byte_size() > t(&[1]).byte_size());
    }
}
