//! Error handling shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PyroError>;

/// Every way a PYRO operation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyroError {
    /// A column name did not resolve against a schema.
    UnknownColumn(String),
    /// A column suffix matched more than one qualified name.
    AmbiguousColumn(String),
    /// A table name did not resolve against the catalog.
    UnknownTable(String),
    /// Storage-layer failure (out-of-range page, corrupt encoding, ...).
    Storage(String),
    /// Every buffer-pool frame is pinned, so no page can be cached or
    /// evicted. Returned (never dead-locked on) by pool operations that
    /// would need a free frame; carries the pool capacity so callers can
    /// report how small the pool was.
    PoolExhausted {
        /// Total frames in the pool, all of them pinned.
        capacity: usize,
    },
    /// Executor failure (schema mismatch, unsupported expression, ...).
    Exec(String),
    /// Optimizer failure (no plan found, inconsistent properties, ...).
    Plan(String),
    /// SQL frontend failure with position information where available.
    Sql(String),
    /// A recognized SQL feature this engine deliberately does not implement
    /// (e.g. `ORDER BY ... DESC`). Distinct from [`PyroError::Sql`] so
    /// callers can tell "your query is malformed" from "your query is fine
    /// but unsupported here".
    Unsupported(String),
    /// An index with this name already exists on the table. Rejected rather
    /// than silently replaced: replacing would orphan the old entry file's
    /// pages in the store.
    DuplicateIndex {
        /// The table the index was being created on.
        table: String,
        /// The already-taken index name.
        index: String,
    },
    /// A prepared statement was executed with the wrong number of bound
    /// parameters, or a bound value's type contradicts how the query uses
    /// the placeholder.
    ParamBinding(String),
}

impl fmt::Display for PyroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyroError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            PyroError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            PyroError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PyroError::Storage(m) => write!(f, "storage error: {m}"),
            PyroError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            PyroError::Exec(m) => write!(f, "execution error: {m}"),
            PyroError::Plan(m) => write!(f, "planning error: {m}"),
            PyroError::Sql(m) => write!(f, "SQL error: {m}"),
            PyroError::Unsupported(m) => write!(f, "unsupported SQL feature: {m}"),
            PyroError::DuplicateIndex { table, index } => {
                write!(f, "index {index} already exists on table {table}")
            }
            PyroError::ParamBinding(m) => write!(f, "parameter binding error: {m}"),
        }
    }
}

impl std::error::Error for PyroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PyroError::UnknownColumn("x".into());
        assert!(e.to_string().contains("unknown column"));
        let e = PyroError::Sql("expected FROM at offset 12".into());
        assert!(e.to_string().contains("offset 12"));
    }
}
