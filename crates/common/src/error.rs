//! Error handling shared across the workspace.
//!
//! Every [`PyroError`] variant carries a **stable numeric code**
//! ([`PyroError::code`]) so machine consumers — above all the `pyro-wire`
//! error frame — can match on errors without parsing display strings. Codes
//! are append-only: a variant's code never changes and retired codes are
//! never reused. The [`PyroError::detail`] / [`PyroError::from_code`] pair
//! round-trips a variant through `(code, detail)` — the exact payload a
//! wire error frame carries.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PyroError>;

/// Separator used when a structured variant flattens multiple fields into
/// one `detail` string (ASCII unit separator — cannot appear in SQL
/// identifiers).
const FIELD_SEP: char = '\u{1f}';

/// Every way a PYRO operation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PyroError {
    /// A column name did not resolve against a schema.
    UnknownColumn(String),
    /// A column suffix matched more than one qualified name.
    AmbiguousColumn(String),
    /// A table name did not resolve against the catalog.
    UnknownTable(String),
    /// Storage-layer failure (out-of-range page, corrupt encoding, ...).
    Storage(String),
    /// Every buffer-pool frame is pinned, so no page can be cached or
    /// evicted. Returned (never dead-locked on) by pool operations that
    /// would need a free frame; carries the pool capacity so callers can
    /// report how small the pool was.
    PoolExhausted {
        /// Total frames in the pool, all of them pinned.
        capacity: usize,
    },
    /// Executor failure (schema mismatch, unsupported expression, ...).
    Exec(String),
    /// Optimizer failure (no plan found, inconsistent properties, ...).
    Plan(String),
    /// SQL frontend failure with position information where available.
    Sql(String),
    /// A recognized SQL feature this engine deliberately does not implement
    /// (e.g. `ORDER BY ... DESC`). Distinct from [`PyroError::Sql`] so
    /// callers can tell "your query is malformed" from "your query is fine
    /// but unsupported here".
    Unsupported(String),
    /// An index with this name already exists on the table. Rejected rather
    /// than silently replaced: replacing would orphan the old entry file's
    /// pages in the store.
    DuplicateIndex {
        /// The table the index was being created on.
        table: String,
        /// The already-taken index name.
        index: String,
    },
    /// A prepared statement was executed with the wrong number of bound
    /// parameters, or a bound value's type contradicts how the query uses
    /// the placeholder.
    ParamBinding(String),
    /// A wire-protocol violation: malformed frame, unknown opcode,
    /// handshake mismatch, unknown statement id, registry limits. The peer
    /// sent bytes the protocol does not allow — as opposed to a well-formed
    /// request that failed ([`PyroError::Sql`], [`PyroError::Exec`], ...).
    Wire(String),
    /// The server's admission gate shed this query: the concurrency limit
    /// and the bounded wait queue were both full (or the queue wait timed
    /// out). The request was *not* executed; retrying later is safe.
    ServerOverloaded(String),
    /// The query exceeded a per-query resource budget (result rows or
    /// response bytes) and was cancelled mid-stream. Rows already delivered
    /// are valid but the result is truncated.
    BudgetExceeded(String),
    /// A page read from durable storage failed its CRC32 check: the bytes
    /// on disk are not the bytes that were written (torn write, bit rot,
    /// out-of-band modification). Surfaced instead of decoding garbage.
    ChecksumMismatch {
        /// The page whose checksum failed.
        page: u64,
        /// The checksum stored in the page header.
        stored: u32,
        /// The checksum computed over the bytes actually read.
        computed: u32,
    },
    /// An operating-system I/O failure from the durable storage layer
    /// (open, read, write, fsync, ...) — the file-backed sibling of
    /// [`PyroError::Storage`], distinct so callers can tell "the engine
    /// rejected this" from "the disk did".
    Io(String),
    /// Crash recovery could not restore a consistent state from a data
    /// directory: bad superblock magic, undecodable catalog root, a catalog
    /// page chain pointing outside the file. Distinct from
    /// [`PyroError::ChecksumMismatch`] (a single unreadable page) — this is
    /// "the directory as a whole does not describe a database".
    Recovery(String),
}

/// Stable numeric codes, one per [`PyroError`] variant.
///
/// Append-only: never renumber, never reuse. The `pyro-wire` error frame
/// carries these on the wire; clients match on them.
pub mod codes {
    /// [`super::PyroError::UnknownColumn`]
    pub const UNKNOWN_COLUMN: u16 = 1;
    /// [`super::PyroError::AmbiguousColumn`]
    pub const AMBIGUOUS_COLUMN: u16 = 2;
    /// [`super::PyroError::UnknownTable`]
    pub const UNKNOWN_TABLE: u16 = 3;
    /// [`super::PyroError::Storage`]
    pub const STORAGE: u16 = 4;
    /// [`super::PyroError::PoolExhausted`]
    pub const POOL_EXHAUSTED: u16 = 5;
    /// [`super::PyroError::Exec`]
    pub const EXEC: u16 = 6;
    /// [`super::PyroError::Plan`]
    pub const PLAN: u16 = 7;
    /// [`super::PyroError::Sql`]
    pub const SQL: u16 = 8;
    /// [`super::PyroError::Unsupported`]
    pub const UNSUPPORTED: u16 = 9;
    /// [`super::PyroError::DuplicateIndex`]
    pub const DUPLICATE_INDEX: u16 = 10;
    /// [`super::PyroError::ParamBinding`]
    pub const PARAM_BINDING: u16 = 11;
    /// [`super::PyroError::Wire`]
    pub const WIRE: u16 = 12;
    /// [`super::PyroError::ServerOverloaded`]
    pub const SERVER_OVERLOADED: u16 = 13;
    /// [`super::PyroError::BudgetExceeded`]
    pub const BUDGET_EXCEEDED: u16 = 14;
    /// [`super::PyroError::ChecksumMismatch`]
    pub const CHECKSUM_MISMATCH: u16 = 15;
    /// [`super::PyroError::Io`]
    pub const IO: u16 = 16;
    /// [`super::PyroError::Recovery`]
    pub const RECOVERY: u16 = 17;
}

impl PyroError {
    /// This variant's stable numeric code (see [`codes`]).
    pub fn code(&self) -> u16 {
        match self {
            PyroError::UnknownColumn(_) => codes::UNKNOWN_COLUMN,
            PyroError::AmbiguousColumn(_) => codes::AMBIGUOUS_COLUMN,
            PyroError::UnknownTable(_) => codes::UNKNOWN_TABLE,
            PyroError::Storage(_) => codes::STORAGE,
            PyroError::PoolExhausted { .. } => codes::POOL_EXHAUSTED,
            PyroError::Exec(_) => codes::EXEC,
            PyroError::Plan(_) => codes::PLAN,
            PyroError::Sql(_) => codes::SQL,
            PyroError::Unsupported(_) => codes::UNSUPPORTED,
            PyroError::DuplicateIndex { .. } => codes::DUPLICATE_INDEX,
            PyroError::ParamBinding(_) => codes::PARAM_BINDING,
            PyroError::Wire(_) => codes::WIRE,
            PyroError::ServerOverloaded(_) => codes::SERVER_OVERLOADED,
            PyroError::BudgetExceeded(_) => codes::BUDGET_EXCEEDED,
            PyroError::ChecksumMismatch { .. } => codes::CHECKSUM_MISMATCH,
            PyroError::Io(_) => codes::IO,
            PyroError::Recovery(_) => codes::RECOVERY,
        }
    }

    /// The variant's payload without the display prefix — what a wire
    /// error frame carries next to [`PyroError::code`]. Structured variants
    /// flatten their fields with an ASCII unit separator;
    /// [`PyroError::from_code`] reverses the flattening exactly.
    pub fn detail(&self) -> String {
        match self {
            PyroError::UnknownColumn(s)
            | PyroError::AmbiguousColumn(s)
            | PyroError::UnknownTable(s)
            | PyroError::Storage(s)
            | PyroError::Exec(s)
            | PyroError::Plan(s)
            | PyroError::Sql(s)
            | PyroError::Unsupported(s)
            | PyroError::ParamBinding(s)
            | PyroError::Wire(s)
            | PyroError::ServerOverloaded(s)
            | PyroError::BudgetExceeded(s)
            | PyroError::Io(s)
            | PyroError::Recovery(s) => s.clone(),
            PyroError::PoolExhausted { capacity } => capacity.to_string(),
            PyroError::DuplicateIndex { table, index } => {
                format!("{table}{FIELD_SEP}{index}")
            }
            PyroError::ChecksumMismatch {
                page,
                stored,
                computed,
            } => format!("{page}{FIELD_SEP}{stored}{FIELD_SEP}{computed}"),
        }
    }

    /// Rebuilds the error a `(code, detail)` pair describes — the inverse
    /// of [`PyroError::code`] / [`PyroError::detail`], used by wire clients
    /// to surface a server-side error as the same typed variant the server
    /// produced. An unknown code (a newer server) degrades to
    /// [`PyroError::Wire`] carrying both.
    pub fn from_code(code: u16, detail: &str) -> PyroError {
        match code {
            codes::UNKNOWN_COLUMN => PyroError::UnknownColumn(detail.into()),
            codes::AMBIGUOUS_COLUMN => PyroError::AmbiguousColumn(detail.into()),
            codes::UNKNOWN_TABLE => PyroError::UnknownTable(detail.into()),
            codes::STORAGE => PyroError::Storage(detail.into()),
            codes::POOL_EXHAUSTED => PyroError::PoolExhausted {
                capacity: detail.parse().unwrap_or(0),
            },
            codes::EXEC => PyroError::Exec(detail.into()),
            codes::PLAN => PyroError::Plan(detail.into()),
            codes::SQL => PyroError::Sql(detail.into()),
            codes::UNSUPPORTED => PyroError::Unsupported(detail.into()),
            codes::DUPLICATE_INDEX => {
                let (table, index) = detail.split_once(FIELD_SEP).unwrap_or((detail, ""));
                PyroError::DuplicateIndex {
                    table: table.into(),
                    index: index.into(),
                }
            }
            codes::PARAM_BINDING => PyroError::ParamBinding(detail.into()),
            codes::WIRE => PyroError::Wire(detail.into()),
            codes::SERVER_OVERLOADED => PyroError::ServerOverloaded(detail.into()),
            codes::BUDGET_EXCEEDED => PyroError::BudgetExceeded(detail.into()),
            codes::CHECKSUM_MISMATCH => {
                let mut parts = detail.split(FIELD_SEP);
                let mut num = || parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
                PyroError::ChecksumMismatch {
                    page: num(),
                    stored: num() as u32,
                    computed: num() as u32,
                }
            }
            codes::IO => PyroError::Io(detail.into()),
            codes::RECOVERY => PyroError::Recovery(detail.into()),
            unknown => PyroError::Wire(format!("unknown error code {unknown}: {detail}")),
        }
    }
}

impl fmt::Display for PyroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyroError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            PyroError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            PyroError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            PyroError::Storage(m) => write!(f, "storage error: {m}"),
            PyroError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            PyroError::Exec(m) => write!(f, "execution error: {m}"),
            PyroError::Plan(m) => write!(f, "planning error: {m}"),
            PyroError::Sql(m) => write!(f, "SQL error: {m}"),
            PyroError::Unsupported(m) => write!(f, "unsupported SQL feature: {m}"),
            PyroError::DuplicateIndex { table, index } => {
                write!(f, "index {index} already exists on table {table}")
            }
            PyroError::ParamBinding(m) => write!(f, "parameter binding error: {m}"),
            PyroError::Wire(m) => write!(f, "wire protocol error: {m}"),
            PyroError::ServerOverloaded(m) => write!(f, "server overloaded: {m}"),
            PyroError::BudgetExceeded(m) => write!(f, "query budget exceeded: {m}"),
            PyroError::ChecksumMismatch {
                page,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch on page {page}: stored {stored:#010x}, \
                 computed {computed:#010x}"
            ),
            PyroError::Io(m) => write!(f, "I/O error: {m}"),
            PyroError::Recovery(m) => write!(f, "recovery error: {m}"),
        }
    }
}

impl std::error::Error for PyroError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar per variant — extend when adding a variant (the
    /// uniqueness and round-trip tests iterate this list).
    fn exemplars() -> Vec<PyroError> {
        vec![
            PyroError::UnknownColumn("x".into()),
            PyroError::AmbiguousColumn("partkey".into()),
            PyroError::UnknownTable("nope".into()),
            PyroError::Storage("page 9 out of range".into()),
            PyroError::PoolExhausted { capacity: 8 },
            PyroError::Exec("schema mismatch".into()),
            PyroError::Plan("no plan found".into()),
            PyroError::Sql("expected FROM at offset 12".into()),
            PyroError::Unsupported("ORDER BY ... DESC".into()),
            PyroError::DuplicateIndex {
                table: "lineitem".into(),
                index: "l_suppkey_cov".into(),
            },
            PyroError::ParamBinding("statement takes 1 parameter(s), 0 bound".into()),
            PyroError::Wire("unknown opcode 0x7f".into()),
            PyroError::ServerOverloaded("2 running, 4 queued".into()),
            PyroError::BudgetExceeded("row budget 100 exceeded".into()),
            PyroError::ChecksumMismatch {
                page: 42,
                stored: 0xDEADBEEF,
                computed: 0x01020304,
            },
            PyroError::Io("pwrite data.pyro: No space left on device".into()),
            PyroError::Recovery("catalog root has bad magic".into()),
        ]
    }

    #[test]
    fn display_is_informative() {
        let e = PyroError::UnknownColumn("x".into());
        assert!(e.to_string().contains("unknown column"));
        let e = PyroError::Sql("expected FROM at offset 12".into());
        assert!(e.to_string().contains("offset 12"));
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<u16> = exemplars().iter().map(PyroError::code).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "two variants share an error code");
    }

    #[test]
    fn codes_are_stable() {
        // The wire contract: these exact numbers, forever. A failure here
        // means a renumbering that would break deployed clients.
        let expected: Vec<u16> = (1..=17).collect();
        let actual: Vec<u16> = exemplars().iter().map(PyroError::code).collect();
        assert_eq!(actual, expected);
        assert_eq!(codes::SERVER_OVERLOADED, 13);
        assert_eq!(codes::BUDGET_EXCEEDED, 14);
        assert_eq!(codes::WIRE, 12);
        assert_eq!(codes::CHECKSUM_MISMATCH, 15);
        assert_eq!(codes::IO, 16);
        assert_eq!(codes::RECOVERY, 17);
    }

    #[test]
    fn code_detail_round_trips_every_variant() {
        for e in exemplars() {
            let rebuilt = PyroError::from_code(e.code(), &e.detail());
            assert_eq!(rebuilt, e, "round trip lost information");
        }
    }

    #[test]
    fn unknown_code_degrades_to_wire_error() {
        let e = PyroError::from_code(9999, "future variant");
        assert_eq!(e.code(), codes::WIRE);
        assert!(e.to_string().contains("9999"));
    }
}
