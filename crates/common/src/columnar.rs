//! Columnar (structure-of-arrays) batch layout for the vectorized engine.
//!
//! A [`ColumnarBatch`] holds one [`ColumnVec`] per output column instead of a
//! `Vec<Tuple>` of boxed rows. Each column stores its cells in a typed,
//! fixed-width vector (`Vec<i64>` / `Vec<f64>` / an offset-indexed string
//! arena) plus a [`NullBitmap`], falling back to a `Vec<Value>` (`Mixed`)
//! representation only when a column genuinely holds more than one value
//! type. Batches carry an optional *selection vector* — a sorted list of
//! physical row indices that survive upstream filters — so filters refine
//! selections instead of materializing rows.
//!
//! Rows materialize back into [`Tuple`]s only at pipeline breakers (sorts,
//! aggregates, merge joins, exchanges) via [`ColumnarBatch::to_rows`]; the
//! converters are the seam that keeps the strict row/batch counter-parity
//! contract intact, because none of the columnar kernels charge metrics.

use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// A growable bitmap marking NULL cells; bit `i` set means row `i` is NULL.
///
/// Backed by `u64` words so null checks in kernel loops are a shift and a
/// mask. The bitmap tracks its own logical length independently of the word
/// vector, which matters exactly at word boundaries (lengths 63/64/65).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    words: Vec<u64>,
    len: usize,
    set_bits: usize,
}

impl NullBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` bits, all set (every row NULL).
    pub fn all_null(len: usize) -> Self {
        let mut b = Self::new();
        for _ in 0..len {
            b.push(true);
        }
        b
    }

    /// Appends one bit; `true` marks the new row as NULL.
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.set_bits += 1;
        }
        self.len += 1;
    }

    /// Returns whether row `i` is NULL.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Number of bits in the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when at least one row is NULL.
    #[inline]
    pub fn any(&self) -> bool {
        self.set_bits > 0
    }

    /// Number of NULL rows.
    pub fn count(&self) -> usize {
        self.set_bits
    }
}

/// An offset-indexed string arena: all cell bytes in one buffer, with
/// `offsets[i]..offsets[i+1]` delimiting cell `i`.
///
/// NULL cells occupy an empty range so offsets stay dense. Byte-wise
/// comparison of two cells equals `str` ordering (Rust's `str` `Ord` is
/// lexicographic over UTF-8 bytes), so kernels compare raw byte slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrArena {
    offsets: Vec<u32>,
    bytes: Vec<u8>,
}

impl Default for StrArena {
    fn default() -> Self {
        Self {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }
}

impl StrArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one string cell.
    pub fn push(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Appends one cell from raw UTF-8 bytes (caller guarantees validity;
    /// the page decoder has already validated them).
    pub fn push_bytes(&mut self, b: &[u8]) {
        self.bytes.extend_from_slice(b);
        let end = u32::try_from(self.bytes.len()).expect("string arena exceeds u32 offsets");
        self.offsets.push(end);
    }

    /// Returns the raw bytes of cell `i` (hot-loop comparisons).
    #[inline]
    pub fn bytes_at(&self, i: usize) -> &[u8] {
        let a = self.offsets[i] as usize;
        let b = self.offsets[i + 1] as usize;
        &self.bytes[a..b]
    }

    /// Returns cell `i` as `&str` (materialization path).
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        std::str::from_utf8(self.bytes_at(i)).expect("arena cells are pushed from valid UTF-8")
    }

    /// Number of cells in the arena.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` when the arena holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Typed cell storage for one column.
///
/// `Int`/`Double`/`Str` are the fixed-width fast paths (NULL cells hold a
/// placeholder and are masked by the column's [`NullBitmap`]); `Mixed` is the
/// escape hatch for columns that mix value types, storing plain [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-NULL cells are `Value::Int`.
    Int(Vec<i64>),
    /// All non-NULL cells are `Value::Double` (bit patterns preserved).
    Double(Vec<f64>),
    /// All non-NULL cells are `Value::Str`, stored in an arena.
    Str(StrArena),
    /// Heterogeneous column; cells stored as rows would store them.
    Mixed(Vec<Value>),
}

/// A borrowed view of one cell, mirroring [`Value`] without allocating.
#[derive(Debug, Clone, Copy)]
pub enum CellRef<'a> {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (bit pattern preserved).
    Double(f64),
    /// String slice borrowed from the arena or a `Value`.
    Str(&'a str),
}

impl<'a> CellRef<'a> {
    /// Materializes the cell into an owned [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            CellRef::Null => Value::Null,
            CellRef::Int(v) => Value::Int(v),
            CellRef::Double(v) => Value::Double(v),
            CellRef::Str(s) => Value::Str(s.to_string()),
        }
    }

    /// Borrows a cell view from a [`Value`].
    pub fn from_value(v: &'a Value) -> Self {
        match v {
            Value::Null => CellRef::Null,
            Value::Int(i) => CellRef::Int(*i),
            Value::Double(d) => CellRef::Double(*d),
            Value::Str(s) => CellRef::Str(s.as_str()),
        }
    }

    /// Returns `true` for [`CellRef::Null`].
    pub fn is_null(self) -> bool {
        matches!(self, CellRef::Null)
    }

    fn type_rank(self) -> u8 {
        match self {
            CellRef::Int(_) | CellRef::Double(_) => 0,
            CellRef::Str(_) => 1,
            CellRef::Null => 2,
        }
    }

    /// Total order identical to [`Value`]'s `Ord`: mixed numerics compare
    /// numerically, strings byte-wise, NULLs last.
    pub fn order(self, other: CellRef<'_>) -> std::cmp::Ordering {
        match (self, other) {
            (CellRef::Int(a), CellRef::Int(b)) => a.cmp(&b),
            (CellRef::Double(a), CellRef::Double(b)) => a.total_cmp(&b),
            (CellRef::Str(a), CellRef::Str(b)) => a.cmp(b),
            (CellRef::Int(a), CellRef::Double(b)) => (a as f64).total_cmp(&b),
            (CellRef::Double(a), CellRef::Int(b)) => a.total_cmp(&(b as f64)),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

/// One column of a [`ColumnarBatch`]: typed cell storage plus a null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    data: ColumnData,
    nulls: NullBitmap,
}

impl ColumnVec {
    /// Builds a column from storage and a bitmap of equal length.
    pub fn new(data: ColumnData, nulls: NullBitmap) -> Self {
        let c = Self { data, nulls };
        debug_assert_eq!(c.len(), c.nulls.len());
        c
    }

    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(a) => a.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// Returns `true` when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The typed cell storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.get(i)
    }

    /// Borrows cell `i` without allocating.
    #[inline]
    pub fn cell(&self, i: usize) -> CellRef<'_> {
        if self.nulls.get(i) {
            return CellRef::Null;
        }
        match &self.data {
            ColumnData::Int(v) => CellRef::Int(v[i]),
            ColumnData::Double(v) => CellRef::Double(v[i]),
            ColumnData::Str(a) => CellRef::Str(a.get(i)),
            ColumnData::Mixed(v) => CellRef::from_value(&v[i]),
        }
    }

    /// Materializes cell `i` into an owned [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        self.cell(i).to_value()
    }
}

/// Incremental builder for one [`ColumnVec`].
///
/// Starts untyped, adopts the representation of the first non-NULL value
/// pushed, and demotes itself to the `Mixed` representation if a later value
/// has a different type (rebuilding already-pushed cells exactly).
#[derive(Debug, Default)]
pub struct ColumnBuilder {
    rep: BuilderRep,
    nulls: NullBitmap,
    len: usize,
}

#[derive(Debug, Default)]
enum BuilderRep {
    /// Only NULLs pushed so far (or nothing).
    #[default]
    Untyped,
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(StrArena),
    Mixed(Vec<Value>),
}

impl ColumnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a NULL cell.
    pub fn push_null(&mut self) {
        match &mut self.rep {
            BuilderRep::Untyped => {}
            BuilderRep::Int(v) => v.push(0),
            BuilderRep::Double(v) => v.push(0.0),
            BuilderRep::Str(a) => a.push(""),
            BuilderRep::Mixed(v) => v.push(Value::Null),
        }
        self.nulls.push(true);
        self.len += 1;
    }

    /// Appends an integer cell.
    pub fn push_int(&mut self, x: i64) {
        match &mut self.rep {
            BuilderRep::Untyped => {
                let mut v = vec![0i64; self.len];
                v.push(x);
                self.rep = BuilderRep::Int(v);
            }
            BuilderRep::Int(v) => v.push(x),
            BuilderRep::Mixed(v) => v.push(Value::Int(x)),
            _ => {
                self.demote();
                self.push_int(x);
                return;
            }
        }
        self.nulls.push(false);
        self.len += 1;
    }

    /// Appends a double cell (bit pattern preserved).
    pub fn push_double(&mut self, x: f64) {
        match &mut self.rep {
            BuilderRep::Untyped => {
                let mut v = vec![0.0f64; self.len];
                v.push(x);
                self.rep = BuilderRep::Double(v);
            }
            BuilderRep::Double(v) => v.push(x),
            BuilderRep::Mixed(v) => v.push(Value::Double(x)),
            _ => {
                self.demote();
                self.push_double(x);
                return;
            }
        }
        self.nulls.push(false);
        self.len += 1;
    }

    /// Appends a string cell from raw UTF-8 bytes (already validated).
    pub fn push_str_bytes(&mut self, b: &[u8]) {
        match &mut self.rep {
            BuilderRep::Untyped => {
                let mut a = StrArena::new();
                for _ in 0..self.len {
                    a.push("");
                }
                a.push_bytes(b);
                self.rep = BuilderRep::Str(a);
            }
            BuilderRep::Str(a) => a.push_bytes(b),
            BuilderRep::Mixed(v) => v.push(Value::Str(
                std::str::from_utf8(b).expect("validated UTF-8").to_string(),
            )),
            _ => {
                self.demote();
                self.push_str_bytes(b);
                return;
            }
        }
        self.nulls.push(false);
        self.len += 1;
    }

    /// Appends a string cell.
    pub fn push_str(&mut self, s: &str) {
        self.push_str_bytes(s.as_bytes());
    }

    /// Appends a cell from a [`Value`].
    pub fn push_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int(x) => self.push_int(*x),
            Value::Double(x) => self.push_double(*x),
            Value::Str(s) => self.push_str(s),
        }
    }

    /// Appends a borrowed cell view.
    pub fn push_cell(&mut self, c: CellRef<'_>) {
        match c {
            CellRef::Null => self.push_null(),
            CellRef::Int(x) => self.push_int(x),
            CellRef::Double(x) => self.push_double(x),
            CellRef::Str(s) => self.push_str(s),
        }
    }

    /// Appends the rows of `col` selected by `sel` (all rows when `None`),
    /// using bulk typed copies whenever the representations line up.
    pub fn append_column(&mut self, col: &ColumnVec, sel: Option<&[u32]>) {
        if let Some(sel) = sel {
            for &i in sel {
                self.push_cell(col.cell(i as usize));
            }
            return;
        }
        let n = col.len();
        // Bulk fast path: matching (or adoptable) representation and no
        // NULLs on either side lets us memcpy the typed storage.
        if !col.nulls.any() {
            match (&mut self.rep, &col.data) {
                (BuilderRep::Int(dst), ColumnData::Int(src)) => {
                    dst.extend_from_slice(src);
                    self.bulk_valid(n);
                    return;
                }
                (BuilderRep::Double(dst), ColumnData::Double(src)) => {
                    dst.extend_from_slice(src);
                    self.bulk_valid(n);
                    return;
                }
                (BuilderRep::Untyped, ColumnData::Int(src)) if self.len == 0 => {
                    self.rep = BuilderRep::Int(src.clone());
                    self.bulk_valid(n);
                    return;
                }
                (BuilderRep::Untyped, ColumnData::Double(src)) if self.len == 0 => {
                    self.rep = BuilderRep::Double(src.clone());
                    self.bulk_valid(n);
                    return;
                }
                (BuilderRep::Untyped, ColumnData::Str(src)) if self.len == 0 => {
                    self.rep = BuilderRep::Str(src.clone());
                    self.bulk_valid(n);
                    return;
                }
                _ => {}
            }
        }
        for i in 0..n {
            self.push_cell(col.cell(i));
        }
    }

    fn bulk_valid(&mut self, n: usize) {
        for _ in 0..n {
            self.nulls.push(false);
        }
        self.len += n;
    }

    /// Rebuilds the current cells as `Mixed` after a type conflict.
    fn demote(&mut self) {
        let mut vals = Vec::with_capacity(self.len + 1);
        match &self.rep {
            BuilderRep::Untyped => vals.extend((0..self.len).map(|_| Value::Null)),
            BuilderRep::Int(v) => {
                for (i, x) in v.iter().enumerate() {
                    vals.push(if self.nulls.get(i) {
                        Value::Null
                    } else {
                        Value::Int(*x)
                    });
                }
            }
            BuilderRep::Double(v) => {
                for (i, x) in v.iter().enumerate() {
                    vals.push(if self.nulls.get(i) {
                        Value::Null
                    } else {
                        Value::Double(*x)
                    });
                }
            }
            BuilderRep::Str(a) => {
                for i in 0..a.len() {
                    vals.push(if self.nulls.get(i) {
                        Value::Null
                    } else {
                        Value::Str(a.get(i).to_string())
                    });
                }
            }
            BuilderRep::Mixed(_) => unreachable!("demote from Mixed"),
        }
        self.rep = BuilderRep::Mixed(vals);
    }

    /// Finishes the builder into an immutable column. An all-NULL (or
    /// empty) column finishes with integer storage — the bitmap masks
    /// every placeholder.
    pub fn finish(self) -> ColumnVec {
        let data = match self.rep {
            BuilderRep::Untyped => ColumnData::Int(vec![0; self.len]),
            BuilderRep::Int(v) => ColumnData::Int(v),
            BuilderRep::Double(v) => ColumnData::Double(v),
            BuilderRep::Str(a) => ColumnData::Str(a),
            BuilderRep::Mixed(v) => ColumnData::Mixed(v),
        };
        ColumnVec::new(data, self.nulls)
    }
}

/// A batch of rows in columnar layout, with an optional selection vector.
///
/// `sel` (when present) lists the physical row indices — strictly
/// ascending — that are logically part of the batch; filters refine it
/// without touching column storage. Cells at unselected indices are real
/// decoded values that simply no longer participate. `to_rows` and every
/// consumer iterate selected rows in ascending index order, which is what
/// keeps row/batch emission order identical.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    columns: Vec<Arc<ColumnVec>>,
    rows: usize,
    sel: Option<Vec<u32>>,
}

impl ColumnarBatch {
    /// Builds a batch from finished columns (all of physical length `rows`).
    pub fn from_columns(columns: Vec<Arc<ColumnVec>>, rows: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Self {
            columns,
            rows,
            sel: None,
        }
    }

    /// Builds a batch by finishing one builder per column.
    pub fn from_builders(builders: Vec<ColumnBuilder>) -> Self {
        let rows = builders.first().map_or(0, ColumnBuilder::len);
        let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
        Self::from_columns(columns, rows)
    }

    /// Converts row-oriented tuples into a columnar batch (the seam shim
    /// used by operators without a native columnar path).
    pub fn from_rows(rows: &[Tuple]) -> Self {
        let arity = rows.first().map_or(0, Tuple::arity);
        let mut builders: Vec<ColumnBuilder> = (0..arity).map(|_| ColumnBuilder::new()).collect();
        for t in rows {
            debug_assert_eq!(t.arity(), arity);
            for (c, v) in t.values().iter().enumerate() {
                builders[c].push_value(v);
            }
        }
        let mut batch = Self::from_builders(builders);
        batch.rows = rows.len();
        batch
    }

    /// Materializes the selected rows back into tuples, in ascending
    /// physical-row order.
    pub fn to_rows(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.len());
        match &self.sel {
            Some(sel) => {
                for &i in sel {
                    out.push(self.row_at(i as usize));
                }
            }
            None => {
                for i in 0..self.rows {
                    out.push(self.row_at(i));
                }
            }
        }
        out
    }

    /// Materializes one physical row.
    pub fn row_at(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value_at(i)).collect())
    }

    /// Number of *selected* (logical) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.rows,
        }
    }

    /// Returns `true` when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical rows in column storage.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column at position `i`.
    pub fn column(&self, i: usize) -> &Arc<ColumnVec> {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.columns
    }

    /// The selection vector, if any (`None` means all rows selected).
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Materializes the selection as an owned index vector (identity when
    /// no selection is present).
    pub fn sel_vec(&self) -> Vec<u32> {
        match &self.sel {
            Some(sel) => sel.clone(),
            None => (0..self.rows as u32).collect(),
        }
    }

    /// Replaces the selection vector (indices must be ascending and within
    /// the physical row count).
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(sel.last().is_none_or(|&i| (i as usize) < self.rows));
        self.sel = Some(sel);
    }

    /// Replaces this batch's columns, keeping the physical row count and
    /// selection (the Project kernel's column-shuffle path).
    pub fn with_columns(&self, columns: Vec<Arc<ColumnVec>>) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == self.rows));
        Self {
            columns,
            rows: self.rows,
            sel: self.sel.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rows: Vec<Tuple>) {
        let batch = ColumnarBatch::from_rows(&rows);
        assert_eq!(batch.len(), rows.len());
        let back = batch.to_rows();
        assert_eq!(rows, back);
    }

    #[test]
    fn round_trip_all_value_types() {
        round_trip(vec![
            Tuple::new(vec![
                Value::Int(42),
                Value::Double(1.5),
                Value::Str("hello".into()),
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(-7),
                Value::Double(-0.0),
                Value::Str(String::new()),
                Value::Int(9),
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Str("mixed".into()),
            ]),
        ]);
    }

    #[test]
    fn round_trip_nan_bit_patterns() {
        // Two distinct NaN payloads plus negative zero: equality on Double
        // is bit-pattern based, so the round trip must preserve bits.
        let quiet = f64::from_bits(0x7ff8_0000_0000_0001);
        let negative = f64::from_bits(0xfff8_0000_0000_0002);
        let rows = vec![
            Tuple::new(vec![Value::Double(quiet)]),
            Tuple::new(vec![Value::Double(negative)]),
            Tuple::new(vec![Value::Double(-0.0)]),
            Tuple::new(vec![Value::Double(f64::INFINITY)]),
        ];
        let batch = ColumnarBatch::from_rows(&rows);
        let back = batch.to_rows();
        for (a, b) in rows.iter().zip(&back) {
            let (Value::Double(x), Value::Double(y)) = (a.get(0), b.get(0)) else {
                panic!("expected doubles");
            };
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn round_trip_empty_strings_and_nulls_distinct() {
        // Empty string and NULL must not collapse into each other even
        // though both occupy an empty arena range.
        round_trip(vec![
            Tuple::new(vec![Value::Str(String::new())]),
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Str("x".into())]),
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Str(String::new())]),
        ]);
    }

    #[test]
    fn null_bitmap_word_boundaries() {
        for n in [1usize, 63, 64, 65, 127, 128, 129, 200] {
            let mut b = NullBitmap::new();
            for i in 0..n {
                b.push(i % 3 == 0);
            }
            assert_eq!(b.len(), n);
            for i in 0..n {
                assert_eq!(b.get(i), i % 3 == 0, "bit {i} of {n}");
            }
            assert_eq!(b.count(), n.div_ceil(3));
            assert!(b.any());
            // Round-trip a whole column at the same lengths: NULL at every
            // third row, Int elsewhere.
            let rows: Vec<Tuple> = (0..n)
                .map(|i| {
                    Tuple::new(vec![if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i as i64)
                    }])
                })
                .collect();
            round_trip(rows);
        }
    }

    #[test]
    fn builder_demotes_to_mixed_on_type_conflict() {
        let mut b = ColumnBuilder::new();
        b.push_null();
        b.push_int(5);
        b.push_double(2.5);
        b.push_str("s");
        let col = b.finish();
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        assert_eq!(col.value_at(0), Value::Null);
        assert_eq!(col.value_at(1), Value::Int(5));
        assert_eq!(col.value_at(2), Value::Double(2.5));
        assert_eq!(col.value_at(3), Value::Str("s".into()));
    }

    #[test]
    fn all_null_column_finishes_typed_and_masked() {
        let mut b = ColumnBuilder::new();
        for _ in 0..5 {
            b.push_null();
        }
        let col = b.finish();
        assert_eq!(col.len(), 5);
        for i in 0..5 {
            assert!(col.is_null(i));
            assert_eq!(col.value_at(i), Value::Null);
        }
    }

    #[test]
    fn selection_vector_drives_to_rows() {
        let rows: Vec<Tuple> = (0..10)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Str(format!("r{i}"))]))
            .collect();
        let mut batch = ColumnarBatch::from_rows(&rows);
        batch.set_sel(vec![1, 4, 9]);
        assert_eq!(batch.len(), 3);
        assert_eq!(
            batch.to_rows(),
            vec![rows[1].clone(), rows[4].clone(), rows[9].clone()]
        );
    }

    #[test]
    fn append_column_bulk_and_selected() {
        let rows: Vec<Tuple> = (0..100).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let batch = ColumnarBatch::from_rows(&rows);
        let mut b = ColumnBuilder::new();
        b.append_column(batch.column(0), None);
        b.append_column(batch.column(0), Some(&[0, 50, 99]));
        let col = b.finish();
        assert_eq!(col.len(), 103);
        assert_eq!(col.value_at(100), Value::Int(0));
        assert_eq!(col.value_at(101), Value::Int(50));
        assert_eq!(col.value_at(102), Value::Int(99));
    }

    #[test]
    fn cell_order_matches_value_ord() {
        let vals = [
            Value::Null,
            Value::Int(-3),
            Value::Int(2),
            Value::Double(2.0),
            Value::Double(f64::NAN),
            Value::Str(String::new()),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(
                    CellRef::from_value(a).order(CellRef::from_value(b)),
                    a.cmp(b),
                    "order mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }
}
