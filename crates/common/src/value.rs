//! The scalar value model.
//!
//! PYRO is a sort-order research engine, so the one non-negotiable property
//! of [`Value`] is a *total* order: external sorting, merge joins and
//! replacement selection all rely on `Ord`. `Null` sorts **last** (like
//! PostgreSQL's default for ascending order — and required so a merge full
//! outer join can emit NULL-padded rows at the end of the stream without
//! breaking its output-order guarantee), doubles are compared by
//! `total_cmp`, and cross-type comparisons fall back to a fixed type rank so
//! a heterogeneous heap can never panic.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed scalar stored in a [`crate::Tuple`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. Sorts after every non-null value (NULLS LAST).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float, totally ordered via `f64::total_cmp`.
    Double(f64),
    /// Variable-length UTF-8 string.
    Str(String),
}

impl Value {
    /// Type rank used to order values of different types
    /// (Int/Double < Str < Null).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) | Value::Double(_) => 0,
            Value::Str(_) => 1,
            Value::Null => 2,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers, if numeric.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The [`crate::DataType`] this value inhabits, or `None` for SQL NULL
    /// (which inhabits every type).
    pub fn data_type(&self) -> Option<crate::DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(crate::DataType::Int),
            Value::Double(_) => Some(crate::DataType::Double),
            Value::Str(_) => Some(crate::DataType::Str),
        }
    }

    /// True iff this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// In-memory footprint estimate in bytes, used for sort-memory budgeting.
    ///
    /// The numbers are deliberately simple (tag + payload) — the paper's cost
    /// model works in average tuple sizes, not exact allocator bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 9,
            Value::Double(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Arithmetic addition with SQL NULL propagation; numeric types widen to
    /// `Double` when mixed.
    pub fn add(&self, other: &Value) -> Value {
        Value::numeric_binop(self, other, |a, b| a + b, |a, b| a.wrapping_add(b))
    }

    /// Arithmetic subtraction with NULL propagation.
    pub fn sub(&self, other: &Value) -> Value {
        Value::numeric_binop(self, other, |a, b| a - b, |a, b| a.wrapping_sub(b))
    }

    /// Arithmetic multiplication with NULL propagation.
    pub fn mul(&self, other: &Value) -> Value {
        Value::numeric_binop(self, other, |a, b| a * b, |a, b| a.wrapping_mul(b))
    }

    fn numeric_binop(
        a: &Value,
        b: &Value,
        f_f: impl Fn(f64, f64) -> f64,
        f_i: impl Fn(i64, i64) -> i64,
    ) -> Value {
        match (a, b) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(x), Value::Int(y)) => Value::Int(f_i(*x, *y)),
            _ => match (a.as_double(), b.as_double()) {
                (Some(x), Some(y)) => Value::Double(f_f(x, y)),
                _ => Value::Null,
            },
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Mixed numerics compare numerically so Int(2) == sort-adjacent to Double(2.0).
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Double(v) => {
                // Hash the bit pattern; consistent with total_cmp equality.
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_last() {
        assert!(Value::Null > Value::Int(i64::MAX));
        assert!(Value::Null > Value::Str("zzz".into()));
        assert!(Value::Null > Value::Double(f64::INFINITY));
        assert_eq!(Value::Null.cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn int_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5).cmp(&Value::Int(5)), Ordering::Equal);
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Value::Int(1) < Value::Double(1.5));
        assert!(Value::Double(0.5) < Value::Int(1));
    }

    #[test]
    fn string_ordering() {
        assert!(Value::Str("abc".into()) < Value::Str("abd".into()));
    }

    #[test]
    fn numbers_sort_before_strings() {
        assert!(Value::Int(999) < Value::Str("0".into()));
    }

    #[test]
    fn double_total_order_handles_nan() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Double(f64::INFINITY) < nan);
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Value::Int(2).mul(&Value::Int(3)), Value::Int(6));
        assert_eq!(Value::Int(2).add(&Value::Double(0.5)), Value::Double(2.5));
        assert_eq!(Value::Null.mul(&Value::Int(3)), Value::Null);
        assert_eq!(Value::Int(7).sub(&Value::Int(2)), Value::Int(5));
    }

    #[test]
    fn byte_size_accounts_for_strings() {
        assert_eq!(Value::Str("abcd".into()).byte_size(), 1 + 4 + 4);
        assert_eq!(Value::Int(0).byte_size(), 9);
        assert_eq!(Value::Null.byte_size(), 1);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Int(3).as_double(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
    }
}
