//! # pyro-common
//!
//! Shared foundation types for the PYRO order-optimization engine — the Rust
//! reproduction of *"Reducing Order Enforcement Cost in Complex Query Plans"*
//! (Guravannavar, Sudarshan, Diwan, Sobhan Babu; ICDE 2007).
//!
//! This crate deliberately contains no I/O and no policy: just the value
//! model ([`Value`]), row model ([`Tuple`]), schema model ([`Schema`]) and the
//! error type ([`PyroError`]) every other crate builds on.

#![deny(missing_docs)]

pub mod columnar;
pub mod error;
pub mod schema;
pub mod tuple;
pub mod value;

pub use columnar::{CellRef, ColumnBuilder, ColumnData, ColumnVec, ColumnarBatch, NullBitmap};
pub use error::{PyroError, Result};
pub use schema::{Column, DataType, Schema};
pub use tuple::{KeySpec, Tuple};
pub use value::Value;
