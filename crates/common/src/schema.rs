//! Relation schemas.
//!
//! Columns carry *qualified* names (`"lineitem.l_suppkey"` or plain
//! `"l_suppkey"`). The optimizer reasons about sort orders as sequences of
//! these names, so [`Schema::index_of`] accepts both the exact name and an
//! unambiguous suffix match — mirroring how SQL resolves `partkey` against
//! `ps_partkey` vs `l_partkey` only when unambiguous.

use crate::error::{PyroError, Result};
use std::fmt;

/// Scalar column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "VARCHAR"),
        }
    }
}

/// A named, typed column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Qualified column name; unique within a [`Schema`].
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing one relation or operator output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from columns; names must be unique.
    pub fn new(columns: Vec<Column>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate column names in schema"
        );
        Schema { columns }
    }

    /// Shorthand: builds a schema of all-`Int` columns (used by many tests).
    pub fn ints(names: &[&str]) -> Self {
        Schema::new(
            names
                .iter()
                .map(|n| Column::new(*n, DataType::Int))
                .collect(),
        )
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolves a column name to its position.
    ///
    /// Exact qualified match wins; otherwise an unambiguous suffix match on
    /// the part after the last `.` is accepted (`"make"` resolves
    /// `"catalog1.make"` when no other column ends in `.make`).
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.name.rsplit('.').next() == Some(name))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(PyroError::UnknownColumn(name.to_string())),
            _ => Err(PyroError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Resolves many names at once.
    pub fn indices_of(&self, names: &[impl AsRef<str>]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n.as_ref())).collect()
    }

    /// Column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// True iff a column with this name (or unambiguous suffix) exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_ok()
    }

    /// Concatenates two schemas (join output). Names must stay unique.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Schema of a projection keeping `indices` in the given order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Prefixes every column name with `qualifier.` (used when scanning a
    /// table under an alias). Already-qualified names are re-qualified on the
    /// bare part.
    pub fn qualify(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| {
                    let bare = c.name.rsplit('.').next().unwrap_or(&c.name);
                    Column::new(format!("{qualifier}.{bare}"), c.ty)
                })
                .collect(),
        )
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("lineitem.l_suppkey", DataType::Int),
            Column::new("lineitem.l_partkey", DataType::Int),
            Column::new("lineitem.l_quantity", DataType::Double),
        ])
    }

    #[test]
    fn exact_lookup() {
        assert_eq!(sample().index_of("lineitem.l_partkey").unwrap(), 1);
    }

    #[test]
    fn suffix_lookup() {
        assert_eq!(sample().index_of("l_quantity").unwrap(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(matches!(
            sample().index_of("nope"),
            Err(PyroError::UnknownColumn(_))
        ));
    }

    #[test]
    fn ambiguous_suffix_errors() {
        let s = Schema::new(vec![
            Column::new("a.k", DataType::Int),
            Column::new("b.k", DataType::Int),
        ]);
        assert!(matches!(
            s.index_of("k"),
            Err(PyroError::AmbiguousColumn(_))
        ));
        // exact qualified lookups still work
        assert_eq!(s.index_of("a.k").unwrap(), 0);
    }

    #[test]
    fn join_concatenates() {
        let l = Schema::ints(&["a", "b"]);
        let r = Schema::ints(&["c"]);
        let j = l.join(&r);
        assert_eq!(j.len(), 3);
        assert_eq!(j.index_of("c").unwrap(), 2);
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["lineitem.l_quantity", "lineitem.l_suppkey"]);
    }

    #[test]
    fn qualify_rewrites_prefix() {
        let s = sample().qualify("t1");
        assert_eq!(s.index_of("t1.l_suppkey").unwrap(), 0);
    }

    #[test]
    fn indices_of_bulk() {
        let s = sample();
        assert_eq!(
            s.indices_of(&["l_partkey", "l_suppkey"]).unwrap(),
            vec![1, 0]
        );
    }
}
