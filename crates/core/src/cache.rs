//! A bounded, thread-safe LRU cache of optimized plans.
//!
//! The paper's strategies spend real planner effort — `PYRO-E` enumerates
//! up to `n!` candidate orders, `PYRO-O` runs a favorable-order search plus
//! refinement — which only pays off if it is *amortized*: the same query
//! shapes arrive over and over in a serving workload, and re-running the
//! whole parse → lower → optimize pipeline per call re-pays the cost each
//! time. [`PlanCache`] converts that per-call cost into a once-per-shape
//! cost.
//!
//! **Keying rule.** An entry is addressed by [`PlanKey`]: the normalized
//! SQL text (`pyro_sql::normalize` — whitespace/keyword-case insensitive,
//! literal-sensitive), a fingerprint hash of every plan-affecting session
//! knob (strategy, hash-operator toggle, cost-parameter overrides, sort
//! memory budget, batch size, worker count, buffer-pool capacity), and the
//! catalog's schema [generation counter](pyro_catalog::Catalog::generation).
//! Any knob flip or catalog mutation therefore changes the key and misses —
//! a stale plan can never be served. Stale-generation entries age out via
//! LRU eviction rather than eager sweeps.
//!
//! **Serving-path design.** Entries are `Arc<CachedStatement>`, so the work
//! done *inside* the mutex is a hash lookup, two `BTreeMap` recency updates
//! and one `Arc` clone — never a deep clone of the plan tree or the
//! statement's parameter table. Recency is a monotonic tick ordered in a
//! `BTreeMap<tick, key>` side index: eviction pops the smallest tick in
//! `O(log n)` instead of scanning every entry. One cache serves every
//! thread sharing a `Session`.

use crate::optimizer::OptimizedPlan;
use pyro_common::DataType;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, PoisonError};

/// A cached statement: the optimized physical plan and what the frontend
/// learned about its `?` placeholders (one expected-type slot per
/// placeholder; see `pyro_sql::ParamInfo`).
#[derive(Debug, Clone)]
pub struct CachedStatement {
    /// The optimized plan (cheap to clone: the tree is shared via `Arc`).
    pub plan: OptimizedPlan,
    /// Expected type per `?` placeholder, indexed by placeholder number;
    /// `None` where the query does not pin a type. Empty for literal SQL.
    pub param_types: Vec<Option<DataType>>,
}

/// Cache address of one statement under one planning configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Normalized SQL text.
    pub sql: String,
    /// Hash over every plan-affecting session knob.
    pub fingerprint: u64,
    /// Catalog schema generation the plan was optimized against.
    pub generation: u64,
}

/// Monotonic cache counters plus the current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to optimize from scratch.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

#[derive(Debug)]
struct Entry {
    stmt: Arc<CachedStatement>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<PlanKey, Entry>,
    /// Recency index: `last_used` tick → key. Ticks are unique (the
    /// counter is bumped under the same lock), so this is a faithful LRU
    /// order; the first entry is always the eviction victim.
    order: BTreeMap<u64, PlanKey>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    /// Moves `key`'s recency to a fresh tick, keeping `order` in sync.
    fn touch(&mut self, key: &PlanKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.map.get_mut(key) {
            self.order.remove(&entry.last_used);
            entry.last_used = tick;
            self.order.insert(tick, key.clone());
        }
    }
}

/// The bounded LRU plan cache; see the [module docs](self).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (floor 1 — a zero-entry
    /// cache is expressed by not constructing one at all).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Nothing panics while holding the lock except allocation failure;
        // recover the data rather than poisoning every later query.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a miss.
    /// The returned handle shares the cached statement — no deep clone
    /// happens inside or outside the lock.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<CachedStatement>> {
        let mut inner = self.lock();
        if inner.map.contains_key(key) {
            inner.touch(key);
            inner.hits += 1;
            inner.map.get(key).map(|e| Arc::clone(&e.stmt))
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// one first when the cache is full.
    pub fn insert(&self, key: PlanKey, stmt: Arc<CachedStatement>) {
        let mut inner = self.lock();
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some((tick, victim)) = inner.order.pop_first() {
                debug_assert_eq!(inner.map.get(&victim).map(|e| e.last_used), Some(tick));
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key.clone(),
            Entry {
                stmt,
                last_used: tick,
            },
        ) {
            inner.order.remove(&old.last_used);
        }
        inner.order.insert(tick, key);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept — they are monotonic totals).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysNode, PhysOp};
    use crate::strategy::Strategy;
    use pyro_common::Schema;
    use pyro_ordering::SortOrder;
    use std::sync::Arc;

    fn stmt(cost: f64) -> Arc<CachedStatement> {
        Arc::new(CachedStatement {
            plan: OptimizedPlan {
                root: Arc::new(PhysNode {
                    op: PhysOp::TableScan {
                        table: "t".into(),
                        alias: "t".into(),
                    },
                    children: vec![],
                    schema: Schema::ints(&["t.a"]),
                    out_order: SortOrder::empty(),
                    cost,
                    rows: 1.0,
                    logical: 0,
                }),
                strategy: Strategy::pyro_o(),
                ordered_output: false,
            },
            param_types: Vec::new(),
        })
    }

    fn key(sql: &str, fp: u64, generation: u64) -> PlanKey {
        PlanKey {
            sql: sql.into(),
            fingerprint: fp,
            generation,
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = PlanCache::new(4);
        assert!(cache.lookup(&key("q", 1, 0)).is_none());
        cache.insert(key("q", 1, 0), stmt(10.0));
        let hit = cache.lookup(&key("q", 1, 0)).expect("hit");
        assert_eq!(hit.plan.cost(), 10.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
        assert_eq!(s.capacity, 4);
    }

    #[test]
    fn lookup_shares_not_clones() {
        let cache = PlanCache::new(4);
        cache.insert(key("q", 1, 0), stmt(10.0));
        let a = cache.lookup(&key("q", 1, 0)).expect("hit");
        let b = cache.lookup(&key("q", 1, 0)).expect("hit");
        assert!(Arc::ptr_eq(&a, &b), "hits must share one statement");
    }

    #[test]
    fn key_components_all_discriminate() {
        let cache = PlanCache::new(8);
        cache.insert(key("q", 1, 0), stmt(1.0));
        assert!(cache.lookup(&key("q2", 1, 0)).is_none(), "sql text");
        assert!(cache.lookup(&key("q", 2, 0)).is_none(), "knob fingerprint");
        assert!(
            cache.lookup(&key("q", 1, 1)).is_none(),
            "catalog generation"
        );
        assert!(cache.lookup(&key("q", 1, 0)).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert(key("a", 0, 0), stmt(1.0));
        cache.insert(key("b", 0, 0), stmt(2.0));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup(&key("a", 0, 0)).is_some());
        cache.insert(key("c", 0, 0), stmt(3.0));
        assert!(cache.lookup(&key("b", 0, 0)).is_none(), "b evicted");
        assert!(cache.lookup(&key("a", 0, 0)).is_some());
        assert!(cache.lookup(&key("c", 0, 0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_order_tracks_many_touches() {
        // Stress the order index: interleaved inserts and touches must
        // keep map and BTreeMap consistent (every eviction removes exactly
        // the oldest untouched key).
        let cache = PlanCache::new(4);
        for i in 0..4 {
            cache.insert(key(&format!("q{i}"), 0, 0), stmt(i as f64));
        }
        // Touch q0 and q2; q1 then q3 become the victims.
        assert!(cache.lookup(&key("q0", 0, 0)).is_some());
        assert!(cache.lookup(&key("q2", 0, 0)).is_some());
        cache.insert(key("q4", 0, 0), stmt(4.0));
        assert!(cache.lookup(&key("q1", 0, 0)).is_none(), "q1 was LRU");
        cache.insert(key("q5", 0, 0), stmt(5.0));
        assert!(cache.lookup(&key("q3", 0, 0)).is_none(), "q3 next");
        for live in ["q0", "q2", "q4", "q5"] {
            assert!(cache.lookup(&key(live, 0, 0)).is_some(), "{live} resident");
        }
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = PlanCache::new(1);
        cache.insert(key("a", 0, 0), stmt(1.0));
        cache.insert(key("a", 0, 0), stmt(2.0));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup(&key("a", 0, 0)).unwrap().plan.cost(), 2.0);
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = PlanCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(key("a", 0, 0), stmt(1.0));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(PlanCache::new(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let k = key(&format!("q{}", i % 8), t, 0);
                        if cache.lookup(&k).is_none() {
                            cache.insert(k, stmt(i as f64));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(s.hits > 0);
    }

    #[test]
    fn concurrent_eviction_pressure_stays_consistent() {
        // More distinct keys than capacity from several threads: the
        // order index and map must never desync (evictions would panic or
        // evict the wrong entry if they did).
        let cache = Arc::new(PlanCache::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = key(&format!("q{}", (i + t * 7) % 16), 0, 0);
                        if cache.lookup(&k).is_none() {
                            cache.insert(k, stmt(i as f64));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.entries <= 4);
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.evictions > 0);
    }
}
