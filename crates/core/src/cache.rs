//! A bounded, thread-safe LRU cache of optimized plans.
//!
//! The paper's strategies spend real planner effort — `PYRO-E` enumerates
//! up to `n!` candidate orders, `PYRO-O` runs a favorable-order search plus
//! refinement — which only pays off if it is *amortized*: the same query
//! shapes arrive over and over in a serving workload, and re-running the
//! whole parse → lower → optimize pipeline per call re-pays the cost each
//! time. [`PlanCache`] converts that per-call cost into a once-per-shape
//! cost.
//!
//! **Keying rule.** An entry is addressed by [`PlanKey`]: the normalized
//! SQL text (`pyro_sql::normalize` — whitespace/keyword-case insensitive,
//! literal-sensitive), a fingerprint hash of every plan-affecting session
//! knob (strategy, hash-operator toggle, cost-parameter overrides, sort
//! memory budget, batch size, worker count, columnar toggle, buffer-pool
//! capacity, plan-enumerator choice and join-enum threshold), and the
//! catalog's schema [generation counter](pyro_catalog::Catalog::generation).
//! Any knob flip or catalog mutation therefore changes the key and misses —
//! a stale plan can never be served. Stale-generation entries age out via
//! LRU eviction rather than eager sweeps.
//!
//! **Serving-path design.** Entries are `Arc<CachedStatement>`, so the work
//! done *inside* the mutex is a hash lookup, a few pointer swaps and one
//! `Arc` clone — never a deep clone of the plan tree or the statement's
//! parameter table. Recency is an intrusive doubly-linked list threaded
//! through a slab of nodes (`prev`/`next` are slab indices): a hit splices
//! its node to the front and eviction pops the tail, both `O(1)` with zero
//! allocation, so the lock hold time is flat no matter how many plans are
//! resident. One cache serves every thread sharing a `Session`.

use crate::optimizer::OptimizedPlan;
use pyro_common::DataType;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A cached statement: the optimized physical plan and what the frontend
/// learned about its `?` placeholders (one expected-type slot per
/// placeholder; see `pyro_sql::ParamInfo`).
#[derive(Debug, Clone)]
pub struct CachedStatement {
    /// The optimized plan (cheap to clone: the tree is shared via `Arc`).
    pub plan: OptimizedPlan,
    /// Expected type per `?` placeholder, indexed by placeholder number;
    /// `None` where the query does not pin a type. Empty for literal SQL.
    pub param_types: Vec<Option<DataType>>,
}

/// Cache address of one statement under one planning configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Normalized SQL text.
    pub sql: String,
    /// Hash over every plan-affecting session knob.
    pub fingerprint: u64,
    /// Catalog schema generation the plan was optimized against.
    pub generation: u64,
}

/// Monotonic cache counters plus the current occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to optimize from scratch.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

/// Sentinel slab index (list end / empty list).
const NIL: u32 = u32::MAX;

/// One resident plan: the payload plus its links in the recency list.
#[derive(Debug)]
struct Node {
    key: PlanKey,
    stmt: Arc<CachedStatement>,
    /// Toward the MRU end (`NIL` at the head).
    prev: u32,
    /// Toward the LRU end (`NIL` at the tail).
    next: u32,
}

#[derive(Debug)]
struct Inner {
    /// Key → slab slot of its node.
    map: HashMap<PlanKey, u32>,
    /// Node storage; `None` slots are free (tracked in `free`). The slab
    /// never exceeds `capacity` slots, so slot indices stay stable and
    /// reusable for the cache's whole life.
    slab: Vec<Option<Node>>,
    free: Vec<u32>,
    /// Most recently used node (`NIL` when empty).
    head: u32,
    /// Least recently used node — the eviction victim (`NIL` when empty).
    tail: u32,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl Inner {
    fn node(&self, slot: u32) -> &Node {
        self.slab[slot as usize].as_ref().expect("live slot")
    }

    fn node_mut(&mut self, slot: u32) -> &mut Node {
        self.slab[slot as usize].as_mut().expect("live slot")
    }

    /// Detaches `slot` from the recency list (links become dangling).
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = self.node(slot);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    /// Attaches `slot` at the MRU end.
    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let n = self.node_mut(slot);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Splices `slot` to the front of the recency list: two pointer swaps,
    /// no allocation, no ordering structure to rebalance.
    fn touch(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    /// Removes the LRU node and returns its slot to the free list.
    fn evict_tail(&mut self) {
        let victim = self.tail;
        if victim == NIL {
            return;
        }
        self.unlink(victim);
        let node = self.slab[victim as usize].take().expect("live slot");
        self.map.remove(&node.key);
        self.free.push(victim);
        self.evictions += 1;
    }

    /// Allocates a slab slot for a new node.
    fn alloc(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(node);
                slot
            }
            None => {
                self.slab.push(Some(node));
                (self.slab.len() - 1) as u32
            }
        }
    }
}

/// The bounded LRU plan cache; see the [module docs](self).
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (floor 1 — a zero-entry
    /// cache is expressed by not constructing one at all).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Nothing panics while holding the lock except allocation failure;
        // recover the data rather than poisoning every later query.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, counting a hit (and refreshing recency) or a miss.
    /// The returned handle shares the cached statement — no deep clone
    /// happens inside or outside the lock.
    pub fn lookup(&self, key: &PlanKey) -> Option<Arc<CachedStatement>> {
        let mut inner = self.lock();
        match inner.map.get(key).copied() {
            Some(slot) => {
                inner.touch(slot);
                inner.hits += 1;
                Some(Arc::clone(&inner.node(slot).stmt))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// one first when the cache is full. `O(1)` either way.
    pub fn insert(&self, key: PlanKey, stmt: Arc<CachedStatement>) {
        let mut inner = self.lock();
        if let Some(slot) = inner.map.get(&key).copied() {
            // Refresh in place: new payload, fresh recency, no eviction.
            inner.node_mut(slot).stmt = stmt;
            inner.touch(slot);
            return;
        }
        if inner.map.len() >= self.capacity {
            inner.evict_tail();
        }
        let slot = inner.alloc(Node {
            key: key.clone(),
            stmt,
            prev: NIL,
            next: NIL,
        });
        inner.map.insert(key, slot);
        inner.push_front(slot);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.lock();
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True iff no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept — they are monotonic totals).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.slab.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysNode, PhysOp};
    use crate::strategy::Strategy;
    use pyro_common::Schema;
    use pyro_ordering::SortOrder;
    use std::sync::Arc;

    fn stmt(cost: f64) -> Arc<CachedStatement> {
        Arc::new(CachedStatement {
            plan: OptimizedPlan {
                root: Arc::new(PhysNode {
                    op: PhysOp::TableScan {
                        table: "t".into(),
                        alias: "t".into(),
                    },
                    children: vec![],
                    schema: Schema::ints(&["t.a"]),
                    out_order: SortOrder::empty(),
                    cost,
                    rows: 1.0,
                    logical: 0,
                }),
                strategy: Strategy::pyro_o(),
                ordered_output: false,
                planning: crate::optimizer::PlanningInfo::default(),
            },
            param_types: Vec::new(),
        })
    }

    fn key(sql: &str, fp: u64, generation: u64) -> PlanKey {
        PlanKey {
            sql: sql.into(),
            fingerprint: fp,
            generation,
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = PlanCache::new(4);
        assert!(cache.lookup(&key("q", 1, 0)).is_none());
        cache.insert(key("q", 1, 0), stmt(10.0));
        let hit = cache.lookup(&key("q", 1, 0)).expect("hit");
        assert_eq!(hit.plan.cost(), 10.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 0, 1));
        assert_eq!(s.capacity, 4);
    }

    #[test]
    fn lookup_shares_not_clones() {
        let cache = PlanCache::new(4);
        cache.insert(key("q", 1, 0), stmt(10.0));
        let a = cache.lookup(&key("q", 1, 0)).expect("hit");
        let b = cache.lookup(&key("q", 1, 0)).expect("hit");
        assert!(Arc::ptr_eq(&a, &b), "hits must share one statement");
    }

    #[test]
    fn key_components_all_discriminate() {
        let cache = PlanCache::new(8);
        cache.insert(key("q", 1, 0), stmt(1.0));
        assert!(cache.lookup(&key("q2", 1, 0)).is_none(), "sql text");
        assert!(cache.lookup(&key("q", 2, 0)).is_none(), "knob fingerprint");
        assert!(
            cache.lookup(&key("q", 1, 1)).is_none(),
            "catalog generation"
        );
        assert!(cache.lookup(&key("q", 1, 0)).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.insert(key("a", 0, 0), stmt(1.0));
        cache.insert(key("b", 0, 0), stmt(2.0));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup(&key("a", 0, 0)).is_some());
        cache.insert(key("c", 0, 0), stmt(3.0));
        assert!(cache.lookup(&key("b", 0, 0)).is_none(), "b evicted");
        assert!(cache.lookup(&key("a", 0, 0)).is_some());
        assert!(cache.lookup(&key("c", 0, 0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_order_tracks_many_touches() {
        // Stress the order index: interleaved inserts and touches must
        // keep map and BTreeMap consistent (every eviction removes exactly
        // the oldest untouched key).
        let cache = PlanCache::new(4);
        for i in 0..4 {
            cache.insert(key(&format!("q{i}"), 0, 0), stmt(i as f64));
        }
        // Touch q0 and q2; q1 then q3 become the victims.
        assert!(cache.lookup(&key("q0", 0, 0)).is_some());
        assert!(cache.lookup(&key("q2", 0, 0)).is_some());
        cache.insert(key("q4", 0, 0), stmt(4.0));
        assert!(cache.lookup(&key("q1", 0, 0)).is_none(), "q1 was LRU");
        cache.insert(key("q5", 0, 0), stmt(5.0));
        assert!(cache.lookup(&key("q3", 0, 0)).is_none(), "q3 next");
        for live in ["q0", "q2", "q4", "q5"] {
            assert!(cache.lookup(&key(live, 0, 0)).is_some(), "{live} resident");
        }
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = PlanCache::new(1);
        cache.insert(key("a", 0, 0), stmt(1.0));
        cache.insert(key("a", 0, 0), stmt(2.0));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.lookup(&key("a", 0, 0)).unwrap().plan.cost(), 2.0);
    }

    /// Long insert churn far past capacity: slab slots must recycle (the
    /// node store never outgrows the capacity) and the survivor set must
    /// always be the most recent `capacity` keys.
    #[test]
    fn slot_reuse_under_churn() {
        let cache = PlanCache::new(3);
        for i in 0..100 {
            cache.insert(key(&format!("q{i}"), 0, 0), stmt(i as f64));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 97);
        for live in ["q97", "q98", "q99"] {
            assert!(cache.lookup(&key(live, 0, 0)).is_some(), "{live} resident");
        }
        assert!(cache.lookup(&key("q96", 0, 0)).is_none());
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = PlanCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(key("a", 0, 0), stmt(1.0));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(PlanCache::new(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let k = key(&format!("q{}", i % 8), t, 0);
                        if cache.lookup(&k).is_none() {
                            cache.insert(k, stmt(i as f64));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(s.hits > 0);
    }

    #[test]
    fn concurrent_eviction_pressure_stays_consistent() {
        // More distinct keys than capacity from several threads: the
        // order index and map must never desync (evictions would panic or
        // evict the wrong entry if they did).
        let cache = Arc::new(PlanCache::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = key(&format!("q{}", (i + t * 7) % 16), 0, 0);
                        if cache.lookup(&k).is_none() {
                            cache.insert(k, stmt(i as f64));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.entries <= 4);
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.evictions > 0);
    }
}
