//! # pyro-core — the PYRO optimizer
//!
//! A Volcano-style cost-based optimizer implementing the contributions of
//! *"Reducing Order Enforcement Cost in Complex Query Plans"*:
//!
//! * **Partial sort enforcers** (§3.2): when a physical alternative
//!   guarantees a strict prefix `o' < o` of the required order, the
//!   optimizer inserts a partial-sort enforcer costed with
//!   `coe(e, o1, o2) = D(e, attrs(o2 ∧ o1)) · coe(σ(e), ε, o2 − o2∧o1)`.
//! * **Favorable orders** (§5.1): `afm(e)`, the approximate minimal
//!   favorable-order set, computed bottom-up from clustering orders,
//!   covering indices and operator propagation rules.
//! * **Interesting-order strategies** (§5.2.1, §6.2): the five contenders of
//!   the paper's Experiment B3 — `PYRO` (arbitrary), `PYRO-O−` (favorable,
//!   exact-match only), `PYRO-P` (the PostgreSQL heuristic), `PYRO-O`
//!   (favorable + partial sorts) and `PYRO-E` (exhaustive) — as one
//!   pluggable [`Strategy`].
//! * **Plan refinement** (§5.2.2 / §4.2): a post-optimization phase that
//!   reworks the *free attributes* of adjacent merge joins with the
//!   2-approximate tree algorithm so they share sort-order prefixes.
//! * **Scalable enumeration** (beyond the paper): a memo-based bottom-up
//!   enumerator over the same goal space ([`memo`]), an explicit join
//!   graph ([`joingraph`]), and a cardinality-free big-join re-shape
//!   gated by the `join_enum_threshold` knob — see `DESIGN.md` §13.
//!
//! Entry point: [`Optimizer`]. Logical plans are built with
//! [`logical::LogicalPlan`] (or via `pyro-sql`), optimized into a
//! [`plan::PhysNode`] tree, and compiled into runnable `pyro-exec` pipelines
//! with [`compile::compile`].

pub mod cache;
pub mod compile;
pub mod cost;
pub mod equiv;
pub mod favorable;
pub mod joingraph;
pub mod logical;
pub mod memo;
pub mod optimizer;
mod parallel;
pub mod plan;
pub mod refine;
mod seek;
pub mod stats;
pub mod strategy;

pub use cache::{CachedStatement, PlanCache, PlanCacheStats, PlanKey};
pub use cost::SearchStats;
pub use logical::{AggSpec, JoinPair, LogicalPlan, NExpr, NodeId, ProjItem};
pub use memo::EnumStrategy;
pub use optimizer::{OptimizedPlan, Optimizer, PlanningInfo};
pub use plan::{PhysNode, PhysOp};
pub use strategy::Strategy;
