//! Favorable orders — the `afm` (approximate minimal favorable-order set)
//! computation of §5.1.2.
//!
//! `afm(e)` approximates "the sort orders obtainable on `e`'s result at less
//! than full-sort cost": clustering orders, covering-index orders, and their
//! propagation through selections, projections, joins and grouping. One
//! bottom-up pass; the only non-trivial operation is the
//! set-restricted longest-prefix `o ∧ s`, exactly as the paper analyzes.

use crate::equiv::EquivMap;
use crate::logical::{LogicalOp, LogicalPlan, NodeId};
use pyro_catalog::Catalog;
use pyro_common::Result;
use pyro_ordering::{AttrSet, SortOrder};
use std::collections::HashMap;

/// Cap on the afm set size per node; the paper observes real sets are tiny
/// (`m ≤ 2` for base relations), the cap only guards pathological schemas.
const AFM_CAP: usize = 8;

/// Computes `afm` for every node. Orders use qualified output-column names
/// of the respective node; at joins, prefixes restricted to the join
/// attribute set are expressed in equivalence-class representative names.
pub fn compute_afm(
    plan: &LogicalPlan,
    catalog: &Catalog,
    equiv: &EquivMap,
    referenced_by_alias: &HashMap<String, AttrSet>,
) -> Result<Vec<Vec<SortOrder>>> {
    let mut afm: Vec<Vec<SortOrder>> = vec![Vec::new(); plan.len()];
    for id in 0..plan.len() {
        afm[id] = node_afm(plan, id, catalog, equiv, referenced_by_alias, &afm)?;
    }
    Ok(afm)
}

/// `o ∧ s` under equivalence: the longest prefix of `o` whose attributes'
/// representatives belong to `s` (which must itself hold representative
/// names); the result is expressed in representative names.
pub fn lcp_with_set_equiv(o: &SortOrder, s: &AttrSet, equiv: &EquivMap) -> SortOrder {
    let mut out = Vec::new();
    for a in o.attrs() {
        let rep = equiv.rep(a);
        if s.contains(&rep) && !out.contains(&rep) {
            out.push(rep);
        } else {
            break;
        }
    }
    SortOrder::new(out)
}

fn dedup_capped(mut orders: Vec<SortOrder>) -> Vec<SortOrder> {
    orders.retain(|o| !o.is_empty());
    orders.sort();
    orders.dedup();
    // Prefer longer orders when trimming to the cap (subsumption rule 3 of
    // ford-min: a longer order at equal cost dominates its prefixes).
    orders.sort_by_key(|o| std::cmp::Reverse(o.len()));
    orders.truncate(AFM_CAP);
    orders.sort();
    orders
}

fn node_afm(
    plan: &LogicalPlan,
    id: NodeId,
    catalog: &Catalog,
    equiv: &EquivMap,
    referenced_by_alias: &HashMap<String, AttrSet>,
    done: &[Vec<SortOrder>],
) -> Result<Vec<SortOrder>> {
    Ok(match plan.node(id) {
        // Rule 1: clustering order + covering secondary index orders.
        LogicalOp::Scan { table, alias } => {
            let handle = catalog.table(table)?;
            let mut out = Vec::new();
            if !handle.meta.clustering.is_empty() {
                out.push(qualify_order(&handle.meta.clustering, alias));
            }
            let required = referenced_by_alias.get(alias).cloned().unwrap_or_default();
            // Strip the alias qualifier to compare with index metadata,
            // which uses bare column names.
            let bare_required: AttrSet = required
                .iter()
                .map(|c| c.rsplit('.').next().unwrap_or(c).to_string())
                .collect();
            for idx in &handle.meta.indexes {
                if idx.covers(&bare_required) {
                    out.push(qualify_order(&idx.key, alias));
                }
            }
            dedup_capped(out)
        }
        // Rule 2: selections pass favorable orders through.
        LogicalOp::Filter { input, .. } => done[*input].clone(),
        // Rule 3: longest prefixes within the projected columns.
        LogicalOp::Project { input, items } => {
            let kept: AttrSet = items
                .iter()
                .filter(|it| matches!(&it.expr, crate::logical::NExpr::Col(c) if c == &it.name))
                .map(|it| it.name.clone())
                .collect();
            dedup_capped(done[*input].iter().map(|o| o.lcp_with_set(&kept)).collect())
        }
        // Rule 4: input favorable orders survive (nested loops propagates
        // the outer's order); additionally each input favorable prefix on
        // the join attributes, extended by an arbitrary permutation of the
        // remaining join attributes (merge join propagates the chosen join
        // order).
        LogicalOp::Join {
            left, right, pairs, ..
        } => {
            let s: AttrSet = pairs.iter().map(|p| equiv.rep(&p.left)).collect();
            let mut t: Vec<SortOrder> = done[*left]
                .iter()
                .chain(done[*right].iter())
                .cloned()
                .collect();
            let mut extended: Vec<SortOrder> = Vec::new();
            for o in t.iter().chain(std::iter::once(&SortOrder::empty())) {
                let prefix = lcp_with_set_equiv(o, &s, equiv);
                extended.push(prefix.extend_with_set(&s));
            }
            t.append(&mut extended);
            dedup_capped(t)
        }
        // Rule 5: longest prefix within the group-by columns, extended by
        // an arbitrary permutation of the rest.
        LogicalOp::Aggregate {
            input, group_by, ..
        } => {
            let l: AttrSet = group_by.iter().cloned().collect();
            let mut out = Vec::new();
            for o in done[*input]
                .iter()
                .chain(std::iter::once(&SortOrder::empty()))
            {
                out.push(o.lcp_with_set(&l).extend_with_set(&l));
            }
            dedup_capped(out)
        }
        LogicalOp::Sort { input, .. }
        | LogicalOp::Distinct { input }
        | LogicalOp::Limit { input, .. } => done[*input].clone(),
    })
}

fn qualify_order(o: &SortOrder, alias: &str) -> SortOrder {
    o.rename(|a| format!("{alias}.{a}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::JoinPair;
    use pyro_common::{Schema, Tuple, Value};

    /// catalog1-style setup: ct1 clustered on y, ct2 clustered on m, rt has
    /// a covering index on m (with y, r included).
    fn example1_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk_rows = |key_col: usize| -> Vec<Tuple> {
            let mut rows: Vec<Tuple> = (0..100)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i % 10),
                        Value::Int(i % 7),
                        Value::Int(i % 5),
                        Value::Int(i % 3),
                    ])
                })
                .collect();
            rows.sort_by(|a, b| a.get(key_col).cmp(b.get(key_col)));
            rows
        };
        cat.register_table(
            "ct1",
            Schema::ints(&["y", "m", "c", "co"]),
            SortOrder::new(["y"]),
            &mk_rows(0),
        )
        .unwrap();
        cat.register_table(
            "ct2",
            Schema::ints(&["y", "m", "c", "co"]),
            SortOrder::new(["m"]),
            &mk_rows(1),
        )
        .unwrap();
        cat.register_table(
            "rt",
            Schema::ints(&["m", "y", "r"]),
            SortOrder::new(["m"]),
            &mk_rows(0),
        )
        .unwrap();
        cat.create_index("rt", "rt_m_cov", SortOrder::new(["m"]), &["y", "r"])
            .unwrap();
        cat
    }

    /// Builds the Example 1 join tree: (ct1 ⋈ ct2) ⋈ rt.
    fn example1_plan() -> (LogicalPlan, EquivMap) {
        let mut p = LogicalPlan::new();
        let c1 = p.scan_as("ct1", "c1");
        let c2 = p.scan_as("ct2", "c2");
        let j1 = p.join(
            c1,
            c2,
            vec![
                JoinPair::new("c1.c", "c2.c"),
                JoinPair::new("c1.m", "c2.m"),
                JoinPair::new("c1.y", "c2.y"),
                JoinPair::new("c1.co", "c2.co"),
            ],
        );
        let rt = p.scan_as("rt", "r");
        p.join(
            j1,
            rt,
            vec![JoinPair::new("c1.m", "r.m"), JoinPair::new("c1.y", "r.y")],
        );
        let mut eq = EquivMap::new();
        for id in 0..p.len() {
            if let LogicalOp::Join { pairs, .. } = p.node(id) {
                for pair in pairs {
                    eq.union(&pair.left, &pair.right);
                }
            }
        }
        (p, eq)
    }

    fn referenced(plan: &LogicalPlan) -> HashMap<String, AttrSet> {
        let mut m: HashMap<String, AttrSet> = HashMap::new();
        for col in plan.referenced_columns() {
            if let Some((alias, _)) = col.split_once('.') {
                m.entry(alias.to_string()).or_default().insert(col.clone());
            }
        }
        m
    }

    #[test]
    fn scan_afm_holds_clustering_and_covering_orders() {
        let cat = example1_catalog();
        let (plan, eq) = example1_plan();
        let afm = compute_afm(&plan, &cat, &eq, &referenced(&plan)).unwrap();
        // ct1 scan: clustering (y)
        assert_eq!(afm[0], vec![SortOrder::new(["c1.y"])]);
        // ct2 scan: clustering (m)
        assert_eq!(afm[1], vec![SortOrder::new(["c2.m"])]);
        // rt scan: clustering (m) + covering index (m); deduped by rep? The
        // two orders differ in name: r.m for both → single entry.
        assert_eq!(afm[3], vec![SortOrder::new(["r.m"])]);
    }

    #[test]
    fn join_afm_extends_prefixes_like_paper_example() {
        // Paper §5.2.1: afm(ct1 ⋈ ct2) = {(y, co, c, m), (m, co, c, y)}
        // modulo the arbitrary suffix permutation (the paper writes
        // (y, co, c, m); our canonical suffix is lexicographic).
        let cat = example1_catalog();
        let (plan, eq) = example1_plan();
        let afm = compute_afm(&plan, &cat, &eq, &referenced(&plan)).unwrap();
        let j1 = &afm[2];
        // Must contain a 4-attr order starting with the rep of y and one
        // starting with the rep of m.
        let rep_y = eq.rep("c1.y");
        let rep_m = eq.rep("c1.m");
        assert!(
            j1.iter().any(|o| o.len() == 4 && o.attrs()[0] == rep_y),
            "want a y-led extension in {j1:?}"
        );
        assert!(
            j1.iter().any(|o| o.len() == 4 && o.attrs()[0] == rep_m),
            "want an m-led extension in {j1:?}"
        );
    }

    #[test]
    fn top_join_afm_projects_to_its_attrs() {
        // Paper: afm((ct1 ⋈ ct2) ⋈ rt) = {(y, m), (m, y)}.
        let cat = example1_catalog();
        let (plan, eq) = example1_plan();
        let afm = compute_afm(&plan, &cat, &eq, &referenced(&plan)).unwrap();
        let top = &afm[4];
        let rep_y = eq.rep("c1.y");
        let rep_m = eq.rep("c1.m");
        assert!(
            top.iter()
                .any(|o| o.len() == 2 && o.attrs()[0] == rep_y && o.attrs()[1] == rep_m),
            "want (y, m) in {top:?}"
        );
        assert!(
            top.iter()
                .any(|o| o.len() == 2 && o.attrs()[0] == rep_m && o.attrs()[1] == rep_y),
            "want (m, y) in {top:?}"
        );
    }

    #[test]
    fn aggregate_afm_restricts_to_group_cols() {
        let cat = example1_catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("ct1", "c1");
        p.aggregate(s, vec!["c1.y", "c1.m"], vec![]);
        let eq = EquivMap::new();
        let afm = compute_afm(&p, &cat, &eq, &referenced(&p)).unwrap();
        // clustering (y) → prefix (y) extended with m → (y, m); plus the
        // ε-extension ⟨{m,y}⟩ = (c1.m, c1.y).
        assert!(afm[1].contains(&SortOrder::new(["c1.y", "c1.m"])));
        assert!(afm[1].contains(&SortOrder::new(["c1.m", "c1.y"])));
    }

    #[test]
    fn covering_check_respects_referenced_columns() {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..10)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i), Value::Int(i)]))
            .collect();
        cat.register_table(
            "t",
            Schema::ints(&["a", "b", "c"]),
            SortOrder::new(["a"]),
            &rows,
        )
        .unwrap();
        // Index on b includes a — does NOT cover queries touching c.
        cat.create_index("t", "t_b", SortOrder::new(["b"]), &["a"])
            .unwrap();

        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.project(s, vec![crate::logical::ProjItem::col("t.c")]);
        let eq = EquivMap::new();
        let afm = compute_afm(&p, &cat, &eq, &referenced(&p)).unwrap();
        assert_eq!(
            afm[0],
            vec![SortOrder::new(["t.a"])],
            "index must not appear: it does not cover column c"
        );
    }
}
