//! The cost model (§3.2).
//!
//! Costs are expressed in block-I/O units; CPU work is translated into the
//! same units via small configurable factors ("CPU cost is appropriately
//! translated into I/O cost units", §3). The two formulas at the heart of
//! the paper:
//!
//! ```text
//! coe(e, ε, o)  = cpu_cost(e, o)                    if B(e) ≤ M
//!               = B(e)·(2·⌈log_{M−1}(B(e)/M)⌉ + 1)  otherwise
//!
//! coe(e, o1, o2) = D(e, attrs(os)) · coe(e', ε, or)
//!                  where os = o2 ∧ o1, or = o2 − os,
//!                        N(e') = N(e)/D, B(e') = B(e)/D
//! ```
//!
//! The second is what makes *partial* sort enforcement cheap: each of the
//! `D` partial-sort segments is costed independently — usually in-memory.

use crate::stats::NodeStats;
use pyro_ordering::SortOrder;

/// Enumeration accounting for one optimization run: how much of the plan
/// space the search actually touched. Totals are deterministic functions
/// of the logical plan, the strategy and the knob settings — never of
/// wall-clock or cost constants — so equal-knob runs report equal stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Memo groups solved: distinct `(node, rep-normalized order)` goals.
    pub groups: u64,
    /// Physical candidates enumerated across all solved goals.
    pub candidates: u64,
    /// Interesting-order goals the bottom-up prefill declined to collect
    /// because a node was already at its cap (see
    /// [`crate::memo::DEFAULT_INTERESTING_ORDER_CAP`]); such goals are
    /// still solved exactly on demand, so truncation never changes plans.
    pub truncated: u64,
}

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Block size in bytes (paper: 4 KB).
    pub block_size: usize,
    /// Sort memory in blocks — the `M` of the formulas (paper: 10 000
    /// blocks = 40 MB; scaled deployments use less).
    pub sort_mem_blocks: f64,
    /// I/O-units per scalar key comparison.
    pub cmp_io: f64,
    /// I/O-units per tuple passed through an operator.
    pub tuple_io: f64,
    /// I/O-units per tuple hashed (build or probe).
    pub hash_io: f64,
    /// Buffer-pool capacity in pages; `0` means the executor bypasses the
    /// pool (the default), in which case the model charges every block
    /// access as cold I/O — exactly the pre-pool formulas.
    pub buffer_pool_pages: f64,
    /// Cost of re-reading a pool-resident block, as a fraction of a cold
    /// device read. Applied to the *read* half of external-sort run I/O
    /// when the run set fits in the pool (runs are written and immediately
    /// re-read, the pattern a buffer pool absorbs best).
    pub cached_read_discount: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            block_size: 4096,
            sort_mem_blocks: 100.0,
            cmp_io: 1e-5,
            tuple_io: 5e-6,
            // Hashing a key + bucket traversal costs several comparisons'
            // worth of CPU per tuple.
            hash_io: 5e-5,
            buffer_pool_pages: 0.0,
            cached_read_discount: 0.25,
        }
    }
}

impl CostParams {
    /// CPU cost of sorting `n` tuples: `n·log2(n)` comparisons in I/O units.
    pub fn cpu_sort(&self, rows: f64) -> f64 {
        let n = rows.max(2.0);
        self.cmp_io * n * n.log2()
    }

    /// Cost multiplier for re-reading `blocks` spill blocks: `1` when the
    /// executor bypasses the pool or the run set outgrows it, the
    /// configured discount when a bounded pool can hold the whole run set
    /// (each run page is then re-read from a resident frame).
    pub fn run_read_factor(&self, blocks: f64) -> f64 {
        if self.buffer_pool_pages > 0.0 && blocks <= self.buffer_pool_pages {
            self.cached_read_discount
        } else {
            1.0
        }
    }

    /// `coe(e, ε, o)`: full-sort enforcement cost for an input of `rows`
    /// tuples in `blocks` blocks.
    ///
    /// The external branch is the paper's `B(e)·(2·passes + 1)` — `passes`
    /// write+read round trips over the runs plus the final merge read.
    /// With a bounded buffer pool ([`CostParams::buffer_pool_pages`] > 0)
    /// that can hold the runs, the read halves are discounted by
    /// [`CostParams::cached_read_discount`]; with the default bypass the
    /// factor is 1 and the formula is bit-identical to the paper's.
    pub fn coe_full(&self, rows: f64, blocks: f64) -> f64 {
        let m = self.sort_mem_blocks;
        if blocks <= m {
            self.cpu_sort(rows)
        } else {
            let passes = ((blocks / m).log2() / (m - 1.0).log2()).ceil().max(1.0);
            let r = self.run_read_factor(blocks);
            blocks * ((1.0 + r) * passes + r)
        }
    }

    /// `coe(e, o1, o2)` where the common prefix has already been factored
    /// out by the caller into `segments = D(e, attrs(o2 ∧ o1))`; `rest_len`
    /// is `|o2 − os|`. Returns 0 when nothing remains to sort.
    pub fn coe_partial(&self, stats: &NodeStats, segments: f64, rest_len: usize) -> f64 {
        if rest_len == 0 {
            return 0.0;
        }
        let d = segments.max(1.0);
        let seg_rows = (stats.rows / d).max(1.0);
        let seg_blocks = (stats.blocks(self.block_size) / d).max(1.0);
        d * self.coe_full(seg_rows, seg_blocks)
    }

    /// Enforcement cost from a known order `have` to target `need`, with
    /// prefix matching decided by the caller-provided equivalence test.
    /// Returns `(cost, matched_prefix_len)`.
    pub fn coe_order(
        &self,
        stats: &NodeStats,
        have: &SortOrder,
        need: &SortOrder,
        same: impl Fn(&str, &str) -> bool,
    ) -> (f64, usize) {
        let k = have
            .attrs()
            .iter()
            .zip(need.attrs())
            .take_while(|(h, n)| same(h, n))
            .count();
        let os_attrs: Vec<&str> = need.attrs()[..k].iter().map(String::as_str).collect();
        let segments = stats.distinct_of(os_attrs.iter().copied());
        let rest = need.len() - k;
        (self.coe_partial(stats, segments, rest), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn stats(rows: f64, avg_bytes: f64, distinct: &[(&str, f64)]) -> NodeStats {
        NodeStats {
            rows,
            avg_bytes,
            distinct: distinct
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<HashMap<_, _>>(),
        }
    }

    #[test]
    fn in_memory_sorts_are_cpu_only() {
        let p = CostParams::default();
        // 100 blocks budget, tiny input
        let c = p.coe_full(1000.0, 10.0);
        assert!(
            c < 1.0,
            "in-memory sort should cost well under one I/O: {c}"
        );
    }

    #[test]
    fn bounded_pool_discounts_run_reads() {
        let cold = CostParams::default();
        let pooled = CostParams {
            buffer_pool_pages: 2000.0,
            cached_read_discount: 0.25,
            ..CostParams::default()
        };
        let (rows, blocks) = (100_000.0, 1000.0);
        // One merge pass. Cold: B·3. Pooled (runs fit): write pass full,
        // both reads at a quarter of a cold read → B·(1 + 0.25 + 0.25).
        assert_eq!(cold.coe_full(rows, blocks), blocks * 3.0);
        assert_eq!(pooled.coe_full(rows, blocks), blocks * 1.5);
        // Runs outgrow the pool → no discount.
        let small_pool = CostParams {
            buffer_pool_pages: 10.0,
            ..pooled
        };
        assert_eq!(small_pool.coe_full(rows, blocks), blocks * 3.0);
        // In-memory sorts are CPU-only either way.
        assert_eq!(pooled.coe_full(1000.0, 10.0), cold.coe_full(1000.0, 10.0));
    }

    #[test]
    fn external_sort_charges_passes() {
        let p = CostParams::default();
        let b = 1000.0; // 10× memory
        let c = p.coe_full(100_000.0, b);
        assert_eq!(c, b * 3.0, "one merge pass: read+write runs + final read");
        // much larger input → more passes
        let c2 = p.coe_full(10_000_000.0, 1_000_000.0);
        assert!(c2 > c);
    }

    #[test]
    fn partial_sort_much_cheaper_than_full() {
        let p = CostParams::default();
        let s = stats(2_000_000.0, 100.0, &[("y", 1000.0)]);
        let b = s.blocks(4096);
        assert!(b > p.sort_mem_blocks);
        let full = p.coe_full(s.rows, b);
        // 1000 segments of ~49 blocks each fit in the 100-block budget →
        // every segment sorts in memory, so the partial sort is CPU-only.
        let partial = p.coe_partial(&s, 1000.0, 3);
        assert!(
            partial < full / 10.0,
            "partial {partial} should beat full {full} decisively"
        );
    }

    #[test]
    fn partial_sort_converges_to_full_when_segments_outgrow_memory() {
        // Figure 9's right edge: one giant segment = plain external sort.
        let p = CostParams::default();
        let s = stats(2_000_000.0, 100.0, &[("y", 1.0)]);
        let full = p.coe_full(s.rows, s.blocks(4096));
        let partial = p.coe_partial(&s, 1.0, 3);
        assert!((partial - full).abs() < 1e-9);
    }

    #[test]
    fn coe_order_matches_prefix_under_equivalence() {
        let p = CostParams::default();
        let s = stats(10_000.0, 50.0, &[("a", 50.0), ("b", 200.0)]);
        let have = SortOrder::new(["a"]);
        let need = SortOrder::new(["a", "b"]);
        let (cost, k) = p.coe_order(&s, &have, &need, |x, y| x == y);
        assert_eq!(k, 1);
        assert!(cost > 0.0);
        // exact match → zero
        let (cost, k) = p.coe_order(&s, &need, &need, |x, y| x == y);
        assert_eq!((cost, k), (0.0, 2));
        // no overlap → full sort cost with D(∅)=1 segment
        let (cost_none, k) = p.coe_order(&s, &SortOrder::new(["z"]), &need, |x, y| x == y);
        assert_eq!(k, 0);
        let full = p.coe_full(s.rows, s.blocks(4096));
        assert!((cost_none - full).abs() < 1e-9);
    }

    #[test]
    fn coe_order_uses_equivalence() {
        let p = CostParams::default();
        let s = stats(1000.0, 50.0, &[("l.k", 100.0)]);
        let have = SortOrder::new(["l.k"]);
        let need = SortOrder::new(["r.k"]);
        let (cost, k) = p.coe_order(&s, &have, &need, |_, _| true);
        assert_eq!((cost, k), (0.0, 1));
    }

    #[test]
    fn empty_need_is_free() {
        let p = CostParams::default();
        let s = stats(1000.0, 50.0, &[]);
        let (cost, _) = p.coe_order(&s, &SortOrder::empty(), &SortOrder::empty(), |x, y| x == y);
        assert_eq!(cost, 0.0);
    }
}
