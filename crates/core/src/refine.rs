//! Phase-2 plan refinement (§5.2.2).
//!
//! After the cost-based search picks a plan, the *free attributes* of each
//! merge join — join attributes whose position was fixed by an arbitrary
//! permutation rather than by any input favorable order — are reworked so
//! adjacent joins share sort-order prefixes, using the 2-approximate tree
//! algorithm of §4.2. The refined orders are applied by re-optimizing with
//! the new orders pinned; the refined plan is kept only if it costs less.

use crate::favorable::lcp_with_set_equiv;
use crate::logical::{LogicalOp, LogicalPlan, NodeId};
use crate::optimizer::{Ctx, Optimizer};
use crate::plan::{PhysNode, PhysOp};
use pyro_common::Result;
use pyro_ordering::{two_approx_tree_order, AttrSet, JoinTree, SortOrder};
use std::collections::HashMap;
use std::sync::Arc;

/// One merge join discovered in the physical plan.
struct MjInfo {
    logical: NodeId,
    /// Chosen order in representative names.
    order_reps: SortOrder,
    /// Fixed prefix (longest common prefix with any input favorable order).
    fixed: SortOrder,
    /// Free attributes (representative names).
    free: AttrSet,
    /// Logical id of the nearest merge-join ancestor, if any.
    parent: Option<NodeId>,
}

/// Runs phase-2 on `best`; returns a cheaper plan or `None`.
pub(crate) fn refine(
    ctx: &Ctx,
    optimizer: &Optimizer,
    plan: &LogicalPlan,
    best: &Arc<PhysNode>,
) -> Result<Option<Arc<PhysNode>>> {
    let mut joins: Vec<MjInfo> = Vec::new();
    collect_mjs(ctx, best, None, &mut joins);
    if joins.len() < 2 {
        return Ok(None); // nothing to coordinate
    }
    // Any free attributes at all?
    if joins.iter().all(|j| j.free.is_empty()) {
        return Ok(None);
    }

    // Build the binary tree over free-attribute sets. Multiple roots can
    // exist (e.g. joins under different branches); we refine the largest
    // tree containing the root-most join and leave others untouched.
    let mut tree = JoinTree::new();
    let mut tree_ids: HashMap<NodeId, usize> = HashMap::new();
    // Insert root-most joins first (parents before children).
    let mut remaining: Vec<&MjInfo> = joins.iter().collect();
    remaining.sort_by_key(|j| j.parent.is_some()); // roots first
    for j in &remaining {
        match j.parent.and_then(|p| tree_ids.get(&p).copied()) {
            None => {
                if tree.is_empty() {
                    tree_ids.insert(j.logical, tree.add_root(j.free.clone()));
                }
                // Secondary roots are skipped; refining one tree at a time
                // keeps the transformation simple and is what the paper's
                // single-plan-tree examples need.
            }
            Some(parent_tree_id) => {
                if tree.children(parent_tree_id).len() < 2 {
                    tree_ids.insert(j.logical, tree.add_child(parent_tree_id, j.free.clone()));
                }
            }
        }
    }
    if tree.len() < 2 {
        return Ok(None);
    }

    let solution = two_approx_tree_order(&tree);
    // New order per refined join: fixed prefix + reworked free attributes.
    let mut forced: HashMap<NodeId, SortOrder> = HashMap::new();
    for j in &joins {
        if let Some(&tid) = tree_ids.get(&j.logical) {
            let reworked = j.fixed.concat(&solution.orders[tid]);
            // Only force when it actually covers the full attribute set.
            if reworked.len() == j.order_reps.len() {
                forced.insert(j.logical, reworked);
            }
        }
    }
    if forced.is_empty() {
        return Ok(None);
    }

    let refined = optimizer.optimize_forced(plan, forced)?;
    if refined.cost() < best.cost {
        Ok(Some(refined.root))
    } else {
        Ok(None)
    }
}

/// Walks the physical tree recording merge joins and their nearest
/// merge-join ancestor.
fn collect_mjs(ctx: &Ctx, node: &Arc<PhysNode>, parent_mj: Option<NodeId>, out: &mut Vec<MjInfo>) {
    let this_parent = if let PhysOp::MergeJoin { order, .. } = &node.op {
        let logical = node.logical;
        if let LogicalOp::Join {
            left, right, pairs, ..
        } = ctx.plan.node(logical)
        {
            let s: AttrSet = pairs.iter().map(|p| ctx.equiv.rep(&p.left)).collect();
            let order_reps = order.rename(|a| ctx.equiv.rep(a));
            // qi: input favorable order sharing the longest prefix with pi.
            let fixed = ctx.afm[*left]
                .iter()
                .chain(ctx.afm[*right].iter())
                .map(|q| {
                    let q_reps = lcp_with_set_equiv(q, &s, &ctx.equiv);
                    order_reps.lcp(&q_reps)
                })
                .max_by_key(SortOrder::len)
                .unwrap_or_default();
            let free: AttrSet = order_reps
                .attrs()
                .iter()
                .filter(|a| !fixed.attrs().contains(a))
                .cloned()
                .collect();
            out.push(MjInfo {
                logical,
                order_reps,
                fixed,
                free,
                parent: parent_mj,
            });
        }
        Some(node.logical)
    } else {
        parent_mj
    };
    for c in &node.children {
        collect_mjs(ctx, c, this_parent, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{JoinPair, LogicalPlan};
    use crate::strategy::Strategy;
    use pyro_catalog::Catalog;
    use pyro_common::{Schema, Tuple, Value};
    use pyro_exec::join::JoinKind;

    /// Query-4 shaped setup: three identical unindexed tables, two
    /// full-outer joins sharing attributes c4, c5.
    fn q4_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..500)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i % 97),
                    Value::Int(i % 89),
                    Value::Int(i % 83),
                    Value::Int(i % 79),
                    Value::Int(i % 73),
                ])
            })
            .collect();
        for t in ["r1", "r2", "r3"] {
            cat.register_table(
                t,
                Schema::ints(&["c1", "c2", "c3", "c4", "c5"]),
                SortOrder::empty(),
                &rows,
            )
            .unwrap();
        }
        cat
    }

    fn q4_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new();
        let r1 = p.scan_as("r1", "r1");
        let r2 = p.scan_as("r2", "r2");
        let j1 = p.join_kind(
            r1,
            r2,
            JoinKind::FullOuter,
            vec![
                JoinPair::new("r1.c5", "r2.c5"),
                JoinPair::new("r1.c4", "r2.c4"),
                JoinPair::new("r1.c3", "r2.c3"),
            ],
        );
        let r3 = p.scan_as("r3", "r3");
        p.join_kind(
            j1,
            r3,
            JoinKind::FullOuter,
            vec![
                JoinPair::new("r1.c1", "r3.c1"),
                JoinPair::new("r1.c4", "r3.c4"),
                JoinPair::new("r1.c5", "r3.c5"),
            ],
        );
        p
    }

    #[test]
    fn refinement_aligns_shared_attributes() {
        let cat = q4_catalog();
        let plan = q4_plan();
        let optimized = Optimizer::new(&cat)
            .with_strategy(Strategy::pyro_o())
            .optimize(&plan)
            .unwrap();
        // Collect the two merge-join orders.
        let mut orders: Vec<SortOrder> = Vec::new();
        optimized.root.walk(&mut |n| {
            if let PhysOp::MergeJoin { order, .. } = &n.op {
                orders.push(order.clone());
            }
        });
        assert_eq!(orders.len(), 2, "{}", optimized.explain());
        // The two joins share {c4, c5}; after refinement their orders must
        // share a 2-attribute prefix (modulo column-name side).
        let bare = |o: &SortOrder, i: usize| o.attrs()[i].rsplit('.').next().unwrap().to_string();
        let shared = (0..2)
            .take_while(|&i| bare(&orders[0], i) == bare(&orders[1], i))
            .count();
        assert_eq!(
            shared,
            2,
            "joins should share (c4, c5) prefix; got {:?} vs {:?}\n{}",
            orders[0],
            orders[1],
            optimized.explain()
        );
    }

    #[test]
    fn refinement_strictly_helps_q4() {
        let cat = q4_catalog();
        let plan = q4_plan();
        let with = Optimizer::new(&cat)
            .with_strategy(Strategy::pyro_o())
            .optimize(&plan)
            .unwrap()
            .cost();
        let without = Optimizer::new(&cat)
            .with_strategy(Strategy {
                refine: false,
                ..Strategy::pyro_o()
            })
            .optimize(&plan)
            .unwrap()
            .cost();
        assert!(
            with < without,
            "refined {with} should beat unrefined {without}"
        );
    }

    #[test]
    fn single_join_is_left_alone() {
        let cat = q4_catalog();
        let mut p = LogicalPlan::new();
        let r1 = p.scan_as("r1", "a");
        let r2 = p.scan_as("r2", "b");
        p.join(r1, r2, vec![JoinPair::new("a.c1", "b.c1")]);
        // Must not error or change anything structurally.
        let plan = Optimizer::new(&cat)
            .with_strategy(Strategy::pyro_o())
            .optimize(&p)
            .unwrap();
        assert!(plan.cost() > 0.0);
    }
}
