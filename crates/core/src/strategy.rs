//! Interesting-order strategies — the five contenders of Experiment B3.
//!
//! A strategy decides, for each sort-based operator (merge join, sort
//! aggregate), *which permutations of the attribute set* to try as
//! optimization subgoals, and whether partial-sort enforcers may be used.

use pyro_ordering::{all_permutations, AttrSet, SortOrder};

/// Which candidate-order generator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// `PYRO`: one arbitrary (canonical) permutation — a plain Volcano
    /// optimizer that never reasons about order choice.
    Arbitrary,
    /// `PYRO-P`: the PostgreSQL heuristic — for each of the `n` attributes,
    /// one order starting with that attribute, the rest arbitrary.
    Postgres,
    /// `PYRO-E`: all `n!` permutations (reference optimum; factorial).
    Exhaustive,
    /// `PYRO-O` / `PYRO-O−`: the paper's favorable-order heuristic (§5.2.1).
    Favorable,
}

/// A complete strategy: candidate generator + enforcer policy + whether the
/// phase-2 refinement runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Strategy {
    /// Candidate-order generator.
    pub kind: StrategyKind,
    /// Whether partial sort enforcers are allowed (PYRO-O− and plain PYRO
    /// say no: an order either matches fully or is re-sorted from scratch).
    pub partial_enforcers: bool,
    /// Whether the post-optimization refinement (§5.2.2) runs.
    pub refine: bool,
    /// Safety cap for the exhaustive generator (`n!` blows up fast).
    pub exhaustive_cap: usize,
}

impl Strategy {
    /// `PYRO`: arbitrary order, no partial sorts, no refinement.
    pub fn pyro() -> Strategy {
        Strategy {
            kind: StrategyKind::Arbitrary,
            partial_enforcers: false,
            refine: false,
            exhaustive_cap: 0,
        }
    }

    /// `PYRO-P`: PostgreSQL heuristic + partial sort exploitation.
    pub fn pyro_p() -> Strategy {
        Strategy {
            kind: StrategyKind::Postgres,
            partial_enforcers: true,
            refine: false,
            exhaustive_cap: 0,
        }
    }

    /// `PYRO-E`: exhaustive enumeration + partial sorts. Capped at 8
    /// attributes by default (40 320 orders); above the cap it degrades to
    /// the Postgres heuristic so optimization always terminates.
    pub fn pyro_e() -> Strategy {
        Strategy {
            kind: StrategyKind::Exhaustive,
            partial_enforcers: true,
            refine: false,
            exhaustive_cap: 8,
        }
    }

    /// `PYRO-O`: favorable orders + partial sorts + phase-2 refinement.
    pub fn pyro_o() -> Strategy {
        Strategy {
            kind: StrategyKind::Favorable,
            partial_enforcers: true,
            refine: true,
            exhaustive_cap: 0,
        }
    }

    /// `PYRO-O−`: favorable orders, exact matches only (no partial sorts,
    /// no refinement).
    pub fn pyro_o_minus() -> Strategy {
        Strategy {
            kind: StrategyKind::Favorable,
            partial_enforcers: false,
            refine: false,
            exhaustive_cap: 0,
        }
    }

    /// The five paper strategies, in the paper's Fig. 15 order
    /// (weakest to strongest: PYRO, PYRO-O−, PYRO-P, PYRO-O, PYRO-E).
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::pyro(),
            Strategy::pyro_o_minus(),
            Strategy::pyro_p(),
            Strategy::pyro_o(),
            Strategy::pyro_e(),
        ]
    }

    /// Resolves a strategy by its paper name, for CLI flags and config
    /// files. Case-insensitive; accepts `"pyro"`, `"pyro-p"`, `"pyro-e"`,
    /// `"pyro-o"`, and `"pyro-o-"` (alias `"pyro-o-minus"`).
    pub fn from_name(name: &str) -> Result<Strategy, pyro_common::PyroError> {
        match name.to_ascii_lowercase().as_str() {
            "pyro" => Ok(Strategy::pyro()),
            "pyro-p" => Ok(Strategy::pyro_p()),
            "pyro-e" => Ok(Strategy::pyro_e()),
            "pyro-o" => Ok(Strategy::pyro_o()),
            "pyro-o-" | "pyro-o-minus" => Ok(Strategy::pyro_o_minus()),
            _ => Err(pyro_common::PyroError::Plan(format!(
                "unknown strategy {name:?}; expected one of pyro, pyro-p, pyro-e, pyro-o, pyro-o-"
            ))),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match (self.kind, self.partial_enforcers) {
            (StrategyKind::Arbitrary, _) => "PYRO",
            (StrategyKind::Postgres, _) => "PYRO-P",
            (StrategyKind::Exhaustive, _) => "PYRO-E",
            (StrategyKind::Favorable, true) => "PYRO-O",
            (StrategyKind::Favorable, false) => "PYRO-O-",
        }
    }

    /// Computes the interesting-order set `I(e, o)` for an operator whose
    /// flexible attribute set is `s` (in canonical/rep names).
    ///
    /// `favorable_prefixes` are the `afm(input, S)` entries — prefixes of
    /// input favorable orders restricted to `s` — plus the required-order
    /// prefix `o ∧ S`; they are only consulted by the Favorable generator.
    pub fn candidate_orders(
        &self,
        s: &AttrSet,
        favorable_prefixes: &[SortOrder],
    ) -> Vec<SortOrder> {
        if s.is_empty() {
            return vec![SortOrder::empty()];
        }
        match self.kind {
            StrategyKind::Arbitrary => vec![s.arbitrary_order()],
            StrategyKind::Postgres => postgres_orders(s),
            StrategyKind::Exhaustive => {
                if s.len() <= self.exhaustive_cap {
                    all_permutations(s)
                } else {
                    postgres_orders(s)
                }
            }
            StrategyKind::Favorable => {
                // §5.2.1: T(e,o) = favorable prefixes; remove subsumed;
                // extend each to |S|.
                let mut t: Vec<SortOrder> = favorable_prefixes.to_vec();
                t.push(SortOrder::empty()); // always have a fallback
                t.sort();
                t.dedup();
                // Remove o1 if some o2 in T has o1 ≤ o2 (o1 strictly shorter
                // prefix of o2, or equal-but-duplicate handled by dedup).
                let kept: Vec<SortOrder> = t
                    .iter()
                    .filter(|o1| !t.iter().any(|o2| *o1 != o2 && o1.is_prefix_of(o2)))
                    .cloned()
                    .collect();
                let mut out: Vec<SortOrder> = kept.iter().map(|o| o.extend_with_set(s)).collect();
                out.sort();
                out.dedup();
                out
            }
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = pyro_common::PyroError;

    fn from_str(s: &str) -> Result<Strategy, Self::Err> {
        Strategy::from_name(s)
    }
}

/// The PostgreSQL heuristic: one order per leading attribute.
fn postgres_orders(s: &AttrSet) -> Vec<SortOrder> {
    s.iter()
        .map(|lead| {
            let mut rest = s.clone();
            rest.remove(lead);
            SortOrder::new([lead.to_string()]).concat(&rest.arbitrary_order())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(attrs: &[&str]) -> AttrSet {
        AttrSet::from_iter(attrs.iter().copied())
    }

    #[test]
    fn arbitrary_yields_one() {
        let orders = Strategy::pyro().candidate_orders(&s(&["b", "a", "c"]), &[]);
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].len(), 3);
    }

    #[test]
    fn postgres_yields_n() {
        let orders = Strategy::pyro_p().candidate_orders(&s(&["a", "b", "c"]), &[]);
        assert_eq!(orders.len(), 3);
        let firsts: Vec<&str> = orders.iter().map(|o| o.attrs()[0].as_str()).collect();
        assert_eq!(firsts, vec!["a", "b", "c"]);
        for o in &orders {
            assert_eq!(o.len(), 3);
        }
    }

    #[test]
    fn exhaustive_yields_factorial_within_cap() {
        let orders = Strategy::pyro_e().candidate_orders(&s(&["a", "b", "c", "d"]), &[]);
        assert_eq!(orders.len(), 24);
    }

    #[test]
    fn exhaustive_degrades_beyond_cap() {
        let attrs: Vec<String> = (0..10).map(|i| format!("a{i}")).collect();
        let set: AttrSet = attrs.iter().cloned().collect();
        let orders = Strategy::pyro_e().candidate_orders(&set, &[]);
        assert_eq!(orders.len(), 10, "falls back to Postgres heuristic");
    }

    #[test]
    fn favorable_extends_prefixes() {
        let set = s(&["m", "y", "c", "co"]);
        let prefixes = vec![SortOrder::new(["y"]), SortOrder::new(["m"])];
        let orders = Strategy::pyro_o().candidate_orders(&set, &prefixes);
        // (y, ...), (m, ...) and the ε-extension ⟨S⟩... but ε ≤ (y) is
        // subsumed and removed, so exactly two candidates survive.
        assert_eq!(orders.len(), 2, "{orders:?}");
        assert!(orders.iter().any(|o| o.attrs()[0] == "y"));
        assert!(orders.iter().any(|o| o.attrs()[0] == "m"));
        for o in &orders {
            assert_eq!(o.len(), 4);
        }
    }

    #[test]
    fn favorable_removes_subsumed_prefixes() {
        let set = s(&["a", "b", "c"]);
        let prefixes = vec![SortOrder::new(["a"]), SortOrder::new(["a", "b"])];
        let orders = Strategy::pyro_o().candidate_orders(&set, &prefixes);
        // (a) ≤ (a,b) → only (a,b,·) remains.
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0], SortOrder::new(["a", "b", "c"]));
    }

    #[test]
    fn favorable_with_no_prefixes_gives_canonical() {
        let set = s(&["b", "a"]);
        let orders = Strategy::pyro_o().candidate_orders(&set, &[]);
        assert_eq!(orders, vec![SortOrder::new(["a", "b"])]);
    }

    #[test]
    fn empty_set_single_empty_order() {
        for strat in [
            Strategy::pyro(),
            Strategy::pyro_p(),
            Strategy::pyro_e(),
            Strategy::pyro_o(),
        ] {
            assert_eq!(
                strat.candidate_orders(&AttrSet::new(), &[]),
                vec![SortOrder::empty()]
            );
        }
    }

    #[test]
    fn from_name_round_trips() {
        for strat in Strategy::all() {
            assert_eq!(Strategy::from_name(strat.name()).unwrap(), strat);
        }
        assert_eq!(Strategy::from_name("PYRO-O").unwrap(), Strategy::pyro_o());
        assert_eq!(
            "pyro-o-minus".parse::<Strategy>().unwrap(),
            Strategy::pyro_o_minus()
        );
        assert!(Strategy::from_name("volcano").is_err());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Strategy::pyro().name(), "PYRO");
        assert_eq!(Strategy::pyro_p().name(), "PYRO-P");
        assert_eq!(Strategy::pyro_e().name(), "PYRO-E");
        assert_eq!(Strategy::pyro_o().name(), "PYRO-O");
        assert_eq!(Strategy::pyro_o_minus().name(), "PYRO-O-");
    }
}
