//! Column equivalence classes.
//!
//! Join predicates `l = r` make the two columns interchangeable for ordering
//! purposes: a stream sorted on `ps_partkey` after `ps_partkey = l_partkey`
//! is also sorted on `l_partkey`, and an `ORDER BY ps_partkey` above the
//! join is satisfied either way. This is the small slice of Simmen et
//! al.-style order inference the paper's techniques assume. Implemented as a
//! union-find over qualified column names.

use std::cell::RefCell;
use std::collections::HashMap;

/// Union-find over column names.
#[derive(Debug, Default)]
pub struct EquivMap {
    parent: RefCell<HashMap<String, String>>,
}

impl EquivMap {
    /// Empty map: every column is its own class.
    pub fn new() -> Self {
        EquivMap::default()
    }

    fn find(&self, name: &str) -> String {
        let mut parent = self.parent.borrow_mut();
        let mut cur = name.to_string();
        let mut path = Vec::new();
        while let Some(p) = parent.get(&cur) {
            if p == &cur {
                break;
            }
            path.push(cur.clone());
            cur = p.clone();
        }
        for n in path {
            parent.insert(n, cur.clone());
        }
        cur
    }

    /// Representative of `name`'s class (deterministic: lexicographically
    /// smallest member becomes root).
    pub fn rep(&self, name: &str) -> String {
        if self.parent.borrow().contains_key(name) {
            self.find(name)
        } else {
            name.to_string()
        }
    }

    /// Declares `a = b`.
    pub fn union(&mut self, a: &str, b: &str) {
        {
            let mut parent = self.parent.borrow_mut();
            parent.entry(a.to_string()).or_insert_with(|| a.to_string());
            parent.entry(b.to_string()).or_insert_with(|| b.to_string());
        }
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller name becomes the root so reps are deterministic.
            let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent.borrow_mut().insert(child, root);
        }
    }

    /// True iff the two columns are known equal.
    pub fn same(&self, a: &str, b: &str) -> bool {
        self.rep(a) == self.rep(b)
    }

    /// All known members of `name`'s class (including `name` itself),
    /// sorted. Columns never unioned have a singleton class.
    pub fn class_members(&self, name: &str) -> Vec<String> {
        let rep = self.rep(name);
        let keys: Vec<String> = self.parent.borrow().keys().cloned().collect();
        let mut members: Vec<String> = keys.into_iter().filter(|k| self.rep(k) == rep).collect();
        if !members.iter().any(|m| m == name) {
            members.push(name.to_string());
        }
        members.sort();
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflexive_by_default() {
        let m = EquivMap::new();
        assert_eq!(m.rep("x"), "x");
        assert!(m.same("x", "x"));
        assert!(!m.same("x", "y"));
    }

    #[test]
    fn union_transitive() {
        let mut m = EquivMap::new();
        m.union("a.k", "b.k");
        m.union("b.k", "c.k");
        assert!(m.same("a.k", "c.k"));
        assert_eq!(m.rep("c.k"), "a.k", "lexicographically smallest is root");
    }

    #[test]
    fn separate_classes_stay_separate() {
        let mut m = EquivMap::new();
        m.union("a.x", "b.x");
        m.union("a.y", "b.y");
        assert!(!m.same("a.x", "a.y"));
    }

    #[test]
    fn deterministic_rep_regardless_of_order() {
        let mut m1 = EquivMap::new();
        m1.union("z.c", "a.c");
        let mut m2 = EquivMap::new();
        m2.union("a.c", "z.c");
        assert_eq!(m1.rep("z.c"), m2.rep("z.c"));
    }
}
