//! Memo-based bottom-up plan enumeration.
//!
//! The legacy search ([`crate::optimizer::best_plan`]) is a top-down
//! recursion over optimization goals `(node, required order)` with a memo
//! table keyed by the goal (orders rep-normalized through the
//! [`crate::equiv::EquivMap`], so equivalent orders share one memo group).
//! Because each goal's answer is a pure function of the goal — candidates,
//! enforcer placement and tie-breaking never depend on *when* a goal is
//! solved — the memo can equally be filled **bottom-up**: collect the goal
//! closure once (phase A), then solve goals in arena order, children
//! before parents, so every recursive lookup is a memo hit (phase B). The
//! two traversals provably choose identical plans, costs and counters;
//! what the bottom-up pass adds is *accounting* (group/candidate totals,
//! see [`crate::cost::SearchStats`]) and a place to **bound** the
//! interesting-order set per memo group: phase A caps the non-ε goals it
//! collects per node at [`Optimizer::with_interesting_cap`]
//! (default [`DEFAULT_INTERESTING_ORDER_CAP`]); goals beyond the cap are
//! simply not prefilled — the on-demand recursion still solves them
//! exactly — and the truncation is counted so a pathological ORDER BY
//! fan-out is visible instead of silent.
//!
//! [`Optimizer::with_interesting_cap`]: crate::optimizer::Optimizer::with_interesting_cap

use crate::logical::NodeId;
use crate::optimizer::{best_plan, child_goal_requests, Ctx};
use pyro_common::{PyroError, Result};
use pyro_ordering::SortOrder;
use std::collections::HashSet;

/// Default for the `join_enum_threshold` knob: inner-join regions with
/// more leaves than this are re-shaped by the cardinality-free heuristic
/// before the order-aware search runs. The default sits above every
/// workload in the paper's figures, so their plans are untouched.
pub const DEFAULT_JOIN_ENUM_THRESHOLD: usize = 8;

/// Default cap on non-ε interesting orders collected per memo group
/// during the bottom-up prefill (phase A).
pub const DEFAULT_INTERESTING_ORDER_CAP: usize = 64;

/// How the optimizer enumerates the plan space. Orthogonal to the paper's
/// interesting-order [`crate::strategy::Strategy`]: every enumerator runs
/// the same goal solver with the same candidate orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnumStrategy {
    /// The legacy top-down recursion, exactly as earlier releases: plans
    /// on demand, never re-shapes joins.
    Exhaustive,
    /// Bottom-up memo prefill with the interesting-order cap, plus the
    /// cardinality-free join re-shape for inner-join regions above the
    /// `join_enum_threshold` knob. At or below the threshold the chosen
    /// plans, costs and paper counters are identical to [`Exhaustive`]'s.
    ///
    /// [`Exhaustive`]: EnumStrategy::Exhaustive
    #[default]
    Memo,
    /// Forces the cardinality-free re-shape for *every* inner-join region
    /// of three or more leaves (then enumerates like [`Memo`]) — the
    /// Simpli-Squared-style fallback for plans too large to enumerate in
    /// the given shape.
    ///
    /// [`Memo`]: EnumStrategy::Memo
    Heuristic,
}

impl EnumStrategy {
    /// All enumerators, for benches and tests.
    pub fn all() -> [EnumStrategy; 3] {
        [
            EnumStrategy::Exhaustive,
            EnumStrategy::Memo,
            EnumStrategy::Heuristic,
        ]
    }

    /// CLI/config name.
    pub fn name(&self) -> &'static str {
        match self {
            EnumStrategy::Exhaustive => "exhaustive",
            EnumStrategy::Memo => "memo",
            EnumStrategy::Heuristic => "heuristic",
        }
    }

    /// Parses a CLI/config name.
    pub fn from_name(name: &str) -> Result<EnumStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "exhaustive" => Ok(EnumStrategy::Exhaustive),
            "memo" => Ok(EnumStrategy::Memo),
            "heuristic" => Ok(EnumStrategy::Heuristic),
            _ => Err(PyroError::Plan(format!(
                "unknown enum strategy {name:?} (expected exhaustive, memo or heuristic)"
            ))),
        }
    }
}

impl std::fmt::Display for EnumStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fills the memo bottom-up for the goal closure of `(root, required)`.
///
/// Phase A walks the goal graph top-down — using the *same* goal
/// generation the candidate enumerator uses, so the closure is exactly
/// the set of goals the recursive search would solve — deduplicating
/// goals under rep-normalization and capping non-ε goals per node at
/// `ctx.interesting_cap` (ε is always kept; overflow is counted in
/// `SearchStats::truncated`). Phase B then solves the collected goals in
/// ascending arena order; the arena guarantees children precede parents,
/// so each `best_plan` call bottoms out in memo hits.
pub(crate) fn prefill(ctx: &Ctx, root: NodeId, required: &SortOrder) -> Result<()> {
    let n = ctx.plan.len();
    let mut goals: Vec<Vec<SortOrder>> = vec![Vec::new(); n];
    let mut non_eps: Vec<usize> = vec![0; n];
    let mut seen: HashSet<(NodeId, Vec<String>)> = HashSet::new();
    let mut truncated = 0u64;
    let mut stack: Vec<(NodeId, SortOrder)> = vec![(root, required.clone())];
    while let Some((id, req)) = stack.pop() {
        if !seen.insert(ctx.memo_key(id, &req)) {
            continue;
        }
        if !req.is_empty() {
            if non_eps[id] >= ctx.interesting_cap {
                // Not prefilled: the on-demand recursion solves it exactly
                // when (and if) a parent actually asks.
                truncated += 1;
                continue;
            }
            non_eps[id] += 1;
        }
        for goal in child_goal_requests(ctx, id, &req)? {
            stack.push(goal);
        }
        goals[id].push(req);
    }
    ctx.search.borrow_mut().truncated += truncated;
    for (id, reqs) in goals.iter().enumerate() {
        for req in reqs {
            best_plan(ctx, id, req)?;
        }
    }
    Ok(())
}
