//! Parallel plan instantiation: turns maximal parallel-safe subtrees of a
//! physical plan into morsel-driven worker fragments behind the exchange
//! operators of `pyro-exec`.
//!
//! **What parallelizes.** Scans (heap, clustered, covering index), filters,
//! projections, and hash joins — operators that charge no `ExecMetrics`
//! counters, so distributing their rows over workers cannot change the four
//! paper counters. Everything else (sorts, merge joins, aggregates,
//! distinct, limits, nested loops) is a pipeline breaker: it runs serially,
//! and what it consumes must be sequence-faithful.
//!
//! **How subtrees attach.** Three cases, decided by the `exact` context the
//! compiler threads down (see `compile::compile_sub`):
//!
//! 1. No sequence-sensitive consumer above → a [`Gather`] streams worker
//!    batches in arrival order. Workers claim morsels (page ranges) from a
//!    shared atomic cursor; a hash join additionally repartitions both
//!    inputs by a deterministic key hash so each worker joins one disjoint
//!    key partition ([`repartition`]).
//! 2. A sequence-sensitive consumer above *and* the subtree is a
//!    scan→filter→project chain with a guaranteed sort order → workers take
//!    *contiguous* page ranges and a [`GatherMerge`] k-way-merges them on
//!    the declared order, ties to the lowest worker index. Because the file
//!    is stored in that order, this reproduces the serial row sequence
//!    exactly — so the consumer's counters are bit-identical to serial.
//! 3. Otherwise the subtree stays serial.

use crate::compile::{compile_expr_bound, key_spec, CompileCtx};
use crate::plan::{PhysNode, PhysOp};
use pyro_catalog::Catalog;
use pyro_common::{KeySpec, PyroError, Result};
use pyro_exec::filter::Filter;
use pyro_exec::join::HashJoin;
use pyro_exec::project::Project;
use pyro_exec::{repartition, BoxOp, Fragment, Gather, GatherMerge, MorselScan, MorselSource};
use pyro_storage::TupleFile;
use std::sync::Arc;

/// Attempts to instantiate `node` as a parallel subtree; `Ok(None)` means
/// "not eligible here — compile serially".
pub(crate) fn try_parallel(
    node: &Arc<PhysNode>,
    ctx: &CompileCtx,
    exact: bool,
) -> Result<Option<BoxOp>> {
    if !parallel_safe(node) {
        return Ok(None);
    }
    if !exact {
        let frags = fragments(node, ctx, false)?;
        let mut op: BoxOp = Box::new(Gather::new(node.schema.clone(), frags, ctx.metrics.clone()));
        op.set_batch_size(ctx.batch);
        return Ok(Some(op));
    }
    // Exact-sequence context: only an order-preserving merge over
    // contiguous ranges of an order-guaranteed scan chain qualifies.
    if !node.out_order.is_empty() && is_scan_chain(node) {
        if let Ok(key) = key_spec(&node.schema, &node.out_order) {
            let frags = fragments(node, ctx, true)?;
            let mut op: BoxOp = Box::new(GatherMerge::new(
                node.schema.clone(),
                frags,
                key,
                ctx.metrics.clone(),
            ));
            op.set_batch_size(ctx.batch);
            return Ok(Some(op));
        }
    }
    Ok(None)
}

/// True iff the whole subtree consists of counter-free, partitionable
/// operators.
fn parallel_safe(node: &PhysNode) -> bool {
    match &node.op {
        PhysOp::TableScan { .. }
        | PhysOp::ClusteredIndexScan { .. }
        | PhysOp::CoveringIndexScan { .. } => true,
        PhysOp::Filter { .. } | PhysOp::Project { .. } => parallel_safe(&node.children[0]),
        PhysOp::HashJoin { .. } => {
            parallel_safe(&node.children[0]) && parallel_safe(&node.children[1])
        }
        _ => false,
    }
}

/// True iff the subtree is a single-leaf Filter/Project chain over one scan
/// — the shape whose serial sequence a range partition can reproduce.
fn is_scan_chain(node: &PhysNode) -> bool {
    match &node.op {
        PhysOp::TableScan { .. }
        | PhysOp::ClusteredIndexScan { .. }
        | PhysOp::CoveringIndexScan { .. } => true,
        PhysOp::Filter { .. } | PhysOp::Project { .. } => is_scan_chain(&node.children[0]),
        _ => false,
    }
}

/// Resolves the file a scan leaf reads.
fn scan_file(node: &PhysNode, catalog: &Catalog) -> Result<TupleFile> {
    match &node.op {
        PhysOp::TableScan { table, .. } | PhysOp::ClusteredIndexScan { table, .. } => {
            Ok(catalog.table(table)?.heap.clone())
        }
        PhysOp::CoveringIndexScan { table, index, .. } => catalog
            .table(table)?
            .index_files
            .get(index)
            .cloned()
            .ok_or_else(|| PyroError::Plan(format!("index {index} of {table} has no entry file"))),
        other => Err(PyroError::Plan(format!(
            "not a scan leaf: {}",
            other.name()
        ))),
    }
}

/// Builds the `ctx.workers` fragment operator trees for a parallel-safe
/// subtree. `ranged` selects the leaf partitioning: `false` → dynamic
/// morsels off a shared cursor (load-balanced, arrival order free), `true`
/// → static contiguous page ranges (worker order reproduces file order, as
/// `GatherMerge` requires; never legal for hash-join subtrees).
fn fragments(node: &Arc<PhysNode>, ctx: &CompileCtx, ranged: bool) -> Result<Vec<Fragment>> {
    let frags = match &node.op {
        PhysOp::TableScan { .. }
        | PhysOp::ClusteredIndexScan { .. }
        | PhysOp::CoveringIndexScan { .. } => {
            let file = scan_file(node, ctx.catalog)?;
            if ranged {
                let pages = file.block_count() as usize;
                (0..ctx.workers)
                    .map(|w| {
                        let start = pages * w / ctx.workers;
                        let end = pages * (w + 1) / ctx.workers;
                        let op: BoxOp = Box::new(pyro_exec::FileScan::over_pages(
                            node.schema.clone(),
                            &file,
                            start,
                            end,
                        ));
                        Fragment::new(op)
                    })
                    .collect()
            } else {
                let source = MorselSource::new(&file);
                (0..ctx.workers)
                    .map(|_| {
                        let op: BoxOp =
                            Box::new(MorselScan::new(node.schema.clone(), source.clone()));
                        Fragment::new(op)
                    })
                    .collect()
            }
        }
        PhysOp::Filter { predicate } => {
            let child = &node.children[0];
            let pred = compile_expr_bound(predicate, &child.schema, ctx.params)?;
            fragments(child, ctx, ranged)?
                .into_iter()
                .map(|f| Fragment {
                    op: Box::new(Filter::new(f.op, pred.clone())),
                    metrics: f.metrics,
                })
                .collect()
        }
        PhysOp::Project { items } => {
            let child = &node.children[0];
            let exprs = items
                .iter()
                .map(|it| compile_expr_bound(&it.expr, &child.schema, ctx.params))
                .collect::<Result<Vec<_>>>()?;
            fragments(child, ctx, ranged)?
                .into_iter()
                .map(|f| Fragment {
                    op: Box::new(Project::new(f.op, exprs.clone(), node.schema.clone())),
                    metrics: f.metrics,
                })
                .collect()
        }
        PhysOp::HashJoin { kind, pairs } => {
            debug_assert!(!ranged, "hash-join subtrees cannot be range-partitioned");
            let (left, right) = (&node.children[0], &node.children[1]);
            let l_cols = pairs
                .iter()
                .map(|p| left.schema.index_of(&p.left))
                .collect::<Result<Vec<_>>>()?;
            let r_cols = pairs
                .iter()
                .map(|p| right.schema.index_of(&p.right))
                .collect::<Result<Vec<_>>>()?;
            // Both inputs are produced by their own worker sets and hashed
            // across the join workers: worker `p` builds from — and probes
            // with — partition `p` only (disjoint key sets, so per-partition
            // joins compose by union).
            let build = repartition(
                fragments(left, ctx, false)?,
                l_cols.clone(),
                ctx.workers,
                ctx.batch,
                left.schema.clone(),
                ctx.metrics.clone(),
            );
            let probe = repartition(
                fragments(right, ctx, false)?,
                r_cols.clone(),
                ctx.workers,
                ctx.batch,
                right.schema.clone(),
                ctx.metrics.clone(),
            );
            build
                .into_iter()
                .zip(probe)
                .map(|(b, p)| {
                    let op: BoxOp = Box::new(HashJoin::new(
                        Box::new(b),
                        Box::new(p),
                        KeySpec::new(l_cols.clone()),
                        KeySpec::new(r_cols.clone()),
                        *kind,
                    ));
                    Fragment::new(op)
                })
                .collect()
        }
        other => {
            return Err(PyroError::Plan(format!(
                "fragments() on non-parallel-safe operator {}",
                other.name()
            )))
        }
    };
    let mut frags: Vec<Fragment> = frags;
    for f in &mut frags {
        f.op.set_batch_size(ctx.batch);
    }
    Ok(frags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{JoinPair, LogicalPlan};
    use crate::optimizer::Optimizer;
    use pyro_common::{Schema, Tuple, Value};
    use pyro_ordering::SortOrder;

    fn catalog(rows: usize) -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..rows as i64)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .collect();
        cat.register_table("t", Schema::ints(&["k", "g"]), SortOrder::new(["k"]), &rows)
            .unwrap();
        cat
    }

    #[test]
    fn parallel_scan_matches_serial_rows_and_counters() {
        let cat = catalog(5_000);
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.filter(s, crate::logical::NExpr::col_eq_lit("t.g", 3i64));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let serial = plan.execute(&cat).unwrap();
        for workers in [2, 4] {
            let par = plan
                .compile_with_workers(&cat, 256, workers)
                .unwrap()
                .run()
                .unwrap();
            let mut a = serial.rows.clone();
            let mut b = par.rows.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "workers={workers}");
            assert_eq!(serial.metrics.comparisons(), par.metrics.comparisons());
            assert_eq!(serial.metrics.run_io(), par.metrics.run_io());
        }
    }

    #[test]
    fn parallel_ordered_scan_is_sequence_exact() {
        let cat = catalog(5_000);
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        // ORDER BY (g, k): a partial sort (breaker) over the clustered scan
        // — the scan below it must arrive in exact serial sequence.
        p.order_by(s, SortOrder::new(["t.g", "t.k"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let serial = plan.execute(&cat).unwrap();
        for workers in [2, 4] {
            let par = plan
                .compile_with_workers(&cat, 256, workers)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(serial.rows, par.rows, "ordered output must be exact");
            assert_eq!(
                serial.metrics.comparisons(),
                par.metrics.comparisons(),
                "sort comparisons depend on input sequence; must match serial"
            );
        }
    }

    #[test]
    fn parallel_hash_join_partitions_match_serial() {
        let cat = catalog(3_000);
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t", "a");
        let b = p.scan_as("t", "b");
        p.join(a, b, vec![JoinPair::new("a.g", "b.g")]);
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        assert!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::HashJoin { .. }))
                > 0,
            "test premise: plan uses a hash join\n{}",
            plan.explain()
        );
        let serial = plan.execute(&cat).unwrap();
        let par = plan
            .compile_with_workers(&cat, 256, 4)
            .unwrap()
            .run()
            .unwrap();
        let mut a = serial.rows.clone();
        let mut b = par.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(serial.metrics.comparisons(), par.metrics.comparisons());
    }

    #[test]
    fn order_by_satisfied_by_clustering_stays_sorted() {
        // The paper's hallmark free-order case: ORDER BY on the clustering
        // key compiles to a bare scan with NO sort enforcer, so the
        // sequence demand starts at the plan root — parallel execution must
        // use the order-preserving merge, not an arrival-order gather.
        let cat = catalog(5_000);
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.order_by(s, SortOrder::new(["t.k"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::Sort { .. } | PhysOp::PartialSort { .. })),
            0,
            "test premise: clustering satisfies the ORDER BY, no enforcer\n{}",
            plan.explain()
        );
        let serial = plan.execute(&cat).unwrap();
        for workers in [2, 4] {
            let par = plan
                .compile_with_workers(&cat, 256, workers)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(
                serial.rows, par.rows,
                "workers={workers}: enforcer-free ORDER BY must stay sorted"
            );
        }
    }

    #[test]
    fn workers_one_is_the_serial_path() {
        let cat = catalog(500);
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.order_by(s, SortOrder::new(["t.g", "t.k"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let a = plan.compile_with_batch(&cat, 256).unwrap().run().unwrap();
        let b = plan
            .compile_with_workers(&cat, 256, 1)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.metrics.comparisons(), b.metrics.comparisons());
    }
}
