//! Equality-prefix extraction for page-bounded ("seek") scans.
//!
//! A filter directly above a scan of a sorted file can be compiled over a
//! binary-searched page range when its predicate pins, by equality against
//! constants, a prefix of the file's sort order
//! ([`pyro_exec::scan::eq_key_page_range`]). The filter always stays in the
//! plan as the residual, so extraction here only has to be *sound* — never
//! claim an equality that isn't one — not complete: a missed conjunct
//! merely scans more pages.
//!
//! The optimizer uses [`eq_prefix_len`] to discount access paths the
//! predicate can seek on (parameter values are unknown at planning time but
//! are known to be *some* constant); the compiler uses [`eq_prefix_values`]
//! with the bound parameters to compute the actual search key.

use crate::logical::NExpr;
use pyro_common::Value;
use pyro_exec::CmpOp;
use pyro_ordering::SortOrder;

/// Collects `col = constant` conjuncts from a top-level AND tree.
fn eq_conjuncts<'a>(pred: &'a NExpr, out: &mut Vec<(&'a str, &'a NExpr)>) {
    match pred {
        NExpr::And(terms) => {
            for t in terms {
                eq_conjuncts(t, out);
            }
        }
        NExpr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (NExpr::Col(c), v @ (NExpr::Lit(_) | NExpr::Param(_)))
            | (v @ (NExpr::Lit(_) | NExpr::Param(_)), NExpr::Col(c)) => out.push((c, v)),
            _ => {}
        },
        _ => {}
    }
}

/// Number of leading attributes of `order` the predicate pins by equality
/// to a literal or parameter.
pub(crate) fn eq_prefix_len(pred: &NExpr, order: &SortOrder) -> usize {
    let mut eqs = Vec::new();
    eq_conjuncts(pred, &mut eqs);
    order
        .attrs()
        .iter()
        .take_while(|a| eqs.iter().any(|(c, _)| *c == a.as_str()))
        .count()
}

/// The pinned constants for the longest equality prefix of `order`, with
/// parameters resolved against `params`. A NULL "equality" ends the prefix:
/// `col = NULL` matches nothing under SQL semantics while NULL *sorts* like
/// a value, so seeking on it would follow the wrong semantics. An unbound
/// parameter ends it too — compilation will reject the plan anyway, with a
/// better error than anything this function could produce.
pub(crate) fn eq_prefix_values(pred: &NExpr, order: &SortOrder, params: &[Value]) -> Vec<Value> {
    let mut eqs = Vec::new();
    eq_conjuncts(pred, &mut eqs);
    let mut key = Vec::new();
    for a in order.attrs() {
        let v = match eqs.iter().find(|(c, _)| *c == a.as_str()) {
            Some((_, NExpr::Lit(v))) => v.clone(),
            Some((_, NExpr::Param(i))) => match params.get(*i) {
                Some(v) => v.clone(),
                None => break,
            },
            _ => break,
        };
        if v.is_null() {
            break;
        }
        key.push(v);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order() -> SortOrder {
        SortOrder::new(["t.a", "t.b", "t.c"])
    }

    #[test]
    fn literal_prefix_both_operand_orders() {
        let p = NExpr::And(vec![
            NExpr::Cmp(
                CmpOp::Eq,
                Box::new(NExpr::Lit(Value::Int(2))),
                Box::new(NExpr::Col("t.b".into())),
            ),
            NExpr::col_eq_lit("t.a", 1i64),
        ]);
        assert_eq!(eq_prefix_len(&p, &order()), 2);
        assert_eq!(
            eq_prefix_values(&p, &order(), &[]),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn gap_in_the_prefix_stops_it() {
        // a and c pinned, b free: only the 1-attr prefix seeks.
        let p = NExpr::And(vec![
            NExpr::col_eq_lit("t.a", 1i64),
            NExpr::col_eq_lit("t.c", 3i64),
        ]);
        assert_eq!(eq_prefix_len(&p, &order()), 1);
        assert_eq!(eq_prefix_values(&p, &order(), &[]), vec![Value::Int(1)]);
    }

    #[test]
    fn non_equality_and_col_col_terms_do_not_count() {
        let range = NExpr::Cmp(
            CmpOp::Le,
            Box::new(NExpr::Col("t.a".into())),
            Box::new(NExpr::Lit(Value::Int(5))),
        );
        assert_eq!(eq_prefix_len(&range, &order()), 0);
        let col_col = NExpr::Cmp(
            CmpOp::Eq,
            Box::new(NExpr::Col("t.a".into())),
            Box::new(NExpr::Col("t.b".into())),
        );
        assert_eq!(eq_prefix_len(&col_col, &order()), 0);
        assert!(eq_prefix_values(&col_col, &order(), &[]).is_empty());
    }

    #[test]
    fn params_count_at_plan_time_and_bind_at_compile_time() {
        let p = NExpr::And(vec![
            NExpr::col_eq_lit("t.a", 7i64),
            NExpr::Cmp(
                CmpOp::Eq,
                Box::new(NExpr::Col("t.b".into())),
                Box::new(NExpr::Param(0)),
            ),
        ]);
        assert_eq!(eq_prefix_len(&p, &order()), 2);
        assert_eq!(
            eq_prefix_values(&p, &order(), &[Value::Int(9)]),
            vec![Value::Int(7), Value::Int(9)]
        );
        // Unbound: the prefix stops before the parameter.
        assert_eq!(eq_prefix_values(&p, &order(), &[]), vec![Value::Int(7)]);
        // NULL binding: `b = NULL` matches nothing; never seek on it.
        assert_eq!(
            eq_prefix_values(&p, &order(), &[Value::Null]),
            vec![Value::Int(7)]
        );
    }
}
