//! The Volcano-style search (§3.2 + §5.2.1).
//!
//! An optimization goal is a pair `(logical node, required output order)`.
//! For each goal the optimizer enumerates the physical alternatives, adds a
//! (partial) sort enforcer wherever an alternative's guaranteed order does
//! not subsume the requirement, and memoizes the cheapest result. The
//! interesting orders tried at merge joins and sort aggregates come from the
//! configured [`Strategy`].

use crate::cost::{CostParams, SearchStats};
use crate::equiv::EquivMap;
use crate::favorable::{compute_afm, lcp_with_set_equiv};
use crate::logical::{JoinPair, LogicalOp, LogicalPlan, NExpr, NodeId};
use crate::memo::{EnumStrategy, DEFAULT_INTERESTING_ORDER_CAP, DEFAULT_JOIN_ENUM_THRESHOLD};
use crate::plan::{PhysNode, PhysOp};
use crate::stats::{derive_stats, NodeStats};
use crate::strategy::Strategy;
use pyro_catalog::Catalog;
use pyro_common::{PyroError, Result, Schema};
use pyro_ordering::{AttrSet, SortOrder};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The optimizer facade.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    strategy: Strategy,
    params: CostParams,
    enable_hash: bool,
    enum_strategy: EnumStrategy,
    join_enum_threshold: usize,
    interesting_cap: usize,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer with the paper's full machinery (`PYRO-O`).
    /// The sort-memory budget `M` is taken from the catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        let params = CostParams {
            block_size: catalog.device().block_size(),
            sort_mem_blocks: catalog.sort_memory_blocks() as f64,
            // 0 (= charge everything cold) when the catalog's store
            // bypasses the pool.
            buffer_pool_pages: catalog.store().pool_pages().unwrap_or(0) as f64,
            ..CostParams::default()
        };
        Optimizer {
            catalog,
            strategy: Strategy::pyro_o(),
            params,
            enable_hash: true,
            enum_strategy: EnumStrategy::default(),
            join_enum_threshold: DEFAULT_JOIN_ENUM_THRESHOLD,
            interesting_cap: DEFAULT_INTERESTING_ORDER_CAP,
        }
    }

    /// Selects a different interesting-order strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides cost-model constants.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Enables or disables hash join / hash aggregate alternatives.
    ///
    /// The paper's PYRO prototype explores sort-based plans (its Experiment
    /// B3 gaps presume no hash fallback); benches reproducing Fig. 15 turn
    /// hashing off, while the default keeps the modern full plan space.
    pub fn with_hash(mut self, enable: bool) -> Self {
        self.enable_hash = enable;
        self
    }

    /// Selects the plan-space enumerator (default: [`EnumStrategy::Memo`]).
    /// Orthogonal to [`Optimizer::with_strategy`]: every enumerator runs
    /// the same goal solver over the same candidate orders.
    pub fn with_enum_strategy(mut self, enum_strategy: EnumStrategy) -> Self {
        self.enum_strategy = enum_strategy;
        self
    }

    /// Inner-join region size (in leaf inputs) above which the memo
    /// enumerator re-shapes the region with the cardinality-free heuristic
    /// instead of enumerating the given shape (default:
    /// [`DEFAULT_JOIN_ENUM_THRESHOLD`]). Ignored by
    /// [`EnumStrategy::Exhaustive`].
    pub fn with_join_enum_threshold(mut self, threshold: usize) -> Self {
        self.join_enum_threshold = threshold;
        self
    }

    /// Caps the non-ε interesting orders the bottom-up prefill collects per
    /// memo group (default: [`DEFAULT_INTERESTING_ORDER_CAP`]); overflow is
    /// counted in [`SearchStats::truncated`], never changes plans.
    pub fn with_interesting_cap(mut self, cap: usize) -> Self {
        self.interesting_cap = cap;
        self
    }

    /// Optimizes a logical plan into a physical plan.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<OptimizedPlan> {
        let start = Instant::now();
        // Memo / Heuristic may re-shape oversized inner-join regions first;
        // `reorder_joins` returns None when nothing qualifies, keeping the
        // original plan — and its exact plans, costs and counters.
        let mut reordered_joins = 0u64;
        let owned;
        let plan = match self.enum_strategy {
            EnumStrategy::Exhaustive => plan,
            EnumStrategy::Memo | EnumStrategy::Heuristic => {
                let threshold = match self.enum_strategy {
                    EnumStrategy::Heuristic => 2,
                    _ => self.join_enum_threshold,
                };
                match crate::joingraph::reorder_joins(plan, self.catalog, threshold)? {
                    Some((p, n)) => {
                        reordered_joins = n;
                        owned = p;
                        &owned
                    }
                    None => plan,
                }
            }
        };
        let mut ctx = Ctx::build(
            plan,
            self.catalog,
            self.strategy,
            self.params,
            HashMap::new(),
        )?;
        ctx.enable_hash = self.enable_hash;
        ctx.interesting_cap = self.interesting_cap;
        let ctx = ctx;
        if !matches!(self.enum_strategy, EnumStrategy::Exhaustive) {
            crate::memo::prefill(&ctx, plan.root(), &SortOrder::empty())?;
        }
        let mut best = best_plan(&ctx, plan.root(), &SortOrder::empty())?;
        if self.strategy.refine {
            if let Some(better) = crate::refine::refine(&ctx, self, plan, &best)? {
                best = better;
            }
        }
        let search = *ctx.search.borrow();
        Ok(OptimizedPlan {
            root: best,
            strategy: self.strategy,
            ordered_output: output_is_ordered(plan),
            planning: PlanningInfo {
                enumerator: self.enum_strategy,
                groups: search.groups,
                candidates: search.candidates,
                truncated: search.truncated,
                reordered_joins,
                elapsed: start.elapsed(),
            },
        })
    }

    /// Re-optimizes with specific merge-join orders pinned (phase-2 uses
    /// this to apply reworked orders).
    pub(crate) fn optimize_forced(
        &self,
        plan: &LogicalPlan,
        forced: HashMap<NodeId, SortOrder>,
    ) -> Result<OptimizedPlan> {
        let mut ctx = Ctx::build(plan, self.catalog, self.strategy, self.params, forced)?;
        ctx.enable_hash = self.enable_hash;
        let best = best_plan(&ctx, plan.root(), &SortOrder::empty())?;
        // Internal re-search: refinement only reads root + cost, so the
        // accounting stays default (the caller keeps its own).
        Ok(OptimizedPlan {
            root: best,
            strategy: self.strategy,
            ordered_output: output_is_ordered(plan),
            planning: PlanningInfo::default(),
        })
    }
}

/// True iff the query demands ordered output: lowering places the ORDER BY
/// `Sort` at the logical root, optionally under a `Limit`. This is the
/// *requirement*; a physical plan may additionally *guarantee* an order the
/// query never asked for (a clustered scan), which costs nothing to ignore.
fn output_is_ordered(plan: &LogicalPlan) -> bool {
    let mut id = plan.root();
    loop {
        match plan.node(id) {
            LogicalOp::Limit { input, .. } => id = *input,
            LogicalOp::Sort { .. } => return true,
            _ => return false,
        }
    }
}

/// How one plan was found: the enumerator that planned it, the search's
/// enumeration accounting, and the planning wall-clock. Rides on every
/// [`OptimizedPlan`]; a plan served from the plan cache carries the info
/// of the run that originally produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanningInfo {
    /// The enumerator that planned the query.
    pub enumerator: EnumStrategy,
    /// Memo groups solved (see [`SearchStats::groups`]).
    pub groups: u64,
    /// Physical candidates enumerated (see [`SearchStats::candidates`]).
    pub candidates: u64,
    /// Interesting-order goals dropped from the prefill by the per-group
    /// cap (see [`SearchStats::truncated`]); plans are unaffected.
    pub truncated: u64,
    /// Join nodes rebuilt by the cardinality-free re-shape (0 when the
    /// plan kept its given shape).
    pub reordered_joins: u64,
    /// Planning wall-clock, including refinement. Excluded from rendered
    /// explain text so equal plans explain identically.
    pub elapsed: Duration,
}

impl Default for PlanningInfo {
    fn default() -> PlanningInfo {
        PlanningInfo {
            enumerator: EnumStrategy::default(),
            groups: 0,
            candidates: 0,
            truncated: 0,
            reordered_joins: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// Result of optimization.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen physical plan.
    pub root: Arc<PhysNode>,
    /// Strategy that produced it.
    pub strategy: Strategy,
    /// Whether the query demands ordered output (it had an ORDER BY). The
    /// parallel compiler preserves the root sequence exactly when this is
    /// set, and is free to gather in arrival order when it is not — even if
    /// the chosen plan incidentally guarantees an order.
    pub ordered_output: bool,
    /// How the plan was found: enumerator, search accounting, planning
    /// time.
    pub planning: PlanningInfo,
}

impl OptimizedPlan {
    /// Total estimated cost in I/O units.
    pub fn cost(&self) -> f64 {
        self.root.cost
    }

    /// Pretty-printed plan tree.
    pub fn explain(&self) -> String {
        self.root.explain()
    }

    /// Compiles to a runnable operator [`pyro_exec::Pipeline`] at the
    /// default batch size.
    pub fn compile(&self, catalog: &Catalog) -> Result<pyro_exec::Pipeline> {
        crate::compile::compile(&self.root, catalog)
    }

    /// Compiles for `workers`-thread execution: parallel-safe subtrees run
    /// as morsel-driven worker fragments behind exchange operators, with
    /// per-worker metrics merged back deterministically. `workers = 1` is
    /// exactly the serial path.
    pub fn compile_with_workers(
        &self,
        catalog: &Catalog,
        batch_size: usize,
        workers: usize,
    ) -> Result<pyro_exec::Pipeline> {
        crate::compile::compile_with_workers_demand(
            &self.root,
            catalog,
            batch_size,
            workers,
            self.ordered_output,
        )
    }

    /// Compiles for `workers`-thread execution with prepared-statement
    /// parameter values bound: every `NExpr::Param(i)` in the plan becomes
    /// the literal `params[i]` in the compiled operators, so one optimized
    /// plan serves every binding. Pass `&[]` for literal SQL.
    pub fn compile_bound(
        &self,
        catalog: &Catalog,
        batch_size: usize,
        workers: usize,
        params: &[pyro_common::Value],
    ) -> Result<pyro_exec::Pipeline> {
        crate::compile::compile_bound(
            &self.root,
            catalog,
            batch_size,
            workers,
            self.ordered_output,
            params,
        )
    }

    /// [`Self::compile_bound`] with the columnar-execution knob explicit:
    /// `columnar = false` forces the row-at-a-time batch implementations
    /// (the `SessionBuilder::columnar(false)` escape hatch and the
    /// reference side of A/B comparisons); `true` is what every other
    /// compile entry does.
    pub fn compile_bound_columnar(
        &self,
        catalog: &Catalog,
        batch_size: usize,
        workers: usize,
        params: &[pyro_common::Value],
        columnar: bool,
    ) -> Result<pyro_exec::Pipeline> {
        crate::compile::compile_bound_columnar(
            &self.root,
            catalog,
            batch_size,
            workers,
            self.ordered_output,
            params,
            columnar,
        )
    }

    /// Compiles with an explicit batch granularity (rows exchanged per
    /// `next_batch` call throughout the pipeline).
    pub fn compile_with_batch(
        &self,
        catalog: &Catalog,
        batch_size: usize,
    ) -> Result<pyro_exec::Pipeline> {
        crate::compile::compile_with_batch(&self.root, catalog, batch_size)
    }

    /// Compiles and drains the pipeline; the returned [`pyro_exec::Rows`]
    /// carries the rows and the metrics that produced them.
    pub fn execute(&self, catalog: &Catalog) -> Result<pyro_exec::Rows> {
        self.compile(catalog)?.run()
    }
}

/// Everything a single optimization run needs.
pub(crate) struct Ctx<'a> {
    pub plan: &'a LogicalPlan,
    pub catalog: &'a Catalog,
    pub stats: Vec<NodeStats>,
    pub schemas: Vec<Schema>,
    pub afm: Vec<Vec<SortOrder>>,
    pub equiv: EquivMap,
    pub params: CostParams,
    pub strategy: Strategy,
    pub forced: HashMap<NodeId, SortOrder>,
    pub enable_hash: bool,
    /// Per-memo-group cap on non-ε interesting orders collected by the
    /// bottom-up prefill (see [`crate::memo`]).
    pub interesting_cap: usize,
    /// Enumeration accounting for this run.
    pub search: RefCell<SearchStats>,
    memo: RefCell<Memo>,
}

/// Memo table: goal (node id, rep-normalized required order) → best plan.
type Memo = HashMap<(NodeId, Vec<String>), Arc<PhysNode>>;

impl<'a> Ctx<'a> {
    pub(crate) fn build(
        plan: &'a LogicalPlan,
        catalog: &'a Catalog,
        strategy: Strategy,
        params: CostParams,
        forced: HashMap<NodeId, SortOrder>,
    ) -> Result<Ctx<'a>> {
        // Equivalences from join pairs and col=col equality filters.
        let equiv = crate::joingraph::collect_equivs(plan);
        // Columns referenced per alias (covering-index checks).
        let mut referenced: HashMap<String, AttrSet> = HashMap::new();
        for col in plan.referenced_columns() {
            if let Some((alias, _)) = col.split_once('.') {
                referenced
                    .entry(alias.to_string())
                    .or_default()
                    .insert(col.clone());
            }
        }
        let stats = derive_stats(plan, catalog)?;
        let resolver = |table: &str, alias: &str| -> Result<Schema> {
            Ok(catalog.table(table)?.meta.schema.qualify(alias))
        };
        let schemas: Vec<Schema> = (0..plan.len())
            .map(|id| plan.schema(id, &resolver))
            .collect::<Result<_>>()?;
        let afm = compute_afm(plan, catalog, &equiv, &referenced)?;
        Ok(Ctx {
            plan,
            catalog,
            stats,
            schemas,
            afm,
            equiv,
            params,
            strategy,
            forced,
            enable_hash: true,
            interesting_cap: DEFAULT_INTERESTING_ORDER_CAP,
            search: RefCell::new(SearchStats::default()),
            memo: RefCell::new(HashMap::new()),
        })
    }

    /// True iff `have` guarantees `need` (prefix under equivalence).
    pub(crate) fn satisfies(&self, have: &SortOrder, need: &SortOrder) -> bool {
        need.len() <= have.len()
            && need
                .attrs()
                .iter()
                .zip(have.attrs())
                .all(|(n, h)| self.equiv.same(n, h))
    }

    pub(crate) fn memo_key(&self, id: NodeId, required: &SortOrder) -> (NodeId, Vec<String>) {
        (
            id,
            required.attrs().iter().map(|a| self.equiv.rep(a)).collect(),
        )
    }
}

/// Maps an order into the name space of `names` (longest prefix whose
/// attributes are equivalent to members of `names`, emitted as those
/// members).
fn project_order_to_names(order: &SortOrder, names: &AttrSet, equiv: &EquivMap) -> SortOrder {
    let rep_to_name: HashMap<String, String> = names
        .iter()
        .map(|n| (equiv.rep(n), n.to_string()))
        .collect();
    let mut out: Vec<String> = Vec::new();
    for a in order.attrs() {
        match rep_to_name.get(&equiv.rep(a)) {
            Some(n) if !out.contains(n) => out.push(n.clone()),
            _ => break,
        }
    }
    SortOrder::new(out)
}

/// The memoized goal solver: cheapest plan for `(id, required)`.
pub(crate) fn best_plan(ctx: &Ctx, id: NodeId, required: &SortOrder) -> Result<Arc<PhysNode>> {
    let key = ctx.memo_key(id, required);
    if let Some(hit) = ctx.memo.borrow().get(&key) {
        return Ok(hit.clone());
    }
    let candidates = gen_candidates(ctx, id, required)?;
    {
        let mut search = ctx.search.borrow_mut();
        search.groups += 1;
        search.candidates += candidates.len() as u64;
    }
    let mut best: Option<Arc<PhysNode>> = None;
    for cand in candidates {
        let finished = enforce(ctx, id, cand, required);
        if best.as_ref().is_none_or(|b| finished.cost < b.cost) {
            best = Some(finished);
        }
    }
    let best = best.ok_or_else(|| {
        PyroError::Plan(format!(
            "no physical plan for node {id} with order {required}"
        ))
    })?;
    ctx.memo.borrow_mut().insert(key, best.clone());
    Ok(best)
}

/// Adds a (partial) sort enforcer if the candidate does not already satisfy
/// the requirement (§3.2).
fn enforce(ctx: &Ctx, id: NodeId, cand: Arc<PhysNode>, required: &SortOrder) -> Arc<PhysNode> {
    if required.is_empty() || ctx.satisfies(&cand.out_order, required) {
        return cand;
    }
    let stats = &ctx.stats[id];
    let have = if ctx.strategy.partial_enforcers {
        cand.out_order.clone()
    } else {
        // Exact-match-only optimizers re-sort from scratch.
        SortOrder::empty()
    };
    let (coe, k) = ctx
        .params
        .coe_order(stats, &have, required, |a, b| ctx.equiv.same(a, b));
    let op = if k > 0 {
        PhysOp::PartialSort {
            prefix_len: k,
            target: required.clone(),
        }
    } else {
        PhysOp::Sort {
            target: required.clone(),
        }
    };
    Arc::new(PhysNode {
        op,
        schema: cand.schema.clone(),
        out_order: required.clone(),
        cost: cand.cost + coe,
        rows: cand.rows,
        logical: id,
        children: vec![cand],
    })
}

/// Enumerates the physical alternatives for one logical node.
fn gen_candidates(ctx: &Ctx, id: NodeId, required: &SortOrder) -> Result<Vec<Arc<PhysNode>>> {
    let stats = &ctx.stats[id];
    let mut out: Vec<Arc<PhysNode>> = Vec::new();
    match ctx.plan.node(id) {
        LogicalOp::Scan { table, alias } => {
            let handle = ctx.catalog.table(table)?;
            let schema = handle.meta.schema.qualify(alias);
            let heap_blocks = handle.heap.block_count().max(1) as f64;
            if handle.meta.clustering.is_empty() {
                out.push(Arc::new(PhysNode {
                    op: PhysOp::TableScan {
                        table: table.clone(),
                        alias: alias.clone(),
                    },
                    children: vec![],
                    schema: schema.clone(),
                    out_order: SortOrder::empty(),
                    cost: heap_blocks,
                    rows: stats.rows,
                    logical: id,
                }));
            } else {
                out.push(Arc::new(PhysNode {
                    op: PhysOp::ClusteredIndexScan {
                        table: table.clone(),
                        alias: alias.clone(),
                    },
                    children: vec![],
                    schema: schema.clone(),
                    out_order: handle.meta.clustering.rename(|a| format!("{alias}.{a}")),
                    cost: heap_blocks,
                    rows: stats.rows,
                    logical: id,
                }));
            }
            for idx in &handle.meta.indexes {
                let Some(file) = handle.index_files.get(&idx.name) else {
                    continue;
                };
                // Only indices that cover this alias's referenced columns
                // were admitted to afm; for scan candidates we re-check
                // against the full query's referenced set.
                let entry_cols = idx.entry_columns();
                let referenced: Vec<String> = ctx
                    .plan
                    .referenced_columns()
                    .into_iter()
                    .filter(|c| c.starts_with(&format!("{alias}.")))
                    .map(|c| c.rsplit('.').next().unwrap_or(&c).to_string())
                    .collect();
                if !referenced.iter().all(|c| entry_cols.contains(c)) {
                    continue;
                }
                let entry_schema = Schema::new(
                    entry_cols
                        .iter()
                        .map(|c| {
                            let i = handle.meta.schema.index_of(c)?;
                            Ok(pyro_common::Column::new(
                                format!("{alias}.{c}"),
                                handle.meta.schema.column(i).ty,
                            ))
                        })
                        .collect::<Result<Vec<_>>>()?,
                );
                out.push(Arc::new(PhysNode {
                    op: PhysOp::CoveringIndexScan {
                        table: table.clone(),
                        alias: alias.clone(),
                        index: idx.name.clone(),
                    },
                    children: vec![],
                    schema: entry_schema,
                    out_order: idx.key.rename(|a| format!("{alias}.{a}")),
                    cost: file.block_count().max(1) as f64,
                    rows: stats.rows,
                    logical: id,
                }));
            }
        }
        LogicalOp::Filter { input, predicate } => {
            for goal in child_goals(ctx, *input, required) {
                let child = best_plan(ctx, *input, &goal)?;
                out.push(Arc::new(PhysNode {
                    op: PhysOp::Filter {
                        predicate: predicate.clone(),
                    },
                    schema: child.schema.clone(),
                    out_order: child.out_order.clone(),
                    cost: child.cost + ctx.params.tuple_io * ctx.stats[*input].rows,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
            // A filter directly over a sorted-file scan compiles to a
            // binary-searched page range when the predicate pins an
            // equality prefix of the scan's order (the filter stays as the
            // residual — see `compile::compile_filter_child`). Offer each
            // access path again with the seek discount, so a selective
            // point predicate can pick the path it seeks on even when that
            // path loses on a full scan — typically the covering index
            // beating the clustered heap.
            if matches!(ctx.plan.node(*input), LogicalOp::Scan { .. }) {
                let in_stats = &ctx.stats[*input];
                for scan in gen_candidates(ctx, *input, &SortOrder::empty())? {
                    let k = crate::seek::eq_prefix_len(predicate, &scan.out_order);
                    if k == 0 {
                        continue;
                    }
                    let sel = (1.0
                        / in_stats
                            .distinct_of(scan.out_order.attrs()[..k].iter().map(String::as_str)))
                    .min(1.0);
                    // O(log P) opening-tuple probes, then the surviving pages.
                    let probes = scan.cost.max(2.0).log2().ceil();
                    let seek_cost = (scan.cost * sel + probes).max(1.0);
                    if seek_cost >= scan.cost {
                        continue; // the discount doesn't pay for the probes
                    }
                    let rows_in = (in_stats.rows * sel).max(1.0);
                    let bounded = Arc::new(PhysNode {
                        op: scan.op.clone(),
                        children: vec![],
                        schema: scan.schema.clone(),
                        out_order: scan.out_order.clone(),
                        cost: seek_cost,
                        rows: rows_in,
                        logical: *input,
                    });
                    out.push(Arc::new(PhysNode {
                        op: PhysOp::Filter {
                            predicate: predicate.clone(),
                        },
                        schema: bounded.schema.clone(),
                        out_order: bounded.out_order.clone(),
                        cost: seek_cost + ctx.params.tuple_io * rows_in,
                        rows: stats.rows,
                        logical: id,
                        children: vec![bounded],
                    }));
                }
            }
        }
        LogicalOp::Project { input, items } => {
            // Pass-through column names survive the projection; an order is
            // preserved up to its first dropped column.
            let kept = project_kept(items);
            for goal in child_goals(ctx, *input, &required.lcp_with_set(&kept)) {
                let child = best_plan(ctx, *input, &goal)?;
                let schema = Schema::new(
                    items
                        .iter()
                        .map(|it| {
                            pyro_common::Column::new(
                                it.name.clone(),
                                it.expr.data_type(&child.schema),
                            )
                        })
                        .collect(),
                );
                out.push(Arc::new(PhysNode {
                    op: PhysOp::Project {
                        items: items.clone(),
                    },
                    schema,
                    out_order: child.out_order.lcp_with_set(&kept),
                    cost: child.cost + ctx.params.tuple_io * ctx.stats[*input].rows,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
        }
        LogicalOp::Join {
            left,
            right,
            kind,
            pairs,
        } => {
            for (l_goal, r_goal) in join_merge_goals(ctx, id, *left, *right, pairs, required) {
                let lchild = best_plan(ctx, *left, &l_goal)?;
                let rchild = best_plan(ctx, *right, &r_goal)?;
                let cost = lchild.cost
                    + rchild.cost
                    + ctx.params.tuple_io * (ctx.stats[*left].rows + ctx.stats[*right].rows);
                out.push(Arc::new(PhysNode {
                    op: PhysOp::MergeJoin {
                        kind: *kind,
                        pairs: pairs.clone(),
                        order: l_goal.clone(),
                    },
                    schema: lchild.schema.join(&rchild.schema),
                    out_order: l_goal,
                    cost,
                    rows: stats.rows,
                    logical: id,
                    children: vec![lchild, rchild],
                }));
            }
            // Full outer joins are merge-only: none of the systems the
            // paper measured implemented hash (or nested-loops) full outer
            // joins — SYS2 had to rewrite FO joins as a union of two left
            // outer joins — and the coordinated-order findings of
            // Experiment B2 rest on that reality.
            if !ctx.forced.contains_key(&id) && join_hashable(ctx, kind) {
                // Hash join (build = left).
                let lchild = best_plan(ctx, *left, &SortOrder::empty())?;
                let rchild = best_plan(ctx, *right, &SortOrder::empty())?;
                let (bl, br) = (
                    ctx.stats[*left].blocks(ctx.params.block_size),
                    ctx.stats[*right].blocks(ctx.params.block_size),
                );
                let mut cost = lchild.cost
                    + rchild.cost
                    + ctx.params.hash_io * (ctx.stats[*left].rows + ctx.stats[*right].rows);
                if bl > ctx.params.sort_mem_blocks {
                    cost += 2.0 * (bl + br); // grace partitioning round-trip
                }
                out.push(Arc::new(PhysNode {
                    op: PhysOp::HashJoin {
                        kind: *kind,
                        pairs: pairs.clone(),
                    },
                    schema: lchild.schema.join(&rchild.schema),
                    out_order: SortOrder::empty(),
                    cost,
                    rows: stats.rows,
                    logical: id,
                    children: vec![lchild, rchild],
                }));
                // Nested loops: propagates the outer (left) order — the
                // property afm rule 4 relies on.
                let lc = best_plan(ctx, *left, &SortOrder::empty())?;
                let rc = best_plan(ctx, *right, &SortOrder::empty())?;
                let nl_cost = lc.cost
                    + rc.cost
                    + ctx.params.cmp_io * ctx.stats[*left].rows * ctx.stats[*right].rows;
                out.push(Arc::new(PhysNode {
                    op: PhysOp::NestedLoopsJoin {
                        kind: *kind,
                        pairs: pairs.clone(),
                    },
                    schema: lc.schema.join(&rc.schema),
                    out_order: lc.out_order.clone(),
                    cost: nl_cost,
                    rows: stats.rows,
                    logical: id,
                    children: vec![lc, rc],
                }));
            }
        }
        LogicalOp::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let l: AttrSet = group_by.iter().cloned().collect();
            for q in grouping_goal_orders(ctx, *input, &l, required) {
                let child = best_plan(ctx, *input, &q)?;
                out.push(Arc::new(PhysNode {
                    op: PhysOp::SortAggregate {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    schema: ctx.schemas[id].clone(),
                    out_order: q,
                    cost: child.cost + ctx.params.tuple_io * ctx.stats[*input].rows,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
            if ctx.enable_hash {
                let child = best_plan(ctx, *input, &SortOrder::empty())?;
                let b_in = ctx.stats[*input].blocks(ctx.params.block_size);
                let mut cost = child.cost + ctx.params.hash_io * ctx.stats[*input].rows;
                if b_in > ctx.params.sort_mem_blocks {
                    cost += 2.0 * b_in;
                }
                out.push(Arc::new(PhysNode {
                    op: PhysOp::HashAggregate {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    schema: ctx.schemas[id].clone(),
                    out_order: SortOrder::empty(),
                    cost,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
        }
        LogicalOp::Sort { input, order } => {
            // The ORDER BY is itself a goal: delegate to the child with the
            // target order; enforcement happens inside `best_plan`.
            out.push(best_plan(ctx, *input, order)?);
        }
        LogicalOp::Distinct { input } => {
            // DISTINCT over all columns: any permutation of the output
            // columns works for the streaming implementation — the same
            // factorial space as merge joins (paper §1).
            let l: AttrSet = ctx.schemas[id].names().into_iter().collect();
            for q in grouping_goal_orders(ctx, *input, &l, required) {
                let child = best_plan(ctx, *input, &q)?;
                out.push(Arc::new(PhysNode {
                    op: PhysOp::SortDistinct { order: q.clone() },
                    schema: ctx.schemas[id].clone(),
                    out_order: q,
                    cost: child.cost + ctx.params.tuple_io * ctx.stats[*input].rows,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
            if ctx.enable_hash {
                let child = best_plan(ctx, *input, &SortOrder::empty())?;
                let b_in = ctx.stats[*input].blocks(ctx.params.block_size);
                let mut cost = child.cost + ctx.params.hash_io * ctx.stats[*input].rows;
                if b_in > ctx.params.sort_mem_blocks {
                    cost += 2.0 * b_in;
                }
                out.push(Arc::new(PhysNode {
                    op: PhysOp::HashDistinct,
                    schema: ctx.schemas[id].clone(),
                    out_order: SortOrder::empty(),
                    cost,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
        }
        LogicalOp::Limit { input, k } => {
            // Order-preserving; the requirement flows through. A fully
            // pipelined child would let LIMIT terminate early, but costing
            // partial evaluation is out of scope — we keep the child's cost.
            for goal in child_goals(ctx, *input, required) {
                let child = best_plan(ctx, *input, &goal)?;
                out.push(Arc::new(PhysNode {
                    op: PhysOp::Limit { k: *k },
                    schema: child.schema.clone(),
                    out_order: child.out_order.clone(),
                    cost: child.cost,
                    rows: stats.rows,
                    logical: id,
                    children: vec![child],
                }));
            }
        }
    }
    Ok(out)
}

/// Goals worth trying for an order-preserving unary operator's child: the
/// requirement itself, nothing, and each favorable order of the child
/// (whose prefix a partial-sort enforcer above can exploit).
fn child_goals(ctx: &Ctx, child: NodeId, required: &SortOrder) -> Vec<SortOrder> {
    let mut goals = vec![SortOrder::empty()];
    if !required.is_empty() {
        goals.push(required.clone());
    }
    for o in &ctx.afm[child] {
        goals.push(o.clone());
    }
    // Dedup under rep-normalization.
    let mut seen = std::collections::HashSet::new();
    goals.retain(|g| {
        let key: Vec<String> = g.attrs().iter().map(|a| ctx.equiv.rep(a)).collect();
        seen.insert(key)
    });
    goals
}

/// Column names a projection passes through unchanged; an order survives
/// the projection up to its first dropped column.
fn project_kept(items: &[crate::logical::ProjItem]) -> AttrSet {
    items
        .iter()
        .filter(|it| matches!(&it.expr, NExpr::Col(c) if c == &it.name))
        .map(|it| it.name.clone())
        .collect()
}

/// Whether hash/nested-loops alternatives apply to a join of `kind` under
/// this run's configuration. Full outer joins are merge-only (see the
/// comment at the Join arm of [`gen_candidates`]).
fn join_hashable(ctx: &Ctx, kind: &pyro_exec::join::JoinKind) -> bool {
    ctx.enable_hash && !matches!(kind, pyro_exec::join::JoinKind::FullOuter)
}

/// The merge-join goal pairs `(left goal, right goal)` for join `id` —
/// one per candidate interesting order, with each representative mapped
/// back to concrete pair columns so the goals resolve on both sides.
/// Shared by [`gen_candidates`] and the bottom-up prefill
/// ([`crate::memo::prefill`]), so both traversals see the identical goal
/// closure.
fn join_merge_goals(
    ctx: &Ctx,
    id: NodeId,
    left: NodeId,
    right: NodeId,
    pairs: &[JoinPair],
    required: &SortOrder,
) -> Vec<(SortOrder, SortOrder)> {
    let s: AttrSet = pairs.iter().map(|p| ctx.equiv.rep(&p.left)).collect();
    // Favorable prefixes: afm(el, S) ∪ afm(er, S) ∪ {o ∧ S}.
    let mut prefixes: Vec<SortOrder> = ctx.afm[left]
        .iter()
        .chain(ctx.afm[right].iter())
        .map(|o| lcp_with_set_equiv(o, &s, &ctx.equiv))
        .filter(|o| !o.is_empty())
        .collect();
    let req_prefix = lcp_with_set_equiv(required, &s, &ctx.equiv);
    if !req_prefix.is_empty() {
        prefixes.push(req_prefix);
    }
    prefixes.sort();
    prefixes.dedup();
    let orders = match ctx.forced.get(&id) {
        Some(o) => vec![o.clone()],
        None => ctx.strategy.candidate_orders(&s, &prefixes),
    };
    // Map each representative attribute back to the concrete pair
    // columns: goals are then guaranteed to resolve on both sides.
    let rep_to_pair: HashMap<String, &JoinPair> = pairs
        .iter()
        .map(|pr| (ctx.equiv.rep(&pr.left), pr))
        .collect();
    let mut out = Vec::with_capacity(orders.len());
    for p in orders {
        let mut l_attrs = Vec::with_capacity(p.len());
        let mut r_attrs = Vec::with_capacity(p.len());
        let mut ok = true;
        for a in p.attrs() {
            match rep_to_pair.get(a) {
                Some(pair) => {
                    l_attrs.push(pair.left.clone());
                    r_attrs.push(pair.right.clone());
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.push((SortOrder::new(l_attrs), SortOrder::new(r_attrs)));
        }
    }
    out
}

/// The candidate input orders for a sort-based grouping operator (sort
/// aggregate / sort distinct) over grouping set `l` — favorable orders and
/// the requirement projected into the grouping columns, expanded by the
/// strategy. Shared by [`gen_candidates`] and the bottom-up prefill.
fn grouping_goal_orders(
    ctx: &Ctx,
    input: NodeId,
    l: &AttrSet,
    required: &SortOrder,
) -> Vec<SortOrder> {
    let mut prefixes: Vec<SortOrder> = ctx.afm[input]
        .iter()
        .map(|o| project_order_to_names(o, l, &ctx.equiv))
        .filter(|o| !o.is_empty())
        .collect();
    let req_prefix = project_order_to_names(required, l, &ctx.equiv);
    if !req_prefix.is_empty() {
        prefixes.push(req_prefix);
    }
    prefixes.sort();
    prefixes.dedup();
    ctx.strategy.candidate_orders(l, &prefixes)
}

/// The child goals solving `(id, required)` will request — exactly the
/// recursive `best_plan` calls [`gen_candidates`] makes, computed without
/// building any plans. This is what lets [`crate::memo::prefill`] collect
/// the goal closure top-down and then solve it bottom-up with results
/// identical to the on-demand recursion.
pub(crate) fn child_goal_requests(
    ctx: &Ctx,
    id: NodeId,
    required: &SortOrder,
) -> Result<Vec<(NodeId, SortOrder)>> {
    let mut out: Vec<(NodeId, SortOrder)> = Vec::new();
    match ctx.plan.node(id) {
        LogicalOp::Scan { .. } => {}
        LogicalOp::Filter { input, .. } | LogicalOp::Limit { input, .. } => {
            for goal in child_goals(ctx, *input, required) {
                out.push((*input, goal));
            }
        }
        LogicalOp::Project { input, items } => {
            let kept = project_kept(items);
            for goal in child_goals(ctx, *input, &required.lcp_with_set(&kept)) {
                out.push((*input, goal));
            }
        }
        LogicalOp::Join {
            left,
            right,
            kind,
            pairs,
        } => {
            for (l_goal, r_goal) in join_merge_goals(ctx, id, *left, *right, pairs, required) {
                out.push((*left, l_goal));
                out.push((*right, r_goal));
            }
            if !ctx.forced.contains_key(&id) && join_hashable(ctx, kind) {
                out.push((*left, SortOrder::empty()));
                out.push((*right, SortOrder::empty()));
            }
        }
        LogicalOp::Aggregate {
            input, group_by, ..
        } => {
            let l: AttrSet = group_by.iter().cloned().collect();
            for q in grouping_goal_orders(ctx, *input, &l, required) {
                out.push((*input, q));
            }
            if ctx.enable_hash {
                out.push((*input, SortOrder::empty()));
            }
        }
        LogicalOp::Sort { input, order } => {
            out.push((*input, order.clone()));
        }
        LogicalOp::Distinct { input } => {
            let l: AttrSet = ctx.schemas[id].names().into_iter().collect();
            for q in grouping_goal_orders(ctx, *input, &l, required) {
                out.push((*input, q));
            }
            if ctx.enable_hash {
                out.push((*input, SortOrder::empty()));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::JoinPair;
    use pyro_common::{Tuple, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..2000)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 50), Value::Int(i % 7)]))
            .collect();
        cat.register_table(
            "t1",
            Schema::ints(&["a", "b", "c"]),
            SortOrder::new(["a"]),
            &rows,
        )
        .unwrap();
        let mut by_b = rows.clone();
        by_b.sort_by(|x, y| x.get(1).cmp(y.get(1)));
        cat.register_table(
            "t2",
            Schema::ints(&["a", "b", "c"]),
            SortOrder::new(["b"]),
            &by_b,
        )
        .unwrap();
        cat
    }

    #[test]
    fn simple_scan_plan() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        p.scan_as("t1", "x");
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        assert!(matches!(plan.root.op, PhysOp::ClusteredIndexScan { .. }));
        assert!(plan.cost() > 0.0);
    }

    #[test]
    fn order_by_on_clustering_is_free() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t1", "x");
        p.order_by(s, SortOrder::new(["x.a"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::Sort { .. } | PhysOp::PartialSort { .. })),
            0,
            "clustering satisfies the ORDER BY:\n{}",
            plan.explain()
        );
    }

    #[test]
    fn order_by_extension_uses_partial_sort() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t1", "x");
        p.order_by(s, SortOrder::new(["x.a", "x.b"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::PartialSort { prefix_len: 1, .. })),
            1,
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn pyro_o_minus_never_partial_sorts() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t1", "x");
        p.order_by(s, SortOrder::new(["x.a", "x.b"]));
        let plan = Optimizer::new(&cat)
            .with_strategy(Strategy::pyro_o_minus())
            .optimize(&p)
            .unwrap();
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::PartialSort { .. })),
            0
        );
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::Sort { .. })),
            1
        );
    }

    #[test]
    fn join_picks_merge_with_shared_order() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let l = p.scan_as("t1", "l");
        let r = p.scan_as("t2", "r");
        p.join(l, r, vec![JoinPair::new("l.a", "r.a")]);
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        // t1 clustered on a: merge join on (a) needs only the right side
        // sorted. Whatever wins must beat a double-full-sort.
        let has_join = plan
            .root
            .count_nodes(&|n| matches!(n.op, PhysOp::MergeJoin { .. } | PhysOp::HashJoin { .. }));
        assert_eq!(has_join, 1);
    }

    #[test]
    fn strategies_cost_ordering() {
        // PYRO-E explores a superset of candidates, so its plan can never
        // cost more than the others'.
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let l = p.scan_as("t1", "l");
        let r = p.scan_as("t2", "r");
        let j = p.join(
            l,
            r,
            vec![JoinPair::new("l.a", "r.a"), JoinPair::new("l.b", "r.b")],
        );
        p.order_by(j, SortOrder::new(["l.a", "l.b"]));

        let cost = |s: Strategy| {
            Optimizer::new(&cat)
                .with_strategy(s)
                .optimize(&p)
                .unwrap()
                .cost()
        };
        let e = cost(Strategy::pyro_e());
        assert!(e <= cost(Strategy::pyro()) + 1e-6);
        assert!(e <= cost(Strategy::pyro_p()) + 1e-6);
        assert!(e <= cost(Strategy::pyro_o()) + 1e-6);
        assert!(e <= cost(Strategy::pyro_o_minus()) + 1e-6);
    }

    #[test]
    fn aggregate_chooses_sort_agg_on_clustered_input() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t1", "x");
        p.aggregate(
            s,
            vec!["x.a"],
            vec![crate::logical::AggSpec {
                func: pyro_exec::agg::AggFunc::Count,
                arg: NExpr::col("x.b"),
                name: "cnt".into(),
            }],
        );
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::SortAggregate { .. })),
            1,
            "clustered input makes the sort aggregate free:\n{}",
            plan.explain()
        );
        assert_eq!(
            plan.root
                .count_nodes(&|n| matches!(n.op, PhysOp::Sort { .. })),
            0
        );
    }

    #[test]
    fn memo_is_consulted() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let l = p.scan_as("t1", "l");
        let r = p.scan_as("t1", "r");
        p.join(
            l,
            r,
            vec![
                JoinPair::new("l.a", "r.a"),
                JoinPair::new("l.b", "r.b"),
                JoinPair::new("l.c", "r.c"),
            ],
        );
        // Exhaustive on 3 attrs = 6 orders; should still be fast and
        // produce a valid plan.
        let plan = Optimizer::new(&cat)
            .with_strategy(Strategy::pyro_e())
            .optimize(&p)
            .unwrap();
        assert!(plan.cost() > 0.0);
    }
}
