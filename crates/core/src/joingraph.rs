//! Join-graph extraction and cardinality-free join reordering.
//!
//! The paper optimizes sort-order choices over a *fixed* join shape (§1);
//! its fig16 experiment shows how that search behaves as plans grow. This
//! module is the scalability complement: it pulls the join predicates out
//! of a [`LogicalPlan`] into an explicit graph — maximal regions of
//! directly-nested inner joins, their leaf inputs, and the equality edges
//! between leaves — so the optimizer can (a) derive its attribute
//! equivalences from one place and (b) re-shape oversized regions with a
//! *Simpli-Squared*-style heuristic that needs no cardinality estimates:
//! join connectedness alone picks a left-deep order (densest-connected
//! leaf first, then greedily the leaf sharing the most join pairs with the
//! tree built so far). A pass-through projection restores the region's
//! original column order, so nothing above the region can tell the shape
//! changed.
//!
//! Reordering is gated by the `join_enum_threshold` knob (see
//! [`crate::memo`]): regions at or below the threshold keep the given
//! shape and therefore the exact plans, costs and counters of the
//! unreordered search.

use crate::equiv::EquivMap;
use crate::logical::{JoinPair, LogicalOp, LogicalPlan, NExpr, NodeId, ProjItem};
use pyro_catalog::Catalog;
use pyro_common::{Result, Schema};
use pyro_exec::join::JoinKind;
use pyro_exec::CmpOp;
use std::collections::HashMap;

/// Collects attribute equivalences from a plan's join pairs and
/// column-equality filter conjuncts — the single source the optimizer,
/// favorable-order computation and refinement all share.
pub fn collect_equivs(plan: &LogicalPlan) -> EquivMap {
    let mut equiv = EquivMap::new();
    for id in 0..plan.len() {
        match plan.node(id) {
            LogicalOp::Join { pairs, .. } => {
                for p in pairs {
                    equiv.union(&p.left, &p.right);
                }
            }
            LogicalOp::Filter { predicate, .. } => collect_filter_equivs(predicate, &mut equiv),
            _ => {}
        }
    }
    equiv
}

fn collect_filter_equivs(pred: &NExpr, equiv: &mut EquivMap) {
    match pred {
        NExpr::And(terms) => {
            for t in terms {
                collect_filter_equivs(t, equiv);
            }
        }
        NExpr::Cmp(CmpOp::Eq, a, b) => {
            if let (NExpr::Col(x), NExpr::Col(y)) = (a.as_ref(), b.as_ref()) {
                equiv.union(x, y);
            }
        }
        _ => {}
    }
}

/// One edge of a region's join graph: the equality pairs connecting two
/// leaves. Pairs are stored oriented — `pair.left` is a column of
/// `leaves[a]`, `pair.right` of `leaves[b]`.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// Leaf index of one endpoint (the side `pair.left` columns live on).
    pub a: usize,
    /// Leaf index of the other endpoint.
    pub b: usize,
    /// Equality pairs between the two leaves.
    pub pairs: Vec<JoinPair>,
}

/// A maximal subtree of directly-nested **inner** joins: its non-join leaf
/// inputs and the equality edges between them. This is the unit the
/// reordering heuristic may re-shape — outer joins, and anything beneath a
/// leaf, are never touched.
#[derive(Debug, Clone)]
pub struct JoinRegion {
    /// The region's topmost join node in the source plan.
    pub root: NodeId,
    /// Leaf inputs in original in-order (left-to-right) position, so the
    /// concatenation of their schemas is the region root's schema.
    pub leaves: Vec<NodeId>,
    /// The join nodes forming the region.
    pub joins: Vec<NodeId>,
    /// Leaf-to-leaf equality edges.
    pub edges: Vec<JoinEdge>,
    /// Region root output column names (original order) — what a
    /// restoring projection must re-emit after a re-shape.
    pub columns: Vec<String>,
    /// False when some join pair could not be attributed to exactly two
    /// distinct leaves (the heuristic then leaves the region alone).
    pub well_formed: bool,
}

/// The join graph of a plan: every maximal inner-join region.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Regions in discovery order (outermost-first tree walk from the
    /// root).
    pub regions: Vec<JoinRegion>,
}

fn is_inner_join(plan: &LogicalPlan, id: NodeId) -> bool {
    matches!(
        plan.node(id),
        LogicalOp::Join {
            kind: JoinKind::Inner,
            ..
        }
    )
}

impl JoinGraph {
    /// Extracts every maximal inner-join region reachable from the plan
    /// root. `catalog` resolves base-table schemas so join pairs can be
    /// attributed to the leaf whose output contains each column.
    pub fn extract(plan: &LogicalPlan, catalog: &Catalog) -> Result<JoinGraph> {
        let resolver = |table: &str, alias: &str| -> Result<Schema> {
            Ok(catalog.table(table)?.meta.schema.qualify(alias))
        };
        let mut regions = Vec::new();
        let mut stack = vec![plan.root()];
        while let Some(id) = stack.pop() {
            if is_inner_join(plan, id) {
                let region = extract_region(plan, id, &resolver)?;
                // Continue the walk *below* the region's leaves.
                stack.extend(region.leaves.iter().copied());
                regions.push(region);
            } else {
                stack.extend(plan.children(id));
            }
        }
        Ok(JoinGraph { regions })
    }
}

/// Collects one region rooted at inner-join `root`: leaves in in-order
/// position, member joins, and per-leaf-pair equality edges.
fn extract_region(
    plan: &LogicalPlan,
    root: NodeId,
    resolver: &impl Fn(&str, &str) -> Result<Schema>,
) -> Result<JoinRegion> {
    let mut leaves = Vec::new();
    let mut joins = Vec::new();
    collect_region(plan, root, &mut leaves, &mut joins);
    let leaf_schemas: Vec<Schema> = leaves
        .iter()
        .map(|&l| plan.schema(l, resolver))
        .collect::<Result<_>>()?;
    let columns: Vec<String> = leaf_schemas.iter().flat_map(|s| s.names()).collect();
    let leaf_of = |col: &str| leaf_schemas.iter().position(|s| s.contains(col));
    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut well_formed = true;
    for &j in &joins {
        let LogicalOp::Join { pairs, .. } = plan.node(j) else {
            unreachable!("region joins are Join nodes");
        };
        for p in pairs {
            let (Some(la), Some(lb)) = (leaf_of(&p.left), leaf_of(&p.right)) else {
                well_formed = false;
                continue;
            };
            if la == lb {
                well_formed = false;
                continue;
            }
            // Normalize the endpoint order so one edge collects every pair
            // between the same two leaves; orient the pair to match.
            let (a, b, pair) = if la < lb {
                (la, lb, p.clone())
            } else {
                (lb, la, JoinPair::new(p.right.clone(), p.left.clone()))
            };
            match edges.iter_mut().find(|e| e.a == a && e.b == b) {
                Some(e) => e.pairs.push(pair),
                None => edges.push(JoinEdge {
                    a,
                    b,
                    pairs: vec![pair],
                }),
            }
        }
    }
    Ok(JoinRegion {
        root,
        leaves,
        joins,
        edges,
        columns,
        well_formed,
    })
}

/// In-order walk of the maximal inner-join subtree under `id`.
fn collect_region(
    plan: &LogicalPlan,
    id: NodeId,
    leaves: &mut Vec<NodeId>,
    joins: &mut Vec<NodeId>,
) {
    if let LogicalOp::Join {
        left,
        right,
        kind: JoinKind::Inner,
        ..
    } = plan.node(id)
    {
        joins.push(id);
        collect_region(plan, *left, leaves, joins);
        collect_region(plan, *right, leaves, joins);
    } else {
        leaves.push(id);
    }
}

impl JoinRegion {
    /// Total join pairs incident on each leaf — the "connectedness" the
    /// cardinality-free heuristic ranks by.
    fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.leaves.len()];
        for e in &self.edges {
            deg[e.a] += e.pairs.len();
            deg[e.b] += e.pairs.len();
        }
        deg
    }

    /// The greedy left-deep leaf order: start from the most-connected leaf
    /// (ties: lowest original position), then repeatedly append the
    /// unjoined leaf sharing the most join pairs with the tree built so
    /// far. Returns `None` when the region's join graph is disconnected
    /// (a cross join would be required).
    pub fn greedy_order(&self) -> Option<Vec<usize>> {
        let n = self.leaves.len();
        if n == 0 {
            return None;
        }
        let deg = self.degrees();
        let start = (0..n).max_by_key(|&i| (deg[i], std::cmp::Reverse(i)))?;
        let mut joined = vec![false; n];
        joined[start] = true;
        let mut order = vec![start];
        for _ in 1..n {
            let next = (0..n)
                .filter(|&i| !joined[i])
                .map(|i| {
                    let connecting: usize = self
                        .edges
                        .iter()
                        .filter(|e| (e.a == i && joined[e.b]) || (e.b == i && joined[e.a]))
                        .map(|e| e.pairs.len())
                        .sum();
                    (connecting, i)
                })
                .filter(|&(c, _)| c > 0)
                .max_by_key(|&(c, i)| (c, std::cmp::Reverse(i)))?;
            joined[next.1] = true;
            order.push(next.1);
        }
        Some(order)
    }

    /// The leaf sequence of the original tree when it is already left-deep
    /// (every right child a leaf); `None` for bushy shapes. Used to skip
    /// re-shapes that would rebuild the identical tree.
    fn left_deep_sequence(&self, plan: &LogicalPlan) -> Option<Vec<usize>> {
        let mut seq = Vec::new();
        let mut id = self.root;
        loop {
            let LogicalOp::Join { left, right, .. } = plan.node(id) else {
                unreachable!("region root is a Join");
            };
            let right_leaf = self.leaves.iter().position(|&l| l == *right)?;
            seq.push(right_leaf);
            match self.leaves.iter().position(|&l| l == *left) {
                Some(p) => {
                    seq.push(p);
                    seq.reverse();
                    return Some(seq);
                }
                None => id = *left,
            }
        }
    }
}

/// Rebuilds `plan` with every well-formed, connected inner-join region of
/// more than `threshold` leaves re-shaped into the greedy left-deep order,
/// wrapped in a pass-through projection restoring the original column
/// order. Returns `None` when no region qualifies (including when every
/// qualifying region is already in greedy shape), so callers keep the
/// original plan — and its exact optimization results — untouched.
pub fn reorder_joins(
    plan: &LogicalPlan,
    catalog: &Catalog,
    threshold: usize,
) -> Result<Option<(LogicalPlan, u64)>> {
    // Cheap pre-scan: no schema work unless some region is big enough.
    if largest_region_leaves(plan) <= threshold {
        return Ok(None);
    }
    let graph = JoinGraph::extract(plan, catalog)?;
    let mut chosen: HashMap<NodeId, (&JoinRegion, Vec<usize>)> = HashMap::new();
    for region in &graph.regions {
        if region.leaves.len() <= threshold || !region.well_formed {
            continue;
        }
        let Some(order) = region.greedy_order() else {
            continue; // disconnected: a cross join is never introduced
        };
        if region.left_deep_sequence(plan).as_ref() == Some(&order) {
            continue; // already the greedy shape
        }
        chosen.insert(region.root, (region, order));
    }
    if chosen.is_empty() {
        return Ok(None);
    }
    let mut rebuild = Rebuild {
        src: plan,
        chosen: &chosen,
        out: LogicalPlan::new(),
        rebuilt_joins: 0,
    };
    let root = rebuild.copy(plan.root());
    let mut out = rebuild.out;
    out.set_root(root);
    Ok(Some((out, rebuild.rebuilt_joins)))
}

/// Leaf count of the largest inner-join region — a schema-free scan used
/// to skip extraction entirely for the common small plan.
fn largest_region_leaves(plan: &LogicalPlan) -> usize {
    let mut max = 0usize;
    let mut stack = vec![plan.root()];
    while let Some(id) = stack.pop() {
        if is_inner_join(plan, id) {
            let mut leaves = Vec::new();
            let mut joins = Vec::new();
            collect_region(plan, id, &mut leaves, &mut joins);
            max = max.max(leaves.len());
            stack.extend(leaves);
        } else {
            stack.extend(plan.children(id));
        }
    }
    max
}

struct Rebuild<'a> {
    src: &'a LogicalPlan,
    chosen: &'a HashMap<NodeId, (&'a JoinRegion, Vec<usize>)>,
    out: LogicalPlan,
    rebuilt_joins: u64,
}

impl Rebuild<'_> {
    fn copy(&mut self, id: NodeId) -> NodeId {
        if let Some((region, order)) = self.chosen.get(&id) {
            return self.build_region(region, order);
        }
        match self.src.node(id).clone() {
            LogicalOp::Scan { table, alias } => self.out.scan_as(&table, &alias),
            LogicalOp::Filter { input, predicate } => {
                let c = self.copy(input);
                self.out.filter(c, predicate)
            }
            LogicalOp::Project { input, items } => {
                let c = self.copy(input);
                self.out.project(c, items)
            }
            LogicalOp::Join {
                left,
                right,
                kind,
                pairs,
            } => {
                let l = self.copy(left);
                let r = self.copy(right);
                self.out.join_kind(l, r, kind, pairs)
            }
            LogicalOp::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let c = self.copy(input);
                self.out.aggregate(c, group_by, aggs)
            }
            LogicalOp::Sort { input, order } => {
                let c = self.copy(input);
                self.out.order_by(c, order)
            }
            LogicalOp::Distinct { input } => {
                let c = self.copy(input);
                self.out.distinct(c)
            }
            LogicalOp::Limit { input, k } => {
                let c = self.copy(input);
                self.out.limit(c, k)
            }
        }
    }

    /// Emits the region as a left-deep chain of inner joins over `order`,
    /// each step carrying every pair that connects the new leaf to the
    /// tree built so far, capped by the order-restoring projection.
    fn build_region(&mut self, region: &JoinRegion, order: &[usize]) -> NodeId {
        let new_leaf: Vec<NodeId> = region.leaves.iter().map(|&l| self.copy(l)).collect();
        let mut in_tree = vec![false; region.leaves.len()];
        in_tree[order[0]] = true;
        let mut cur = new_leaf[order[0]];
        for &i in &order[1..] {
            let mut pairs = Vec::new();
            for e in &region.edges {
                if e.b == i && in_tree[e.a] {
                    pairs.extend(e.pairs.iter().cloned());
                } else if e.a == i && in_tree[e.b] {
                    pairs.extend(
                        e.pairs
                            .iter()
                            .map(|p| JoinPair::new(p.right.clone(), p.left.clone())),
                    );
                }
            }
            cur = self.out.join(cur, new_leaf[i], pairs);
            in_tree[i] = true;
            self.rebuilt_joins += 1;
        }
        let items: Vec<ProjItem> = region.columns.iter().map(ProjItem::col).collect();
        self.out.project(cur, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::{Tuple, Value};
    use pyro_ordering::SortOrder;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .collect();
        for t in ["t1", "t2", "t3", "t4"] {
            cat.register_table(t, Schema::ints(&["a", "b"]), SortOrder::new(["a"]), &rows)
                .unwrap();
        }
        cat
    }

    /// t1 ⋈ t2 ⋈ t3 chain under an ORDER BY.
    fn chain3() -> LogicalPlan {
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t1", "r1");
        let b = p.scan_as("t2", "r2");
        let c = p.scan_as("t3", "r3");
        let j1 = p.join(a, b, vec![JoinPair::new("r1.b", "r2.a")]);
        let j2 = p.join(j1, c, vec![JoinPair::new("r2.b", "r3.a")]);
        p.order_by(j2, SortOrder::new(["r1.a"]));
        p
    }

    #[test]
    fn extracts_one_region_with_edges() {
        let cat = catalog();
        let p = chain3();
        let g = JoinGraph::extract(&p, &cat).unwrap();
        assert_eq!(g.regions.len(), 1);
        let r = &g.regions[0];
        assert!(r.well_formed);
        assert_eq!(r.leaves.len(), 3);
        assert_eq!(r.joins.len(), 2);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.columns.len(), 6);
        // Pairs oriented: left column belongs to leaves[a].
        for e in &r.edges {
            for pr in &e.pairs {
                assert!(pr.left.starts_with(&format!("r{}", e.a + 1)), "{pr:?}");
            }
        }
    }

    #[test]
    fn outer_join_splits_regions() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t1", "r1");
        let b = p.scan_as("t2", "r2");
        let c = p.scan_as("t3", "r3");
        let inner = p.join(a, b, vec![JoinPair::new("r1.a", "r2.a")]);
        p.join_kind(
            inner,
            c,
            pyro_exec::join::JoinKind::FullOuter,
            vec![JoinPair::new("r1.a", "r3.a")],
        );
        let g = JoinGraph::extract(&p, &cat).unwrap();
        assert_eq!(g.regions.len(), 1, "outer join is not a region member");
        assert_eq!(g.regions[0].leaves.len(), 2);
    }

    #[test]
    fn greedy_order_prefers_dense_leaf() {
        let cat = catalog();
        // Star: r3 joins both r1 and r2 → r3 is the densest leaf.
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t1", "r1");
        let b = p.scan_as("t2", "r2");
        let c = p.scan_as("t3", "r3");
        let j1 = p.join(a, c, vec![JoinPair::new("r1.a", "r3.a")]);
        p.join(j1, b, vec![JoinPair::new("r3.b", "r2.b")]);
        let g = JoinGraph::extract(&p, &cat).unwrap();
        let order = g.regions[0].greedy_order().unwrap();
        // leaves in-order: [r1, r3, r2]; r3 (index 1) has degree 2.
        assert_eq!(order[0], 1);
    }

    #[test]
    fn reorder_below_threshold_is_none() {
        let cat = catalog();
        let p = chain3();
        assert!(reorder_joins(&p, &cat, 3).unwrap().is_none());
    }

    #[test]
    fn reorder_restores_column_order() {
        let cat = catalog();
        let p = chain3();
        let (re, rebuilt) = reorder_joins(&p, &cat, 2).unwrap().unwrap();
        assert!(rebuilt > 0);
        let resolver = |table: &str, alias: &str| -> Result<Schema> {
            Ok(cat.table(table)?.meta.schema.qualify(alias))
        };
        assert_eq!(
            p.schema(p.root(), &resolver).unwrap().names(),
            re.schema(re.root(), &resolver).unwrap().names(),
            "restoring projection keeps the region schema"
        );
    }

    #[test]
    fn disconnected_region_is_left_alone() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t1", "r1");
        let b = p.scan_as("t2", "r2");
        let c = p.scan_as("t3", "r3");
        // r3 attaches with no join pairs: disconnected graph.
        let j1 = p.join(a, b, vec![JoinPair::new("r1.a", "r2.a")]);
        p.join(j1, c, vec![]);
        assert!(reorder_joins(&p, &cat, 2).unwrap().is_none());
    }
}
