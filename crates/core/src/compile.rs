//! Physical plan → executable operator pipeline.
//!
//! Column names become positions, sort orders become [`KeySpec`]s, the
//! enforcers become the SRS / MRS operators of `pyro-exec`, and scans bind
//! to the catalog's heap and index files. The whole pipeline shares one
//! [`ExecMetrics`] so experiments can report comparisons and run I/O.

use crate::logical::{AggSpec, NExpr};
use crate::plan::{PhysNode, PhysOp};
use pyro_catalog::Catalog;
use pyro_common::{KeySpec, PyroError, Result, Schema};
use pyro_exec::agg::{AggExpr, GroupAggregate, HashAggregate};
use pyro_exec::dedup::{HashDistinct, SortDistinct};
use pyro_exec::filter::Filter;
use pyro_exec::join::{HashJoin, MergeJoin, NestedLoopsJoin};
use pyro_exec::limit::Limit;
use pyro_exec::project::Project;
use pyro_exec::scan::FileScan;
use pyro_exec::sort::{PartialSort, SortBudget, StandardReplacementSort};
use pyro_exec::{BoxOp, ExecMetrics, Expr, MetricsRef, Pipeline, DEFAULT_BATCH_SIZE};
use pyro_ordering::SortOrder;
use std::rc::Rc;

/// Compiles a physical plan into a runnable [`Pipeline`] (operator tree +
/// shared metrics block) at the default batch size.
pub fn compile(root: &Rc<PhysNode>, catalog: &Catalog) -> Result<Pipeline> {
    compile_with_batch(root, catalog, DEFAULT_BATCH_SIZE)
}

/// Compiles a physical plan with an explicit batch granularity: every
/// operator in the tree is configured to exchange `batch_size`-row batches
/// (the `SessionBuilder::batch_size` knob ends up here).
pub fn compile_with_batch(
    root: &Rc<PhysNode>,
    catalog: &Catalog,
    batch_size: usize,
) -> Result<Pipeline> {
    let metrics = ExecMetrics::new();
    let op = compile_node(root, catalog, &metrics, batch_size.max(1))?;
    Ok(Pipeline::new(op, metrics))
}

fn budget(catalog: &Catalog) -> SortBudget {
    SortBudget::new(catalog.sort_memory_blocks(), catalog.device().block_size())
}

fn key_spec(schema: &Schema, order: &SortOrder) -> Result<KeySpec> {
    Ok(KeySpec::new(
        order
            .attrs()
            .iter()
            .map(|a| schema.index_of(a))
            .collect::<Result<Vec<_>>>()?,
    ))
}

/// Compiles a named expression against a schema.
pub fn compile_expr(e: &NExpr, schema: &Schema) -> Result<Expr> {
    Ok(match e {
        NExpr::Col(c) => Expr::Col(schema.index_of(c)?),
        NExpr::Lit(v) => Expr::Lit(v.clone()),
        NExpr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(compile_expr(a, schema)?),
            Box::new(compile_expr(b, schema)?),
        ),
        NExpr::And(terms) => Expr::and_all(
            terms
                .iter()
                .map(|t| compile_expr(t, schema))
                .collect::<Result<Vec<_>>>()?,
        ),
        NExpr::Mul(a, b) => Expr::Mul(
            Box::new(compile_expr(a, schema)?),
            Box::new(compile_expr(b, schema)?),
        ),
        NExpr::Add(a, b) => Expr::Add(
            Box::new(compile_expr(a, schema)?),
            Box::new(compile_expr(b, schema)?),
        ),
        NExpr::Sub(a, b) => Expr::Sub(
            Box::new(compile_expr(a, schema)?),
            Box::new(compile_expr(b, schema)?),
        ),
    })
}

fn compile_aggs(aggs: &[AggSpec], schema: &Schema) -> Result<Vec<AggExpr>> {
    aggs.iter()
        .map(|a| {
            Ok(AggExpr::new(
                a.func,
                compile_expr(&a.arg, schema)?,
                a.name.clone(),
            ))
        })
        .collect()
}

fn compile_node(
    node: &Rc<PhysNode>,
    catalog: &Catalog,
    metrics: &MetricsRef,
    batch: usize,
) -> Result<BoxOp> {
    let mut op: BoxOp = match &node.op {
        PhysOp::TableScan { table, .. } | PhysOp::ClusteredIndexScan { table, .. } => {
            let handle = catalog.table(table)?;
            Box::new(FileScan::new(node.schema.clone(), &handle.heap))
        }
        PhysOp::CoveringIndexScan { table, index, .. } => {
            let handle = catalog.table(table)?;
            let file = handle.index_files.get(index).ok_or_else(|| {
                PyroError::Plan(format!("index {index} of {table} has no entry file"))
            })?;
            Box::new(FileScan::new(node.schema.clone(), file))
        }
        PhysOp::Filter { predicate } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let pred = compile_expr(predicate, child.schema())?;
            Box::new(Filter::new(child, pred))
        }
        PhysOp::Project { items } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let exprs = items
                .iter()
                .map(|it| compile_expr(&it.expr, child.schema()))
                .collect::<Result<Vec<_>>>()?;
            Box::new(Project::new(child, exprs, node.schema.clone()))
        }
        PhysOp::Sort { target } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let key = key_spec(child.schema(), target)?;
            Box::new(StandardReplacementSort::new(
                child,
                key,
                catalog.device().clone(),
                budget(catalog),
                metrics.clone(),
            ))
        }
        PhysOp::PartialSort { prefix_len, target } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let key = key_spec(child.schema(), target)?;
            Box::new(PartialSort::new(
                child,
                key,
                *prefix_len,
                catalog.device().clone(),
                budget(catalog),
                metrics.clone(),
            ))
        }
        PhysOp::MergeJoin { kind, pairs, order } => {
            let left = compile_node(&node.children[0], catalog, metrics, batch)?;
            let right = compile_node(&node.children[1], catalog, metrics, batch)?;
            // The chosen order's attributes are left-side pair columns; the
            // matching right-side columns come from the pairs.
            let mut l_cols = Vec::with_capacity(order.len());
            let mut r_cols = Vec::with_capacity(order.len());
            for a in order.attrs() {
                let pair = pairs.iter().find(|p| &p.left == a).ok_or_else(|| {
                    PyroError::Plan(format!("merge-join order attr {a} not in join pairs"))
                })?;
                l_cols.push(left.schema().index_of(&pair.left)?);
                r_cols.push(right.schema().index_of(&pair.right)?);
            }
            Box::new(MergeJoin::new(
                left,
                right,
                KeySpec::new(l_cols),
                KeySpec::new(r_cols),
                *kind,
                metrics.clone(),
            ))
        }
        PhysOp::HashJoin { kind, pairs } => {
            let left = compile_node(&node.children[0], catalog, metrics, batch)?;
            let right = compile_node(&node.children[1], catalog, metrics, batch)?;
            let l_cols = pairs
                .iter()
                .map(|p| left.schema().index_of(&p.left))
                .collect::<Result<Vec<_>>>()?;
            let r_cols = pairs
                .iter()
                .map(|p| right.schema().index_of(&p.right))
                .collect::<Result<Vec<_>>>()?;
            Box::new(HashJoin::new(
                left,
                right,
                KeySpec::new(l_cols),
                KeySpec::new(r_cols),
                *kind,
            ))
        }
        PhysOp::NestedLoopsJoin { kind, pairs } => {
            let left = compile_node(&node.children[0], catalog, metrics, batch)?;
            let right = compile_node(&node.children[1], catalog, metrics, batch)?;
            let l_cols = pairs
                .iter()
                .map(|p| left.schema().index_of(&p.left))
                .collect::<Result<Vec<_>>>()?;
            let r_cols = pairs
                .iter()
                .map(|p| right.schema().index_of(&p.right))
                .collect::<Result<Vec<_>>>()?;
            Box::new(NestedLoopsJoin::new(
                left,
                right,
                KeySpec::new(l_cols),
                KeySpec::new(r_cols),
                *kind,
            ))
        }
        PhysOp::SortAggregate { group_by, aggs } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let group_cols = group_by
                .iter()
                .map(|g| child.schema().index_of(g))
                .collect::<Result<Vec<_>>>()?;
            let aggs = compile_aggs(aggs, child.schema())?;
            Box::new(GroupAggregate::new(child, group_cols, aggs))
        }
        PhysOp::HashAggregate { group_by, aggs } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let group_cols = group_by
                .iter()
                .map(|g| child.schema().index_of(g))
                .collect::<Result<Vec<_>>>()?;
            let aggs = compile_aggs(aggs, child.schema())?;
            Box::new(HashAggregate::new(child, group_cols, aggs))
        }
        PhysOp::SortDistinct { order } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            let key = key_spec(child.schema(), order)?;
            Box::new(SortDistinct::new(child, key, metrics.clone()))
        }
        PhysOp::HashDistinct => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            Box::new(HashDistinct::new(child))
        }
        PhysOp::Limit { k } => {
            let child = compile_node(&node.children[0], catalog, metrics, batch)?;
            Box::new(Limit::new(child, *k))
        }
    };
    op.set_batch_size(batch);
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{JoinPair, LogicalPlan};
    use crate::optimizer::Optimizer;
    use pyro_common::{Tuple, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .collect();
        cat.register_table("t", Schema::ints(&["k", "g"]), SortOrder::new(["k"]), &rows)
            .unwrap();
        cat
    }

    #[test]
    fn compiled_plan_runs_and_orders() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.order_by(s, SortOrder::new(["t.g", "t.k"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let pyro_exec::Rows { rows, metrics } = plan.execute(&cat).unwrap();
        assert_eq!(rows.len(), 100);
        // output sorted by (g, k)
        let keys: Vec<(i64, i64)> = rows
            .iter()
            .map(|t| (t.get(1).as_int().unwrap(), t.get(0).as_int().unwrap()))
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
        assert!(metrics.comparisons() > 0);
    }

    #[test]
    fn compiled_join_produces_expected_rows() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t", "a");
        let b = p.scan_as("t", "b");
        p.join(a, b, vec![JoinPair::new("a.k", "b.k")]);
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let rows = plan.execute(&cat).unwrap().rows;
        assert_eq!(rows.len(), 100, "self-join on unique key");
        assert_eq!(rows[0].arity(), 4);
    }

    #[test]
    fn compile_expr_resolves_names() {
        let schema = Schema::ints(&["t.a", "t.b"]);
        let e = compile_expr(&NExpr::col_eq_lit("t.b", 5i64), &schema).unwrap();
        let row = Tuple::new(vec![Value::Int(0), Value::Int(5)]);
        assert!(e.eval_bool(&row).unwrap());
    }
}
