//! Physical plan → executable operator pipeline.
//!
//! Column names become positions, sort orders become [`KeySpec`]s, the
//! enforcers become the SRS / MRS operators of `pyro-exec`, and scans bind
//! to the catalog's heap and index files. The whole pipeline shares one
//! [`ExecMetrics`] so experiments can report comparisons and run I/O.
//!
//! With `workers > 1` ([`compile_with_workers`]) the compiler additionally
//! performs pipeline-breaker detection: maximal subtrees of
//! parallel-safe operators are instantiated as worker fragments behind
//! exchange operators (see `crate::parallel`), while breakers — sorts,
//! merge joins, aggregates, anything whose counters or output depend on the
//! exact input sequence — stay serial and receive either the exact serial
//! row sequence (an order-preserving merge over range-partitioned workers)
//! or an unparallelized child.

use crate::logical::{AggSpec, NExpr};
use crate::plan::{PhysNode, PhysOp};
use pyro_catalog::Catalog;
use pyro_common::{KeySpec, PyroError, Result, Schema, Value};
use pyro_exec::agg::{AggExpr, GroupAggregate, HashAggregate};
use pyro_exec::dedup::{HashDistinct, SortDistinct};
use pyro_exec::filter::Filter;
use pyro_exec::join::{HashJoin, MergeJoin, NestedLoopsJoin};
use pyro_exec::limit::Limit;
use pyro_exec::project::Project;
use pyro_exec::scan::FileScan;
use pyro_exec::sort::{PartialSort, SortBudget, StandardReplacementSort};
use pyro_exec::{BoxOp, ExecMetrics, Expr, MetricsRef, Pipeline, DEFAULT_BATCH_SIZE};
use pyro_ordering::SortOrder;
use std::sync::Arc;

/// Compiles a physical plan into a runnable [`Pipeline`] (operator tree +
/// shared metrics block) at the default batch size.
pub fn compile(root: &Arc<PhysNode>, catalog: &Catalog) -> Result<Pipeline> {
    compile_with_batch(root, catalog, DEFAULT_BATCH_SIZE)
}

/// Compiles a physical plan with an explicit batch granularity: every
/// operator in the tree is configured to exchange `batch_size`-row batches
/// (the `SessionBuilder::batch_size` knob ends up here).
pub fn compile_with_batch(
    root: &Arc<PhysNode>,
    catalog: &Catalog,
    batch_size: usize,
) -> Result<Pipeline> {
    compile_with_workers(root, catalog, batch_size, 1)
}

/// Compiles a physical plan for execution on `workers` threads (the
/// `SessionBuilder::workers` knob). `workers = 1` takes exactly the serial
/// path — same operators, same behaviour, bit-identical counters; with more
/// workers, parallel-safe subtrees become morsel-driven worker fragments
/// behind exchange operators while pipeline breakers stay serial.
pub fn compile_with_workers(
    root: &Arc<PhysNode>,
    catalog: &Catalog,
    batch_size: usize,
    workers: usize,
) -> Result<Pipeline> {
    // Standalone callers hand us a bare physical tree, so the query's
    // ORDER BY demand is unknown; assume any root-guaranteed order must be
    // delivered (always correct, at worst an ordered merge where an
    // arrival-order gather would have done). `OptimizedPlan` knows the
    // actual demand and calls [`compile_with_workers_demand`] instead.
    compile_with_workers_demand(
        root,
        catalog,
        batch_size,
        workers,
        !root.out_order.is_empty(),
    )
}

/// [`compile_with_workers`] with the query's output-order demand made
/// explicit. `ordered_output = true` means the consumer relies on the root
/// row sequence (the query had an ORDER BY) — essential for ORDER BYs the
/// clustering already satisfies, where the plan contains no sort enforcer
/// and order preservation rests entirely on the exchanges; `false` frees
/// the root to gather worker output in arrival order even when the chosen
/// plan incidentally guarantees an order.
pub fn compile_with_workers_demand(
    root: &Arc<PhysNode>,
    catalog: &Catalog,
    batch_size: usize,
    workers: usize,
    ordered_output: bool,
) -> Result<Pipeline> {
    compile_bound(root, catalog, batch_size, workers, ordered_output, &[])
}

/// [`compile_with_workers_demand`] with prepared-statement parameter values
/// bound: every `NExpr::Param(i)` in the plan is substituted with
/// `params[i]` as the expressions compile, so the executed operators are
/// exactly what the same query with inline literals would have produced.
/// A plan containing placeholders compiled without bindings (`params`
/// shorter than the highest index) is a typed error, never a silent NULL.
pub fn compile_bound(
    root: &Arc<PhysNode>,
    catalog: &Catalog,
    batch_size: usize,
    workers: usize,
    ordered_output: bool,
    params: &[Value],
) -> Result<Pipeline> {
    compile_bound_columnar(
        root,
        catalog,
        batch_size,
        workers,
        ordered_output,
        params,
        true,
    )
}

/// [`compile_bound`] with the columnar-execution knob made explicit.
/// `columnar = true` (the default everywhere above) lets the serial batch
/// path run Filter / Project / inner HashJoin subtrees over columnar
/// batches with vectorized kernels; `false` forces the row-at-a-time batch
/// implementations (the `SessionBuilder::columnar(false)` escape hatch, and
/// the reference side of A/B parity tests). Either way the row pull
/// (`next()`), all counters, and the produced rows are identical.
#[allow(clippy::too_many_arguments)]
pub fn compile_bound_columnar(
    root: &Arc<PhysNode>,
    catalog: &Catalog,
    batch_size: usize,
    workers: usize,
    ordered_output: bool,
    params: &[Value],
    columnar: bool,
) -> Result<Pipeline> {
    let metrics = ExecMetrics::new();
    let ctx = CompileCtx {
        catalog,
        metrics: metrics.clone(),
        batch: batch_size.max(1),
        workers: workers.max(1),
        params,
        columnar,
    };
    let op = compile_sub(root, &ctx, ordered_output)?;
    // The pipeline charges the catalog store's buffer-pool counter delta
    // (cache hits/misses) to its metrics when it is drained.
    Ok(Pipeline::new(op, metrics).with_store(catalog.store().clone()))
}

/// Everything a (possibly parallel) plan instantiation threads downward.
pub(crate) struct CompileCtx<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) metrics: MetricsRef,
    pub(crate) batch: usize,
    pub(crate) workers: usize,
    pub(crate) params: &'a [Value],
    pub(crate) columnar: bool,
}

/// True iff this operator hands its input sequence through untouched *and*
/// charges no sequence-dependent counters — i.e. an unordered parallel
/// interleaving below it is observable only as row order, never as
/// different counter totals or different row multisets.
fn sequence_insensitive(op: &PhysOp) -> bool {
    matches!(
        op,
        PhysOp::Filter { .. }
            | PhysOp::Project { .. }
            | PhysOp::HashJoin { .. }
            | PhysOp::HashDistinct
    )
}

/// True iff every operator in this subtree produces columnar batches
/// natively — scans decode pages straight into column vectors, and
/// Filter / Project / inner HashJoin run vectorized kernels. Only such
/// subtrees get their roots flagged columnar: a flagged operator pulls its
/// children via `next_columnar`, so a single row-only operator anywhere
/// below would force a rows→columns conversion at every batch, which
/// benchmarking shows loses more than the kernels gain. Pipeline breakers
/// (sorts, aggregates, merge joins, exchanges) deliberately stay row-based:
/// their comparison/run-I/O counters are the paper's subject and must stay
/// bit-identical to the row path.
fn columnar_capable(node: &PhysNode) -> bool {
    match &node.op {
        PhysOp::TableScan { .. }
        | PhysOp::ClusteredIndexScan { .. }
        | PhysOp::CoveringIndexScan { .. } => true,
        PhysOp::Filter { .. } | PhysOp::Project { .. } => columnar_capable(&node.children[0]),
        PhysOp::HashJoin { kind, .. } => {
            matches!(kind, pyro_exec::join::JoinKind::Inner)
                && columnar_capable(&node.children[0])
                && columnar_capable(&node.children[1])
        }
        _ => false,
    }
}

/// Compiles a subtree. `exact` records whether some consumer above this
/// point depends on the exact serial row sequence (a sort's comparison
/// count, a Limit's chosen prefix, a merge join's group pairing); when set,
/// only exact-sequence parallelism (range partitioning + ordered merge) is
/// allowed here.
pub(crate) fn compile_sub(node: &Arc<PhysNode>, ctx: &CompileCtx, exact: bool) -> Result<BoxOp> {
    if ctx.workers > 1 {
        if let Some(op) = crate::parallel::try_parallel(node, ctx, exact)? {
            return Ok(op);
        }
    }
    compile_serial(node, ctx, exact)
}

fn budget(catalog: &Catalog) -> SortBudget {
    SortBudget::new(catalog.sort_memory_blocks(), catalog.device().block_size())
}

pub(crate) fn key_spec(schema: &Schema, order: &SortOrder) -> Result<KeySpec> {
    Ok(KeySpec::new(
        order
            .attrs()
            .iter()
            .map(|a| schema.index_of(a))
            .collect::<Result<Vec<_>>>()?,
    ))
}

/// Compiles a named expression against a schema. Parameter placeholders
/// are rejected here — use [`compile_expr_bound`] with the bound values.
pub fn compile_expr(e: &NExpr, schema: &Schema) -> Result<Expr> {
    compile_expr_bound(e, schema, &[])
}

/// Compiles a named expression against a schema, substituting each
/// `NExpr::Param(i)` with `params[i]`. An index past the end of `params`
/// (including any placeholder at all when `params` is empty) is a typed
/// [`PyroError::ParamBinding`] error.
pub fn compile_expr_bound(e: &NExpr, schema: &Schema, params: &[Value]) -> Result<Expr> {
    Ok(match e {
        NExpr::Col(c) => Expr::Col(schema.index_of(c)?),
        NExpr::Lit(v) => Expr::Lit(v.clone()),
        NExpr::Param(i) => Expr::Lit(params.get(*i).cloned().ok_or_else(|| {
            PyroError::ParamBinding(format!(
                "placeholder ?{} is unbound ({} value(s) provided)",
                i + 1,
                params.len()
            ))
        })?),
        NExpr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(compile_expr_bound(a, schema, params)?),
            Box::new(compile_expr_bound(b, schema, params)?),
        ),
        NExpr::And(terms) => Expr::and_all(
            terms
                .iter()
                .map(|t| compile_expr_bound(t, schema, params))
                .collect::<Result<Vec<_>>>()?,
        ),
        NExpr::Mul(a, b) => Expr::Mul(
            Box::new(compile_expr_bound(a, schema, params)?),
            Box::new(compile_expr_bound(b, schema, params)?),
        ),
        NExpr::Add(a, b) => Expr::Add(
            Box::new(compile_expr_bound(a, schema, params)?),
            Box::new(compile_expr_bound(b, schema, params)?),
        ),
        NExpr::Sub(a, b) => Expr::Sub(
            Box::new(compile_expr_bound(a, schema, params)?),
            Box::new(compile_expr_bound(b, schema, params)?),
        ),
    })
}

fn compile_aggs(aggs: &[AggSpec], schema: &Schema, params: &[Value]) -> Result<Vec<AggExpr>> {
    aggs.iter()
        .map(|a| {
            Ok(AggExpr::new(
                a.func,
                compile_expr_bound(&a.arg, schema, params)?,
                a.name.clone(),
            ))
        })
        .collect()
}

/// Compiles the child of a filter. When the child is a scan of a sorted
/// file and the bound predicate pins an equality prefix of that order, the
/// scan compiles over the binary-searched page range that can hold matching
/// tuples instead of the whole file — an index *seek*. The caller's
/// residual filter keeps the semantics exact: the restriction only skips
/// pages that cannot match, and the probe reads are charged to the device
/// like any other I/O.
fn compile_filter_child(
    child: &Arc<PhysNode>,
    predicate: &NExpr,
    ctx: &CompileCtx,
    exact: bool,
) -> Result<BoxOp> {
    let seek = match &child.op {
        PhysOp::ClusteredIndexScan { table, alias } => {
            let handle = ctx.catalog.table(table)?;
            Some((
                handle.heap.clone(),
                handle.meta.clustering.rename(|a| format!("{alias}.{a}")),
            ))
        }
        PhysOp::CoveringIndexScan {
            table,
            alias,
            index,
        } => {
            let handle = ctx.catalog.table(table)?;
            let meta = handle.meta.indexes.iter().find(|i| i.name == *index);
            match (handle.index_files.get(index), meta) {
                (Some(file), Some(meta)) => {
                    Some((file.clone(), meta.key.rename(|a| format!("{alias}.{a}"))))
                }
                _ => None,
            }
        }
        _ => None,
    };
    if let Some((file, order)) = seek {
        let key = crate::seek::eq_prefix_values(predicate, &order, ctx.params);
        if !key.is_empty() {
            let cols = order.attrs()[..key.len()]
                .iter()
                .map(|a| child.schema.index_of(a))
                .collect::<Result<Vec<_>>>()?;
            let (start, end) = pyro_exec::scan::eq_key_page_range(&file, &cols, &key)?;
            let mut op: BoxOp = Box::new(FileScan::over_pages(
                child.schema.clone(),
                &file,
                start,
                end,
            ));
            op.set_batch_size(ctx.batch);
            return Ok(op);
        }
    }
    compile_sub(child, ctx, exact)
}

fn compile_serial(node: &Arc<PhysNode>, ctx: &CompileCtx, exact: bool) -> Result<BoxOp> {
    // A sequence-sensitive serial operator demands its children's exact
    // serial row sequence; a pass-through one just inherits the demand.
    let child_exact = exact || !sequence_insensitive(&node.op);
    // Columnar kernels only engage on the serial path: with workers > 1
    // the subtree may have been split into morsel fragments, which exchange
    // rows. Each qualifying node decides for itself; the check is
    // recursive, so a flagged parent's children are flagged too (or are
    // scans, which serve `next_columnar` natively without a flag).
    let vectorize = ctx.columnar && ctx.workers == 1 && columnar_capable(node);
    let mut op: BoxOp = match &node.op {
        PhysOp::TableScan { table, .. } | PhysOp::ClusteredIndexScan { table, .. } => {
            let handle = ctx.catalog.table(table)?;
            Box::new(FileScan::new(node.schema.clone(), &handle.heap))
        }
        PhysOp::CoveringIndexScan { table, index, .. } => {
            let handle = ctx.catalog.table(table)?;
            let file = handle.index_files.get(index).ok_or_else(|| {
                PyroError::Plan(format!("index {index} of {table} has no entry file"))
            })?;
            Box::new(FileScan::new(node.schema.clone(), file))
        }
        PhysOp::Filter { predicate } => {
            let child = compile_filter_child(&node.children[0], predicate, ctx, child_exact)?;
            let pred = compile_expr_bound(predicate, child.schema(), ctx.params)?;
            let mut f = Filter::new(child, pred);
            f.set_columnar(vectorize);
            Box::new(f)
        }
        PhysOp::Project { items } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            let exprs = items
                .iter()
                .map(|it| compile_expr_bound(&it.expr, child.schema(), ctx.params))
                .collect::<Result<Vec<_>>>()?;
            let mut p = Project::new(child, exprs, node.schema.clone());
            p.set_columnar(vectorize);
            Box::new(p)
        }
        PhysOp::Sort { target } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            let key = key_spec(child.schema(), target)?;
            Box::new(StandardReplacementSort::new(
                child,
                key,
                ctx.catalog.store().clone(),
                budget(ctx.catalog),
                ctx.metrics.clone(),
            ))
        }
        PhysOp::PartialSort { prefix_len, target } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            let key = key_spec(child.schema(), target)?;
            Box::new(PartialSort::new(
                child,
                key,
                *prefix_len,
                ctx.catalog.store().clone(),
                budget(ctx.catalog),
                ctx.metrics.clone(),
            ))
        }
        PhysOp::MergeJoin { kind, pairs, order } => {
            let left = compile_sub(&node.children[0], ctx, child_exact)?;
            let right = compile_sub(&node.children[1], ctx, child_exact)?;
            // The chosen order's attributes are left-side pair columns; the
            // matching right-side columns come from the pairs.
            let mut l_cols = Vec::with_capacity(order.len());
            let mut r_cols = Vec::with_capacity(order.len());
            for a in order.attrs() {
                let pair = pairs.iter().find(|p| &p.left == a).ok_or_else(|| {
                    PyroError::Plan(format!("merge-join order attr {a} not in join pairs"))
                })?;
                l_cols.push(left.schema().index_of(&pair.left)?);
                r_cols.push(right.schema().index_of(&pair.right)?);
            }
            Box::new(MergeJoin::new(
                left,
                right,
                KeySpec::new(l_cols),
                KeySpec::new(r_cols),
                *kind,
                ctx.metrics.clone(),
            ))
        }
        PhysOp::HashJoin { kind, pairs } => {
            let left = compile_sub(&node.children[0], ctx, child_exact)?;
            let right = compile_sub(&node.children[1], ctx, child_exact)?;
            let l_cols = pairs
                .iter()
                .map(|p| left.schema().index_of(&p.left))
                .collect::<Result<Vec<_>>>()?;
            let r_cols = pairs
                .iter()
                .map(|p| right.schema().index_of(&p.right))
                .collect::<Result<Vec<_>>>()?;
            let mut j = HashJoin::new(
                left,
                right,
                KeySpec::new(l_cols),
                KeySpec::new(r_cols),
                *kind,
            );
            j.set_columnar(vectorize);
            Box::new(j)
        }
        PhysOp::NestedLoopsJoin { kind, pairs } => {
            let left = compile_sub(&node.children[0], ctx, child_exact)?;
            let right = compile_sub(&node.children[1], ctx, child_exact)?;
            let l_cols = pairs
                .iter()
                .map(|p| left.schema().index_of(&p.left))
                .collect::<Result<Vec<_>>>()?;
            let r_cols = pairs
                .iter()
                .map(|p| right.schema().index_of(&p.right))
                .collect::<Result<Vec<_>>>()?;
            Box::new(NestedLoopsJoin::new(
                left,
                right,
                KeySpec::new(l_cols),
                KeySpec::new(r_cols),
                *kind,
            ))
        }
        PhysOp::SortAggregate { group_by, aggs } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            let group_cols = group_by
                .iter()
                .map(|g| child.schema().index_of(g))
                .collect::<Result<Vec<_>>>()?;
            let aggs = compile_aggs(aggs, child.schema(), ctx.params)?;
            Box::new(GroupAggregate::new(child, group_cols, aggs))
        }
        PhysOp::HashAggregate { group_by, aggs } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            let group_cols = group_by
                .iter()
                .map(|g| child.schema().index_of(g))
                .collect::<Result<Vec<_>>>()?;
            let aggs = compile_aggs(aggs, child.schema(), ctx.params)?;
            Box::new(HashAggregate::new(child, group_cols, aggs))
        }
        PhysOp::SortDistinct { order } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            let key = key_spec(child.schema(), order)?;
            Box::new(SortDistinct::new(child, key, ctx.metrics.clone()))
        }
        PhysOp::HashDistinct => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            Box::new(HashDistinct::new(child))
        }
        PhysOp::Limit { k } => {
            let child = compile_sub(&node.children[0], ctx, child_exact)?;
            Box::new(Limit::new(child, *k))
        }
    };
    op.set_batch_size(ctx.batch);
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{JoinPair, LogicalPlan};
    use crate::optimizer::Optimizer;
    use pyro_common::{Tuple, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .collect();
        cat.register_table("t", Schema::ints(&["k", "g"]), SortOrder::new(["k"]), &rows)
            .unwrap();
        cat
    }

    #[test]
    fn compiled_plan_runs_and_orders() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.order_by(s, SortOrder::new(["t.g", "t.k"]));
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let pyro_exec::Rows { rows, metrics } = plan.execute(&cat).unwrap();
        assert_eq!(rows.len(), 100);
        // output sorted by (g, k)
        let keys: Vec<(i64, i64)> = rows
            .iter()
            .map(|t| (t.get(1).as_int().unwrap(), t.get(0).as_int().unwrap()))
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
        assert!(metrics.comparisons() > 0);
    }

    #[test]
    fn compiled_join_produces_expected_rows() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t", "a");
        let b = p.scan_as("t", "b");
        p.join(a, b, vec![JoinPair::new("a.k", "b.k")]);
        let plan = Optimizer::new(&cat).optimize(&p).unwrap();
        let rows = plan.execute(&cat).unwrap().rows;
        assert_eq!(rows.len(), 100, "self-join on unique key");
        assert_eq!(rows[0].arity(), 4);
    }

    #[test]
    fn compile_expr_resolves_names() {
        let schema = Schema::ints(&["t.a", "t.b"]);
        let e = compile_expr(&NExpr::col_eq_lit("t.b", 5i64), &schema).unwrap();
        let row = Tuple::new(vec![Value::Int(0), Value::Int(5)]);
        assert!(e.eval_bool(&row).unwrap());
    }
}
