//! Physical plans.
//!
//! A [`PhysNode`] tree is the optimizer's output: every node carries its
//! operator, output schema, guaranteed output sort order, estimated rows and
//! *cumulative* cost. `explain()` renders the tree in the style of the
//! paper's Figures 10/11/14 (operator, chosen orders, per-node cost).

use crate::logical::{AggSpec, JoinPair, NExpr, ProjItem};
use pyro_common::Schema;
use pyro_exec::join::JoinKind;
use pyro_ordering::SortOrder;
use std::fmt::Write as _;
use std::sync::Arc;

/// Physical operator variants.
#[derive(Debug, Clone)]
pub enum PhysOp {
    /// Unordered heap scan.
    TableScan {
        /// Catalog table.
        table: String,
        /// Alias qualifying output columns.
        alias: String,
    },
    /// Scan of the clustered heap file — same I/O, known order.
    ClusteredIndexScan {
        /// Catalog table.
        table: String,
        /// Alias.
        alias: String,
    },
    /// Scan of a covering secondary index's entry file.
    CoveringIndexScan {
        /// Catalog table.
        table: String,
        /// Alias.
        alias: String,
        /// Index name.
        index: String,
    },
    /// Selection.
    Filter {
        /// Predicate over the child's schema.
        predicate: NExpr,
    },
    /// Projection.
    Project {
        /// Output items.
        items: Vec<ProjItem>,
    },
    /// Full sort enforcer (SRS at runtime).
    Sort {
        /// Target order.
        target: SortOrder,
    },
    /// Partial sort enforcer (MRS at runtime): the child already guarantees
    /// the first `prefix_len` attributes of `target`.
    PartialSort {
        /// Attributes of `target` already ordered in the input.
        prefix_len: usize,
        /// Target order.
        target: SortOrder,
    },
    /// Sort-merge join; both inputs sorted per `order` (a permutation of the
    /// join attribute set, expressed over left-side column names).
    MergeJoin {
        /// Join type.
        kind: JoinKind,
        /// Equality pairs.
        pairs: Vec<JoinPair>,
        /// Chosen interesting order.
        order: SortOrder,
    },
    /// Hash join (left = build side).
    HashJoin {
        /// Join type.
        kind: JoinKind,
        /// Equality pairs.
        pairs: Vec<JoinPair>,
    },
    /// Nested loops join.
    NestedLoopsJoin {
        /// Join type.
        kind: JoinKind,
        /// Equality pairs.
        pairs: Vec<JoinPair>,
    },
    /// Streaming aggregate over sorted input.
    SortAggregate {
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Hash aggregate.
    HashAggregate {
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Streaming DISTINCT over input sorted by `order` (a permutation of
    /// all columns).
    SortDistinct {
        /// The input's sort order, covering every column.
        order: SortOrder,
    },
    /// Hash-based DISTINCT.
    HashDistinct,
    /// LIMIT/Top-K.
    Limit {
        /// Maximum rows.
        k: u64,
    },
}

impl PhysOp {
    /// Short operator name for explain output.
    pub fn name(&self) -> String {
        match self {
            PhysOp::TableScan { table, .. } => format!("Table Scan [{table}]"),
            PhysOp::ClusteredIndexScan { table, .. } => format!("C.Idx Scan [{table}]"),
            PhysOp::CoveringIndexScan { table, index, .. } => {
                format!("Cov.Idx Scan [{table}.{index}]")
            }
            PhysOp::Filter { .. } => "Filter".into(),
            PhysOp::Project { .. } => "Project".into(),
            PhysOp::Sort { target } => format!("Sort {target}"),
            PhysOp::PartialSort { prefix_len, target } => {
                let known = target.prefix(*prefix_len);
                format!("Partial Sort {known} --> {target}")
            }
            PhysOp::MergeJoin { kind, order, .. } => match kind {
                JoinKind::Inner => format!("Merge Join {order}"),
                JoinKind::LeftOuter => format!("Merge LO Join {order}"),
                JoinKind::FullOuter => format!("Merge FO Join {order}"),
            },
            PhysOp::HashJoin { kind, .. } => format!("Hash Join ({kind:?})"),
            PhysOp::NestedLoopsJoin { .. } => "Nested Loops".into(),
            PhysOp::SortAggregate { group_by, .. } => {
                format!("Group Aggregate [{}]", group_by.join(", "))
            }
            PhysOp::HashAggregate { group_by, .. } => {
                format!("Hash Aggregate [{}]", group_by.join(", "))
            }
            PhysOp::SortDistinct { order } => format!("Distinct {order}"),
            PhysOp::HashDistinct => "Hash Distinct".into(),
            PhysOp::Limit { k } => format!("Limit {k}"),
        }
    }
}

/// A costed physical plan node.
#[derive(Debug, Clone)]
pub struct PhysNode {
    /// Operator.
    pub op: PhysOp,
    /// Children (0–2).
    pub children: Vec<Arc<PhysNode>>,
    /// Output schema.
    pub schema: Schema,
    /// Guaranteed output sort order (qualified column names).
    pub out_order: SortOrder,
    /// Cumulative estimated cost in I/O units.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// The logical node this physical node implements (enforcers carry the
    /// id of the node they re-order). Used by phase-2 refinement.
    pub logical: crate::logical::NodeId,
}

impl PhysNode {
    /// Renders the plan tree, root first, children indented — the format of
    /// the paper's plan figures.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let own_cost = self.cost - self.children.iter().map(|c| c.cost).sum::<f64>();
        let _ = writeln!(
            out,
            "{pad}{}  (cost={:.0}, rows={:.0}{})",
            self.op.name(),
            own_cost.max(0.0),
            self.rows,
            if self.out_order.is_empty() {
                String::new()
            } else {
                format!(", order={}", self.out_order)
            }
        );
        for c in &self.children {
            c.explain_into(out, depth + 1);
        }
    }

    /// Iterates over all nodes (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PhysNode)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Counts nodes matching a predicate (test helper).
    pub fn count_nodes(&self, pred: &impl Fn(&PhysNode) -> bool) -> usize {
        let mut n = 0;
        self.walk(&mut |node| {
            if pred(node) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Arc<PhysNode> {
        Arc::new(PhysNode {
            op: PhysOp::TableScan {
                table: "t".into(),
                alias: "t".into(),
            },
            children: vec![],
            schema: Schema::ints(&["t.a"]),
            out_order: SortOrder::empty(),
            cost: 10.0,
            rows: 100.0,
            logical: 0,
        })
    }

    #[test]
    fn explain_renders_tree() {
        let scan = leaf();
        let sort = PhysNode {
            op: PhysOp::Sort {
                target: SortOrder::new(["t.a"]),
            },
            children: vec![scan],
            schema: Schema::ints(&["t.a"]),
            out_order: SortOrder::new(["t.a"]),
            cost: 30.0,
            rows: 100.0,
            logical: 0,
        };
        let text = sort.explain();
        assert!(text.contains("Sort (t.a)"), "{text}");
        assert!(text.contains("Table Scan [t]"), "{text}");
        // own cost of sort = 30 - 10 = 20
        assert!(text.contains("cost=20"), "{text}");
    }

    #[test]
    fn walk_and_count() {
        let n = PhysNode {
            op: PhysOp::Filter {
                predicate: NExpr::lit(1i64),
            },
            children: vec![leaf(), leaf()],
            schema: Schema::ints(&["t.a"]),
            out_order: SortOrder::empty(),
            cost: 25.0,
            rows: 50.0,
            logical: 0,
        };
        assert_eq!(
            n.count_nodes(&|x| matches!(x.op, PhysOp::TableScan { .. })),
            2
        );
        assert_eq!(n.count_nodes(&|_| true), 3);
    }

    #[test]
    fn partial_sort_name_shows_prefix() {
        let op = PhysOp::PartialSort {
            prefix_len: 1,
            target: SortOrder::new(["a", "b"]),
        };
        assert_eq!(op.name(), "Partial Sort (a) --> (a, b)");
    }
}
