//! Logical query plans.
//!
//! The paper optimizes *sort-order choices over a fixed join shape* (join
//! order selection is orthogonal), so logical plans here are simple trees
//! built once and stored in an arena. Columns are identified by qualified
//! names (`"t1.c4"`); schemas are derived bottom-up.

use pyro_common::{Column, DataType, PyroError, Result, Schema, Value};
use pyro_exec::agg::AggFunc;
use pyro_exec::join::JoinKind;
use pyro_exec::CmpOp;
use pyro_ordering::SortOrder;

/// Index of a node in the [`LogicalPlan`] arena.
pub type NodeId = usize;

/// A named scalar expression (logical level; compiled to positional
/// `pyro_exec::Expr` at plan compile time).
#[derive(Debug, Clone, PartialEq)]
pub enum NExpr {
    /// Qualified column reference.
    Col(String),
    /// Literal.
    Lit(Value),
    /// A prepared-statement parameter placeholder (0-based). Optimized
    /// symbolically — selectivity estimation treats it like an unknown
    /// literal — and substituted with a bound [`Value`] at plan compile
    /// time, so one optimized plan serves every binding.
    Param(usize),
    /// Comparison.
    Cmp(CmpOp, Box<NExpr>, Box<NExpr>),
    /// Conjunction.
    And(Vec<NExpr>),
    /// Arithmetic.
    Mul(Box<NExpr>, Box<NExpr>),
    /// Arithmetic.
    Add(Box<NExpr>, Box<NExpr>),
    /// Arithmetic.
    Sub(Box<NExpr>, Box<NExpr>),
}

impl NExpr {
    /// Column helper.
    pub fn col(name: impl Into<String>) -> NExpr {
        NExpr::Col(name.into())
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> NExpr {
        NExpr::Lit(v.into())
    }

    /// Equality of a column and a literal — the common filter.
    pub fn col_eq_lit(name: impl Into<String>, v: impl Into<Value>) -> NExpr {
        NExpr::Cmp(
            CmpOp::Eq,
            Box::new(NExpr::col(name)),
            Box::new(NExpr::lit(v)),
        )
    }

    /// All column names referenced.
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            NExpr::Col(c) => out.push(c.clone()),
            NExpr::Lit(_) | NExpr::Param(_) => {}
            NExpr::Cmp(_, a, b) | NExpr::Mul(a, b) | NExpr::Add(a, b) | NExpr::Sub(a, b) => {
                a.columns(out);
                b.columns(out);
            }
            NExpr::And(terms) => {
                for t in terms {
                    t.columns(out);
                }
            }
        }
    }

    /// Result type estimate (for projection schemas).
    pub fn data_type(&self, input: &Schema) -> DataType {
        match self {
            NExpr::Col(c) => input
                .index_of(c)
                .map(|i| input.column(i).ty)
                .unwrap_or(DataType::Int),
            NExpr::Lit(Value::Double(_)) => DataType::Double,
            NExpr::Lit(Value::Str(_)) => DataType::Str,
            NExpr::Lit(_) => DataType::Int,
            // A parameter's type is only known at bind time; Int is the
            // neutral estimate. The SQL frontend confines placeholders to
            // predicates (WHERE/HAVING/ON), which never define an output
            // schema, so this estimate cannot mistype a result column.
            NExpr::Param(_) => DataType::Int,
            NExpr::Cmp(..) => DataType::Int,
            NExpr::And(_) => DataType::Int,
            NExpr::Mul(a, b) | NExpr::Add(a, b) | NExpr::Sub(a, b) => {
                if a.data_type(input) == DataType::Double || b.data_type(input) == DataType::Double
                {
                    DataType::Double
                } else {
                    DataType::Int
                }
            }
        }
    }
}

/// One equality `left = right` of a join predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPair {
    /// Qualified column of the left input.
    pub left: String,
    /// Qualified column of the right input.
    pub right: String,
}

impl JoinPair {
    /// Convenience constructor.
    pub fn new(left: impl Into<String>, right: impl Into<String>) -> Self {
        JoinPair {
            left: left.into(),
            right: right.into(),
        }
    }
}

/// One aggregate in a group-by.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Function.
    pub func: AggFunc,
    /// Argument.
    pub arg: NExpr,
    /// Output column name.
    pub name: String,
}

/// One projection item.
#[derive(Debug, Clone)]
pub struct ProjItem {
    /// Expression.
    pub expr: NExpr,
    /// Output name (same as column name for plain columns to preserve
    /// order information through the projection).
    pub name: String,
}

impl ProjItem {
    /// Pass-through column projection.
    pub fn col(name: impl Into<String>) -> Self {
        let name = name.into();
        ProjItem {
            expr: NExpr::Col(name.clone()),
            name,
        }
    }

    /// Computed column.
    pub fn expr(expr: NExpr, name: impl Into<String>) -> Self {
        ProjItem {
            expr,
            name: name.into(),
        }
    }
}

/// A logical operator node.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Base-table access under an alias; columns exposed as `alias.col`.
    Scan {
        /// Catalog table name.
        table: String,
        /// Alias qualifying output column names.
        alias: String,
    },
    /// Selection.
    Filter {
        /// Input node.
        input: NodeId,
        /// Predicate.
        predicate: NExpr,
    },
    /// Projection (possibly computing new columns).
    Project {
        /// Input node.
        input: NodeId,
        /// Output items.
        items: Vec<ProjItem>,
    },
    /// Equi-join.
    Join {
        /// Left input.
        left: NodeId,
        /// Right input.
        right: NodeId,
        /// Join type.
        kind: JoinKind,
        /// Equality pairs.
        pairs: Vec<JoinPair>,
    },
    /// Grouping + aggregation.
    Aggregate {
        /// Input node.
        input: NodeId,
        /// Grouping columns (qualified names).
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// ORDER BY: requires `order` on its input, output order = `order`.
    Sort {
        /// Input node.
        input: NodeId,
        /// Required output order.
        order: SortOrder,
    },
    /// Duplicate elimination over all columns — like merge join and
    /// grouping, a sort-based implementation accepts *any* permutation of
    /// the columns as its input order (paper §1).
    Distinct {
        /// Input node.
        input: NodeId,
    },
    /// LIMIT/Top-K: order-preserving early termination.
    Limit {
        /// Input node.
        input: NodeId,
        /// Maximum rows to emit.
        k: u64,
    },
}

/// Arena of logical nodes; the last-added node is the root by default.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    nodes: Vec<LogicalOp>,
    root: Option<NodeId>,
}

impl LogicalPlan {
    /// Empty plan.
    pub fn new() -> Self {
        LogicalPlan::default()
    }

    fn push(&mut self, op: LogicalOp) -> NodeId {
        self.nodes.push(op);
        let id = self.nodes.len() - 1;
        self.root = Some(id);
        id
    }

    /// Adds a scan of `table` aliased as itself.
    pub fn scan(&mut self, table: &str) -> NodeId {
        self.scan_as(table, table)
    }

    /// Adds a scan of `table` under `alias`.
    pub fn scan_as(&mut self, table: &str, alias: &str) -> NodeId {
        self.push(LogicalOp::Scan {
            table: table.into(),
            alias: alias.into(),
        })
    }

    /// Adds a filter.
    pub fn filter(&mut self, input: NodeId, predicate: NExpr) -> NodeId {
        self.push(LogicalOp::Filter { input, predicate })
    }

    /// Adds a projection.
    pub fn project(&mut self, input: NodeId, items: Vec<ProjItem>) -> NodeId {
        self.push(LogicalOp::Project { input, items })
    }

    /// Adds an inner equi-join.
    pub fn join(&mut self, left: NodeId, right: NodeId, pairs: Vec<JoinPair>) -> NodeId {
        self.join_kind(left, right, JoinKind::Inner, pairs)
    }

    /// Adds an equi-join of the given kind.
    pub fn join_kind(
        &mut self,
        left: NodeId,
        right: NodeId,
        kind: JoinKind,
        pairs: Vec<JoinPair>,
    ) -> NodeId {
        self.push(LogicalOp::Join {
            left,
            right,
            kind,
            pairs,
        })
    }

    /// Adds an aggregate.
    pub fn aggregate(
        &mut self,
        input: NodeId,
        group_by: Vec<impl Into<String>>,
        aggs: Vec<AggSpec>,
    ) -> NodeId {
        self.push(LogicalOp::Aggregate {
            input,
            group_by: group_by.into_iter().map(Into::into).collect(),
            aggs,
        })
    }

    /// Adds an ORDER BY.
    pub fn order_by(&mut self, input: NodeId, order: SortOrder) -> NodeId {
        self.push(LogicalOp::Sort { input, order })
    }

    /// Adds a DISTINCT over all columns.
    pub fn distinct(&mut self, input: NodeId) -> NodeId {
        self.push(LogicalOp::Distinct { input })
    }

    /// Adds a LIMIT.
    pub fn limit(&mut self, input: NodeId, k: u64) -> NodeId {
        self.push(LogicalOp::Limit { input, k })
    }

    /// Sets the root explicitly (defaults to the last added node).
    pub fn set_root(&mut self, id: NodeId) {
        self.root = Some(id);
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root.expect("empty logical plan")
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &LogicalOp {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of a node (0–2).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        match &self.nodes[id] {
            LogicalOp::Scan { .. } => vec![],
            LogicalOp::Filter { input, .. }
            | LogicalOp::Project { input, .. }
            | LogicalOp::Aggregate { input, .. }
            | LogicalOp::Sort { input, .. }
            | LogicalOp::Distinct { input }
            | LogicalOp::Limit { input, .. } => vec![*input],
            LogicalOp::Join { left, right, .. } => vec![*left, *right],
        }
    }

    /// Computes the output schema of a node, given a resolver for base
    /// tables.
    pub fn schema(
        &self,
        id: NodeId,
        table_schema: &impl Fn(&str, &str) -> Result<Schema>,
    ) -> Result<Schema> {
        match &self.nodes[id] {
            LogicalOp::Scan { table, alias } => table_schema(table, alias),
            LogicalOp::Filter { input, .. }
            | LogicalOp::Sort { input, .. }
            | LogicalOp::Distinct { input }
            | LogicalOp::Limit { input, .. } => self.schema(*input, table_schema),
            LogicalOp::Project { input, items } => {
                let inner = self.schema(*input, table_schema)?;
                Ok(Schema::new(
                    items
                        .iter()
                        .map(|it| Column::new(it.name.clone(), it.expr.data_type(&inner)))
                        .collect(),
                ))
            }
            LogicalOp::Join { left, right, .. } => {
                let l = self.schema(*left, table_schema)?;
                let r = self.schema(*right, table_schema)?;
                Ok(l.join(&r))
            }
            LogicalOp::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let inner = self.schema(*input, table_schema)?;
                let mut cols = Vec::new();
                for g in group_by {
                    let i = inner.index_of(g)?;
                    cols.push(inner.column(i).clone());
                }
                for a in aggs {
                    let ty = match a.func {
                        AggFunc::Count => DataType::Int,
                        AggFunc::Avg => DataType::Double,
                        _ => a.arg.data_type(&inner),
                    };
                    cols.push(Column::new(a.name.clone(), ty));
                }
                Ok(Schema::new(cols))
            }
        }
    }

    /// Collects every column name the query references at or above `id`
    /// (predicates, join pairs, projections, grouping, aggregates, orders).
    /// Used to decide which indices *cover the query* for each table.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        for node in &self.nodes {
            match node {
                LogicalOp::Scan { .. } => {}
                LogicalOp::Filter { predicate, .. } => predicate.columns(&mut out),
                LogicalOp::Project { items, .. } => {
                    for it in items {
                        it.expr.columns(&mut out);
                    }
                }
                LogicalOp::Join { pairs, .. } => {
                    for p in pairs {
                        out.push(p.left.clone());
                        out.push(p.right.clone());
                    }
                }
                LogicalOp::Aggregate { group_by, aggs, .. } => {
                    out.extend(group_by.iter().cloned());
                    for a in aggs {
                        a.arg.columns(&mut out);
                    }
                }
                LogicalOp::Sort { order, .. } => {
                    out.extend(order.attrs().iter().cloned());
                }
                LogicalOp::Distinct { .. } | LogicalOp::Limit { .. } => {}
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Errors a malformed plan produces at optimization time.
pub fn plan_err(msg: impl Into<String>) -> PyroError {
    PyroError::Plan(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new();
        let l = p.scan_as("t", "a");
        let r = p.scan_as("t", "b");
        let j = p.join(l, r, vec![JoinPair::new("a.x", "b.x")]);
        p.order_by(j, SortOrder::new(["a.x"]));
        p
    }

    fn resolver(_t: &str, alias: &str) -> Result<Schema> {
        Ok(Schema::ints(&["x", "y"]).qualify(alias))
    }

    #[test]
    fn arena_structure() {
        let p = two_table_plan();
        assert_eq!(p.len(), 4);
        assert_eq!(p.root(), 3);
        assert_eq!(p.children(2), vec![0, 1]);
        assert_eq!(p.children(3), vec![2]);
        assert!(p.children(0).is_empty());
    }

    #[test]
    fn schema_propagation() {
        let p = two_table_plan();
        let s = p.schema(p.root(), &resolver).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.contains("a.x"));
        assert!(s.contains("b.y"));
    }

    #[test]
    fn referenced_columns_collects_all() {
        let p = two_table_plan();
        let cols = p.referenced_columns();
        assert_eq!(cols, vec!["a.x", "b.x"]);
    }

    #[test]
    fn project_schema_types() {
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.project(
            s,
            vec![
                ProjItem::col("t.x"),
                ProjItem::expr(
                    NExpr::Mul(Box::new(NExpr::col("t.x")), Box::new(NExpr::lit(2.5))),
                    "scaled",
                ),
            ],
        );
        let schema = p.schema(p.root(), &resolver).unwrap();
        assert_eq!(schema.column(0).ty, DataType::Int);
        assert_eq!(schema.column(1).ty, DataType::Double);
        assert_eq!(schema.column(1).name, "scaled");
    }

    #[test]
    fn nexpr_columns() {
        let e = NExpr::And(vec![
            NExpr::col_eq_lit("a.x", 1i64),
            NExpr::Cmp(
                CmpOp::Gt,
                Box::new(NExpr::col("b.y")),
                Box::new(NExpr::col("a.x")),
            ),
        ]);
        let mut cols = Vec::new();
        e.columns(&mut cols);
        cols.sort();
        cols.dedup();
        assert_eq!(cols, vec!["a.x", "b.y"]);
    }

    #[test]
    fn aggregate_schema() {
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "t");
        p.aggregate(
            s,
            vec!["t.x"],
            vec![AggSpec {
                func: AggFunc::Avg,
                arg: NExpr::col("t.y"),
                name: "m".into(),
            }],
        );
        let schema = p.schema(p.root(), &resolver).unwrap();
        assert_eq!(schema.names(), vec!["t.x", "m"]);
        assert_eq!(schema.column(1).ty, DataType::Double);
    }
}
