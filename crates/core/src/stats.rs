//! Logical-node statistics: `N(e)`, `B(e)`, `D(e, s)` derived bottom-up.

use crate::logical::{LogicalOp, LogicalPlan, NExpr, NodeId};
use pyro_catalog::Catalog;
use pyro_common::Result;
use pyro_exec::CmpOp;
use std::collections::HashMap;

/// Estimated statistics for one logical node's output.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// `N(e)`: estimated row count.
    pub rows: f64,
    /// Average tuple width in bytes.
    pub avg_bytes: f64,
    /// Per-column distinct estimates (qualified names).
    pub distinct: HashMap<String, f64>,
}

impl NodeStats {
    /// `B(e)`: blocks at the given block size.
    pub fn blocks(&self, block_size: usize) -> f64 {
        (self.rows * self.avg_bytes / block_size as f64).max(1.0)
    }

    /// `D(e, s)` for an attribute list under independence, capped by `N`.
    pub fn distinct_of<'a>(&self, attrs: impl IntoIterator<Item = &'a str>) -> f64 {
        let mut prod = 1.0f64;
        let mut any = false;
        for a in attrs {
            any = true;
            prod *= self.distinct.get(a).copied().unwrap_or(self.rows.max(1.0));
            if prod >= self.rows {
                return self.rows.max(1.0);
            }
        }
        if !any {
            return 1.0;
        }
        prod.clamp(1.0, self.rows.max(1.0))
    }
}

/// Default equality selectivity when the column is unknown.
const DEFAULT_EQ_SEL: f64 = 0.1;
/// Selectivity of range comparisons.
const RANGE_SEL: f64 = 1.0 / 3.0;

/// Derives stats for all nodes of a logical plan.
pub fn derive_stats(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<NodeStats>> {
    let mut out: Vec<NodeStats> = vec![NodeStats::default(); plan.len()];
    for id in 0..plan.len() {
        out[id] = node_stats(plan, id, catalog, &out)?;
    }
    Ok(out)
}

fn node_stats(
    plan: &LogicalPlan,
    id: NodeId,
    catalog: &Catalog,
    done: &[NodeStats],
) -> Result<NodeStats> {
    Ok(match plan.node(id) {
        LogicalOp::Scan { table, alias } => {
            let handle = catalog.table(table)?;
            let stats = &handle.meta.stats;
            let mut distinct = HashMap::new();
            for col in handle.meta.schema.columns() {
                distinct.insert(
                    format!("{alias}.{}", col.name),
                    stats.distinct(&col.name) as f64,
                );
            }
            NodeStats {
                rows: stats.row_count as f64,
                avg_bytes: stats.avg_tuple_bytes.max(1.0),
                distinct,
            }
        }
        LogicalOp::Filter { input, predicate } => {
            let inner = &done[*input];
            let sel = selectivity(predicate, inner);
            scale(inner, sel)
        }
        LogicalOp::Project { input, items } => {
            let inner = &done[*input];
            let mut distinct = HashMap::new();
            for it in items {
                if let NExpr::Col(c) = &it.expr {
                    if let Some(d) = inner.distinct.get(c) {
                        distinct.insert(it.name.clone(), *d);
                    }
                }
            }
            // Width estimate: proportional share of the input width, floor 8.
            let frac = items.len() as f64 / (inner.distinct.len().max(items.len()).max(1)) as f64;
            NodeStats {
                rows: inner.rows,
                avg_bytes: (inner.avg_bytes * frac).max(8.0),
                distinct,
            }
        }
        LogicalOp::Join {
            left,
            right,
            pairs,
            kind,
        } => {
            let (l, r) = (&done[*left], &done[*right]);
            // Exponential backoff over the per-pair selectivities (largest
            // first, each subsequent factor dampened by a square root):
            // multi-attribute join predicates are usually correlated —
            // catastrophically so for the paper's data-consolidation
            // workload, where both catalogs describe the same entities —
            // and plain independence would starve every operator above the
            // join of rows.
            let mut factors: Vec<f64> = pairs
                .iter()
                .map(|p| {
                    let dl = l.distinct.get(&p.left).copied().unwrap_or(l.rows.max(1.0));
                    let dr = r.distinct.get(&p.right).copied().unwrap_or(r.rows.max(1.0));
                    dl.max(dr).max(1.0)
                })
                .collect();
            factors.sort_by(|a, b| b.total_cmp(a));
            let mut denom = 1.0f64;
            let mut exponent = 1.0f64;
            for f in factors {
                denom *= f.powf(exponent);
                exponent /= 2.0;
            }
            let mut rows = (l.rows * r.rows / denom).max(1.0);
            if matches!(kind, pyro_exec::join::JoinKind::FullOuter) {
                // Outer joins keep unmatched rows as well.
                rows = rows.max(l.rows).max(r.rows);
            }
            let mut distinct = l.distinct.clone();
            distinct.extend(r.distinct.iter().map(|(k, v)| (k.clone(), *v)));
            for d in distinct.values_mut() {
                *d = d.min(rows);
            }
            NodeStats {
                rows,
                avg_bytes: l.avg_bytes + r.avg_bytes,
                distinct,
            }
        }
        LogicalOp::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let inner = &done[*input];
            let groups = inner.distinct_of(group_by.iter().map(String::as_str));
            let mut distinct = HashMap::new();
            for g in group_by {
                distinct.insert(
                    g.clone(),
                    inner.distinct.get(g).copied().unwrap_or(groups).min(groups),
                );
            }
            for a in aggs {
                distinct.insert(a.name.clone(), groups);
            }
            NodeStats {
                rows: groups,
                avg_bytes: 9.0 * (group_by.len() + aggs.len()) as f64 + 16.0,
                distinct,
            }
        }
        LogicalOp::Sort { input, .. } => done[*input].clone(),
        LogicalOp::Distinct { input } => {
            let inner = &done[*input];
            let cols: Vec<String> = inner.distinct.keys().cloned().collect();
            let rows = inner.distinct_of(cols.iter().map(String::as_str));
            scale(inner, rows / inner.rows.max(1.0))
        }
        LogicalOp::Limit { input, k } => {
            let inner = &done[*input];
            scale(inner, (*k as f64 / inner.rows.max(1.0)).min(1.0))
        }
    })
}

fn scale(s: &NodeStats, sel: f64) -> NodeStats {
    let rows = (s.rows * sel).max(1.0);
    let mut distinct = s.distinct.clone();
    for d in distinct.values_mut() {
        *d = d.min(rows);
    }
    NodeStats {
        rows,
        avg_bytes: s.avg_bytes,
        distinct,
    }
}

/// Textbook selectivity estimation.
fn selectivity(pred: &NExpr, input: &NodeStats) -> f64 {
    match pred {
        NExpr::And(terms) => terms.iter().map(|t| selectivity(t, input)).product(),
        NExpr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            // A parameter placeholder estimates exactly like an unknown
            // literal: the cached plan must be reasonable for any binding.
            (NExpr::Col(c), NExpr::Lit(_) | NExpr::Param(_))
            | (NExpr::Lit(_) | NExpr::Param(_), NExpr::Col(c)) => {
                1.0 / input
                    .distinct
                    .get(c)
                    .copied()
                    .unwrap_or(1.0 / DEFAULT_EQ_SEL)
                    .max(1.0)
            }
            (NExpr::Col(c1), NExpr::Col(c2)) => {
                let d1 = input.distinct.get(c1).copied().unwrap_or(10.0);
                let d2 = input.distinct.get(c2).copied().unwrap_or(10.0);
                1.0 / d1.max(d2).max(1.0)
            }
            _ => DEFAULT_EQ_SEL,
        },
        NExpr::Cmp(_, _, _) => RANGE_SEL,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::JoinPair;
    use pyro_common::{Schema, Tuple, Value};
    use pyro_ordering::SortOrder;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let rows: Vec<Tuple> = (0..1000)
            .map(|i| Tuple::new(vec![Value::Int(i % 10), Value::Int(i)]))
            .collect();
        let mut sorted = rows.clone();
        sorted.sort();
        cat.register_table(
            "t",
            Schema::ints(&["g", "u"]),
            SortOrder::new(["g"]),
            &sorted,
        )
        .unwrap();
        cat
    }

    #[test]
    fn scan_stats_from_catalog() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        p.scan_as("t", "x");
        let stats = derive_stats(&p, &cat).unwrap();
        assert_eq!(stats[0].rows, 1000.0);
        assert_eq!(stats[0].distinct["x.g"], 10.0);
        assert!(stats[0].blocks(4096) >= 1.0);
    }

    #[test]
    fn filter_scales_by_selectivity() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "x");
        p.filter(s, NExpr::col_eq_lit("x.g", 3i64));
        let stats = derive_stats(&p, &cat).unwrap();
        assert!(
            (stats[1].rows - 100.0).abs() < 1.0,
            "1000/10 = 100, got {}",
            stats[1].rows
        );
    }

    #[test]
    fn join_estimates() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let a = p.scan_as("t", "a");
        let b = p.scan_as("t", "b");
        p.join(a, b, vec![JoinPair::new("a.u", "b.u")]);
        let stats = derive_stats(&p, &cat).unwrap();
        // unique join key: N ≈ 1000
        assert!((stats[2].rows - 1000.0).abs() < 1.0);
    }

    #[test]
    fn aggregate_rows_are_group_count() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        let s = p.scan_as("t", "x");
        p.aggregate(s, vec!["x.g"], vec![]);
        let stats = derive_stats(&p, &cat).unwrap();
        assert_eq!(stats[1].rows, 10.0);
    }

    #[test]
    fn distinct_of_set_capped() {
        let cat = catalog();
        let mut p = LogicalPlan::new();
        p.scan_as("t", "x");
        let stats = derive_stats(&p, &cat).unwrap();
        assert_eq!(stats[0].distinct_of(["x.g", "x.u"]), 1000.0);
        assert_eq!(stats[0].distinct_of([]), 1.0);
    }
}
