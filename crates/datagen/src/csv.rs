//! CSV → tuple parsing for `Session::register_csv`-style ingestion.
//!
//! Deliberately small: comma separation, optional double-quoting for string
//! fields (with `""` escapes), an optional header row, and the unquoted
//! empty field as SQL NULL (a quoted empty field is the empty string).
//! Values are coerced per the target [`Schema`]'s column types,
//! so callers get typed tuples ready for `Catalog::register_table`.

use pyro_common::{DataType, PyroError, Result, Schema, Tuple, Value};

/// Parses CSV text into tuples matching `schema`.
///
/// If `has_header` is set the first non-empty line is checked against the
/// schema's column names (order-sensitive) and skipped. Blank lines are
/// ignored everywhere.
pub fn parse_csv(schema: &Schema, text: &str, has_header: bool) -> Result<Vec<Tuple>> {
    let mut rows = Vec::new();
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    if has_header {
        if let Some((n, header)) = lines.next() {
            let names: Vec<String> = split_fields(header, n)?
                .into_iter()
                .map(|f| f.text.trim().to_string())
                .collect();
            if names != schema.names() {
                return Err(PyroError::Sql(format!(
                    "CSV header {names:?} does not match schema columns {:?}",
                    schema.names()
                )));
            }
        }
    }
    for (n, line) in lines {
        let fields = split_fields(line, n)?;
        if fields.len() != schema.len() {
            return Err(PyroError::Sql(format!(
                "CSV line {}: expected {} fields, found {}",
                n + 1,
                schema.len(),
                fields.len()
            )));
        }
        let values: Vec<Value> = fields
            .iter()
            .zip(schema.columns())
            .map(|(field, col)| coerce(field, col.ty, n))
            .collect::<Result<_>>()?;
        rows.push(Tuple::new(values));
    }
    Ok(rows)
}

/// One raw field: its text plus whether it was written in quotes (a quoted
/// empty field is the empty string, an unquoted one is NULL).
struct Field {
    text: String,
    quoted: bool,
}

/// Splits one line into raw fields, honouring double quotes.
fn split_fields(line: &str, lineno: usize) -> Result<Vec<Field>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut cur_quoted = false;
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => {
                quoted = true;
                cur_quoted = true;
            }
            ',' if !quoted => fields.push(Field {
                text: std::mem::take(&mut cur),
                quoted: std::mem::take(&mut cur_quoted),
            }),
            _ => cur.push(c),
        }
    }
    if quoted {
        return Err(PyroError::Sql(format!(
            "CSV line {}: unterminated quote",
            lineno + 1
        )));
    }
    fields.push(Field {
        text: cur,
        quoted: cur_quoted,
    });
    Ok(fields)
}

/// Coerces one raw field to the column's type; the *unquoted* empty field
/// is NULL, while a quoted empty field (`""`) is the empty string.
fn coerce(field: &Field, ty: DataType, lineno: usize) -> Result<Value> {
    let trimmed = field.text.trim();
    if trimmed.is_empty() && !field.quoted {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(trimmed.parse::<i64>().map_err(|e| {
            PyroError::Sql(format!("CSV line {}: bad INT {trimmed:?}: {e}", lineno + 1))
        })?),
        DataType::Double => Value::Double(trimmed.parse::<f64>().map_err(|e| {
            PyroError::Sql(format!(
                "CSV line {}: bad DOUBLE {trimmed:?}: {e}",
                lineno + 1
            ))
        })?),
        DataType::Str => Value::Str(field.text.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pyro_common::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("score", DataType::Double),
        ])
    }

    #[test]
    fn parses_typed_rows() {
        let rows = parse_csv(&schema(), "1,alpha,0.5\n2,beta,1.25\n", false).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Int(1));
        assert_eq!(rows[1].get(1), &Value::Str("beta".into()));
        assert_eq!(rows[1].get(2), &Value::Double(1.25));
    }

    #[test]
    fn header_checked_and_skipped() {
        let rows = parse_csv(&schema(), "k,name,score\n7,x,0\n", true).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(parse_csv(&schema(), "wrong,headers,here\n7,x,0\n", true).is_err());
    }

    #[test]
    fn quotes_and_nulls() {
        let rows = parse_csv(&schema(), "1,\"a,b\"\"c\",\n", false).unwrap();
        assert_eq!(rows[0].get(1), &Value::Str("a,b\"c".into()));
        assert_eq!(rows[0].get(2), &Value::Null);
        // Quoted empty field is the empty string, not NULL.
        let rows = parse_csv(&schema(), "1,\"\",0\n", false).unwrap();
        assert_eq!(rows[0].get(1), &Value::Str(String::new()));
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(parse_csv(&schema(), "1,only-two\n", false).is_err());
        assert!(parse_csv(&schema(), "notanint,x,0\n", false).is_err());
        assert!(parse_csv(&schema(), "1,\"unterminated,0\n", false).is_err());
    }
}
