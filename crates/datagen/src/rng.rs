//! A tiny deterministic PRNG, standing in for the `rand` crate.
//!
//! Offline builds cannot fetch crates.io, and the generators only need
//! seeded, reproducible uniform draws — so this module provides a SplitMix64
//! generator behind the same call surface the generators used from `rand`
//! (`seed_from_u64`, `gen_range`, `gen_bool`). SplitMix64 passes BigCrush
//! and is the standard seeding primitive of the xoshiro family; uniformity
//! here is plain rejection-free modulo reduction, which is fine for workload
//! generation (the bias at these range sizes is < 2⁻⁴⁰).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator, API-compatible with the subset of
/// `rand::rngs::StdRng` the generators use.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seeds the generator. Equal seeds yield equal streams forever.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from a range; supports the integer range shapes the
    /// generators use. Generic over the element type (like `rand`'s
    /// signature) so untyped literals infer from the use site.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random mantissa bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// Integer range shapes accepted by [`StdRng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn draws_are_spread() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(r.gen_range(0i64..1_000_000));
        }
        assert!(seen.len() > 95, "near-unique draws over a wide range");
    }
}
